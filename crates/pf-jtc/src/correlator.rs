//! Numerical simulation of the optical JTC chain.
//!
//! The simulation follows the physics described in Section II-A:
//!
//! 1. the signal and the kernel are placed side by side on the input plane
//!    with a spatial separation large enough that the output terms do not
//!    overlap;
//! 2. the first lens computes the Fourier transform of the joint input;
//! 3. the square-law non-linearity (photodetector + EOM pair in CG, passive
//!    non-linear material in NG) produces the Fourier-plane intensity
//!    `|F[s + k]|²`;
//! 4. the second lens transforms again, yielding Equation 1: the two
//!    cross-correlation terms at `±(x_s + x_k)` plus the central
//!    non-convolution term `O(x)`.
//!
//! The simulation grid is larger than the physical number of waveguides so
//! the discrete transform behaves like the continuous optics (no circular
//! aliasing between the three terms); the physical capacity only limits how
//! long the signal and kernel may be.

use pf_dsp::complex::Complex;
use pf_dsp::fft::{fft, fftshift};
use pf_dsp::util::{next_fast_len, next_pow2};
use serde::{Deserialize, Serialize};

use crate::error::JtcError;

/// The complete output plane of one JTC pass, as a photodetector array would
/// record it (Figure 2), plus the bookkeeping needed to pull the convolution
/// result back out.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JtcOutput {
    /// Field amplitude on the output plane (length = simulation grid size),
    /// *not* shifted: index 0 is the optical axis.
    pub field: Vec<f64>,
    /// Index of the centre of the `+` correlation lobe on the output plane.
    pub correlation_center: usize,
    /// Length of the signal that produced this output.
    pub signal_len: usize,
    /// Length of the kernel that produced this output.
    pub kernel_len: usize,
}

impl JtcOutput {
    /// Output-plane intensity with the optical axis moved to the middle, the
    /// way Figure 2 plots it. The three lobes (conjugate correlation,
    /// central `O(x)` term, correlation) appear left, centre and right.
    pub fn intensity_shifted(&self) -> Vec<f64> {
        fftshift(&self.field.iter().map(|x| x * x).collect::<Vec<_>>())
    }

    /// Extracts the *valid* cross-correlation `c[j] = Σ_q s[j+q]·k[q]`
    /// (length `signal_len - kernel_len + 1`) from the `+` correlation lobe.
    ///
    /// Returns an empty vector if the kernel was longer than the signal.
    pub fn valid_correlation(&self) -> Vec<f64> {
        if self.kernel_len > self.signal_len {
            return Vec::new();
        }
        let n = self.field.len();
        let len = self.signal_len - self.kernel_len + 1;
        (0..len)
            .map(|j| self.field[(self.correlation_center + n - j) % n])
            .collect()
    }

    /// Extracts the *full* cross-correlation (length
    /// `signal_len + kernel_len - 1`), lag running from `-(kernel_len-1)` to
    /// `signal_len - 1`.
    pub fn full_correlation(&self) -> Vec<f64> {
        let n = self.field.len();
        let len = self.signal_len + self.kernel_len - 1;
        // lag j runs from -(kernel_len - 1) .. signal_len - 1; c[j] sits at
        // correlation_center - j.
        (0..len)
            .map(|i| {
                let j = i as isize - (self.kernel_len as isize - 1);
                let idx = (self.correlation_center as isize - j).rem_euclid(n as isize);
                self.field[idx as usize]
            })
            .collect()
    }

    /// Checks that the three output terms are spatially separated: the
    /// maximum absolute field value in the guard bands between the lobes is
    /// below `threshold` times the peak value. This is the property Figure 2
    /// demonstrates.
    pub fn terms_are_separated(&self, threshold: f64) -> bool {
        let n = self.field.len();
        let peak = self.field.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        if peak == 0.0 {
            return true;
        }
        // Guard band: between the end of the central term and the start of
        // the + lobe (and symmetrically for the - lobe).
        let central_halfwidth = self.signal_len.max(self.kernel_len);
        let lobe_start =
            self.correlation_center - (self.signal_len - 1).min(self.correlation_center);
        if lobe_start <= central_halfwidth + 1 {
            return false;
        }
        let guard = &self.field[central_halfwidth + 1..lobe_start - 1];
        let guard_max = guard.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        // Symmetric guard on the conjugate side.
        let conj_center = n - self.correlation_center;
        let conj_end = conj_center + (self.signal_len - 1).min(n - conj_center - 1);
        let guard2 =
            &self.field[(conj_end + 1).min(n - 1)..(n - central_halfwidth - 1).max(conj_end + 1)];
        let guard2_max = guard2.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        guard_max.max(guard2_max) <= threshold * peak
    }
}

/// Numerical model of a 1D on-chip JTC with a given input-plane capacity
/// (number of input waveguides).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JtcSimulator {
    capacity: usize,
    grid: usize,
}

impl JtcSimulator {
    /// Creates a simulator for a JTC whose input plane holds `capacity`
    /// samples (waveguides).
    ///
    /// # Errors
    ///
    /// Returns [`JtcError::InvalidConfig`] if `capacity` is zero.
    pub fn new(capacity: usize) -> Result<Self, JtcError> {
        if capacity == 0 {
            return Err(JtcError::InvalidConfig {
                name: "capacity",
                requirement: "must be at least 1".to_string(),
            });
        }
        // Grid large enough that the central term, the two correlation lobes
        // and their guard bands never alias: 8x the capacity rounded to a
        // power of two keeps every case used by PhotoFourier comfortably
        // separated.
        let grid = next_pow2(8 * capacity.max(8));
        Ok(Self { capacity, grid })
    }

    /// Input-plane capacity in samples.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Size of the numerical simulation grid.
    pub fn grid_size(&self) -> usize {
        self.grid
    }

    /// Runs the full optics chain and returns the output plane.
    ///
    /// # Errors
    ///
    /// * [`JtcError::EmptyOperand`] if the signal or kernel is empty.
    /// * [`JtcError::InputTooLarge`] if `signal.len() > capacity` or the
    ///   kernel is longer than the signal (the JTC input plane places the
    ///   kernel in the slot reserved by the row-tiling layout, which is never
    ///   longer than the signal).
    pub fn output_plane(&self, signal: &[f64], kernel: &[f64]) -> Result<JtcOutput, JtcError> {
        if signal.is_empty() {
            return Err(JtcError::EmptyOperand { what: "signal" });
        }
        if kernel.is_empty() {
            return Err(JtcError::EmptyOperand { what: "kernel" });
        }
        if signal.len() > self.capacity || kernel.len() > self.capacity {
            return Err(JtcError::InputTooLarge {
                signal_len: signal.len(),
                kernel_len: kernel.len(),
                capacity: self.capacity,
            });
        }

        let (d, n) = joint_geometry(signal.len(), kernel.len(), self.grid);

        // Joint input plane: signal at the origin, kernel at offset d.
        let mut joint = vec![Complex::ZERO; n];
        for (i, &s) in signal.iter().enumerate() {
            joint[i] = Complex::from_real(s);
        }
        for (i, &k) in kernel.iter().enumerate() {
            joint[d + i] += Complex::from_real(k);
        }

        // First lens.
        let fourier_plane = fft(&joint)?;
        // Square-law non-linearity in the Fourier plane.
        let intensity: Vec<Complex> = fourier_plane
            .iter()
            .map(|z| Complex::from_real(z.norm_sqr()))
            .collect();
        // Second lens; normalise the double-transform gain of N.
        let output = fft(&intensity)?;
        let field: Vec<f64> = output.iter().map(|z| z.re / n as f64).collect();

        Ok(JtcOutput {
            field,
            correlation_center: d,
            signal_len: signal.len(),
            kernel_len: kernel.len(),
        })
    }

    /// Convenience wrapper: runs the optics and extracts the valid
    /// cross-correlation in one call.
    ///
    /// # Errors
    ///
    /// Same conditions as [`JtcSimulator::output_plane`].
    pub fn correlate(&self, signal: &[f64], kernel: &[f64]) -> Result<Vec<f64>, JtcError> {
        Ok(self.output_plane(signal, kernel)?.valid_correlation())
    }
}

/// Joint input-plane geometry shared by the per-call and prepared paths:
/// the signal→kernel separation `d` (large enough that the correlation
/// lobes clear the central term) and the simulation grid size `n` (the
/// simulator's base grid, grown if an unusually long kernel needs more
/// guard space). Tuning either formula here retunes both execution paths.
pub(crate) fn joint_geometry(signal_len: usize, kernel_len: usize, grid: usize) -> (usize, usize) {
    let d = 2 * signal_len + kernel_len + 2;
    let n = grid.max(next_pow2(2 * d + 2 * kernel_len + 4));
    (d, n)
}

/// Tight input-plane geometry for the prepared path: the same separation
/// `d` as [`joint_geometry`] (so the output terms never overlap), but the
/// grid is the smallest **even 5-smooth** size that fits the three terms
/// plus guard space, instead of the simulator's power-of-two base grid.
///
/// `pf_dsp`'s mixed-radix plans run any 5-smooth length directly, so the
/// prepared transforms no longer pay for next-power-of-two padding — e.g. a
/// 256-sample signal against a 67-sample tiled kernel runs on a 1350-point
/// grid instead of 2048. The tight grid is always `<=` the padded one and
/// always even, so the half-spectrum optics (conjugate symmetry, mirror
/// bin handling, `d < n/2` lobe extraction) carry over unchanged.
pub(crate) fn prepared_geometry(signal_len: usize, kernel_len: usize) -> (usize, usize) {
    let d = 2 * signal_len + kernel_len + 2;
    let n = next_fast_len(2 * d + 2 * kernel_len + 4);
    (d, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_dsp::conv::{correlate1d, PaddingMode};
    use pf_dsp::util::max_abs_diff;

    #[test]
    fn constructor_validation() {
        assert!(JtcSimulator::new(0).is_err());
        let jtc = JtcSimulator::new(256).unwrap();
        assert_eq!(jtc.capacity(), 256);
        assert!(jtc.grid_size() >= 2048);
        assert!(jtc.grid_size().is_power_of_two());
    }

    #[test]
    fn rejects_bad_operands() {
        let jtc = JtcSimulator::new(16).unwrap();
        assert!(matches!(
            jtc.correlate(&[], &[1.0]),
            Err(JtcError::EmptyOperand { .. })
        ));
        assert!(matches!(
            jtc.correlate(&[1.0], &[]),
            Err(JtcError::EmptyOperand { .. })
        ));
        assert!(matches!(
            jtc.correlate(&[1.0; 17], &[1.0]),
            Err(JtcError::InputTooLarge { .. })
        ));
    }

    #[test]
    fn correlation_matches_digital_reference() {
        let jtc = JtcSimulator::new(64).unwrap();
        let signal: Vec<f64> = (0..40).map(|i| ((i as f64) * 0.3).sin() + 0.5).collect();
        let kernel = vec![0.25, 0.5, 1.0, 0.5, 0.25];
        let optical = jtc.correlate(&signal, &kernel).unwrap();
        let digital = correlate1d(&signal, &kernel, PaddingMode::Valid);
        assert_eq!(optical.len(), digital.len());
        assert!(max_abs_diff(&optical, &digital) < 1e-8);
    }

    #[test]
    fn correlation_handles_signed_values() {
        // The field-level math is linear, so signed inputs (pseudo-negative
        // weights are handled at a higher level, but the simulation itself
        // must stay exact for signed data used in fidelity studies).
        let jtc = JtcSimulator::new(32).unwrap();
        let signal = vec![1.0, -2.0, 3.0, -4.0, 5.0, 0.0, 1.5, -0.5];
        let kernel = vec![-1.0, 2.0, -1.0];
        let optical = jtc.correlate(&signal, &kernel).unwrap();
        let digital = correlate1d(&signal, &kernel, PaddingMode::Valid);
        assert!(max_abs_diff(&optical, &digital) < 1e-9);
    }

    #[test]
    fn full_correlation_matches_digital_reference() {
        let jtc = JtcSimulator::new(32).unwrap();
        let signal = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let kernel = vec![1.0, 0.0, -1.0];
        let out = jtc.output_plane(&signal, &kernel).unwrap();
        let optical_full = out.full_correlation();
        let digital_full = correlate1d(&signal, &kernel, PaddingMode::Full);
        assert_eq!(optical_full.len(), digital_full.len());
        assert!(max_abs_diff(&optical_full, &digital_full) < 1e-9);
    }

    #[test]
    fn kernel_of_length_one_is_scaling() {
        let jtc = JtcSimulator::new(16).unwrap();
        let signal = vec![1.0, 2.0, 3.0];
        let corr = jtc.correlate(&signal, &[2.0]).unwrap();
        assert!(max_abs_diff(&corr, &[2.0, 4.0, 6.0]) < 1e-9);
    }

    #[test]
    fn output_terms_are_spatially_separated() {
        // The Figure 2 property: correlation lobes clear the central term.
        let jtc = JtcSimulator::new(256).unwrap();
        let signal: Vec<f64> = (0..256).map(|i| ((i % 13) as f64) / 13.0).collect();
        let kernel: Vec<f64> = vec![0.2; 13];
        let out = jtc.output_plane(&signal, &kernel).unwrap();
        assert!(out.terms_are_separated(1e-6));
    }

    #[test]
    fn central_term_contains_signal_energy() {
        // O(x) = F[|S|^2 + |K|^2]: its DC sample equals the total energy of
        // signal and kernel plus the correlation contribution is far away.
        let jtc = JtcSimulator::new(32).unwrap();
        let signal = vec![1.0, 2.0, 2.0, 1.0];
        let kernel = vec![1.0, 1.0];
        let out = jtc.output_plane(&signal, &kernel).unwrap();
        let energy: f64 =
            signal.iter().map(|x| x * x).sum::<f64>() + kernel.iter().map(|x| x * x).sum::<f64>();
        assert!((out.field[0] - energy).abs() < 1e-9);
    }

    #[test]
    fn intensity_shifted_has_three_lobes() {
        let jtc = JtcSimulator::new(64).unwrap();
        let signal: Vec<f64> = (0..48)
            .map(|i| if i % 5 == 0 { 1.0 } else { 0.2 })
            .collect();
        let kernel = vec![1.0, 0.5, 0.25];
        let out = jtc.output_plane(&signal, &kernel).unwrap();
        let shifted = out.intensity_shifted();
        assert_eq!(shifted.len(), jtc.grid_size());
        // Centre lobe at the middle of the shifted plot.
        let mid = shifted.len() / 2;
        let center_peak: f64 = shifted[mid - 2..mid + 2]
            .iter()
            .cloned()
            .fold(0.0, f64::max);
        assert!(center_peak > 0.0);
        // Energy exists away from the centre (the correlation lobes).
        let side_energy: f64 =
            shifted[..mid - 200].iter().sum::<f64>() + shifted[mid + 200..].iter().sum::<f64>();
        assert!(side_energy > 0.0);
    }

    #[test]
    fn prepared_geometry_is_tight_even_and_sufficient() {
        for s in [1usize, 3, 8, 32, 100, 256] {
            for k in [1usize, 3, 5, 32, 67, 256] {
                let (d, n) = prepared_geometry(s, k);
                let (dj, nj) = joint_geometry(s, k, 0);
                assert_eq!(d, dj, "separation must match the per-call path");
                // Enough room for the central term and both lobes.
                assert!(n >= 2 * d + 2 * k + 4, "s={s} k={k}: n={n} too small");
                // Even (half-spectrum mirror bin exists) and never worse
                // than the padded power-of-two grid.
                assert_eq!(n % 2, 0, "s={s} k={k}: n={n} must be even");
                assert!(n <= nj, "s={s} k={k}: tight n={n} exceeds padded {nj}");
                // 5-smooth: the mixed-radix plan handles it without
                // Bluestein.
                let mut m = n;
                for p in [2usize, 3, 5] {
                    while m % p == 0 {
                        m /= p;
                    }
                }
                assert_eq!(m, 1, "s={s} k={k}: n={n} is not 5-smooth");
            }
        }
        // The headline case from the resnet18 tile geometry: 1350 < 2048.
        let (_, n) = prepared_geometry(256, 67);
        assert_eq!(n, 1350);
    }

    #[test]
    fn valid_correlation_empty_when_kernel_longer() {
        let out = JtcOutput {
            field: vec![0.0; 64],
            correlation_center: 16,
            signal_len: 2,
            kernel_len: 5,
        };
        assert!(out.valid_correlation().is_empty());
    }
}
