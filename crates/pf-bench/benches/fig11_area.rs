//! Figure 11 — area breakdown of PhotoFourier-CG and PhotoFourier-NG.

use criterion::{criterion_group, criterion_main, Criterion};
use pf_arch::area::AreaModel;
use pf_bench::{fig11_area, Table};
use pf_photonics::params::TechConfig;

fn print_results() {
    let areas = fig11_area();
    let mut table = Table::new(vec![
        "design",
        "MRR",
        "photodetector",
        "lens",
        "waveguide routing",
        "laser/splitter",
        "PIC total",
        "SRAM",
        "CMOS tile",
        "total (mm^2)",
    ]);
    for (name, b) in &areas {
        table.row(vec![
            name.clone(),
            format!("{:.2}", b.mrr_mm2),
            format!("{:.2}", b.photodetector_mm2),
            format!("{:.2}", b.lens_mm2),
            format!("{:.2}", b.waveguide_routing_mm2),
            format!("{:.2}", b.laser_splitter_mm2),
            format!("{:.1}", b.pic_mm2()),
            format!("{:.2}", b.sram_mm2),
            format!("{:.2}", b.cmos_mm2),
            format!("{:.1}", b.total_mm2()),
        ]);
    }
    println!("\n== Figure 11: area breakdown ==\n{table}");
    println!("paper reference: CG PIC 92.2 mm², SRAM 5.85, CMOS 10.15; NG PFCU 93.5, SRAM 5.3, CMOS 16.5\n");
}

fn bench(c: &mut Criterion) {
    print_results();
    let tech = TechConfig::photofourier_cg();
    let model = AreaModel::for_tech(&tech);
    let mut group = c.benchmark_group("fig11");
    group.sample_size(50);
    group.bench_function("max_waveguides_under_budget", |b| {
        b.iter(|| model.max_waveguides(&tech, 8, 100.0).expect("fits"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
