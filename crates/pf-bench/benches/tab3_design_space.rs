//! Table III — maximum waveguides per PFCU and geometric-mean FPS/W for
//! 4–64 PFCUs under a 100 mm² area budget (PhotoFourier-CG and -NG, five
//! benchmark CNNs).

use criterion::{criterion_group, criterion_main, Criterion};
use pf_arch::config::ArchConfig;
use pf_arch::design_space::sweep_pfcu_counts;
use pf_bench::{tab3_design_space, Table};
use pf_nn::models::imagenet::resnet18;

fn print_results() {
    let result = tab3_design_space().expect("table 3 experiment");
    let mut table = Table::new(vec![
        "design",
        "# PFCU",
        "# waveguides",
        "geomean FPS/W",
        "normalised",
    ]);
    for (label, points) in [("CG", &result.cg), ("NG", &result.ng)] {
        for p in points {
            table.row(vec![
                label.to_string(),
                p.num_pfcus.to_string(),
                p.waveguides.to_string(),
                format!("{:.1}", p.geomean_fps_per_watt),
                format!("{:.2}", p.normalized_fps_per_watt),
            ]);
        }
    }
    println!("\n== Table III: design-space sweep (100 mm² budget, 5 CNNs) ==\n{table}");
}

fn bench(c: &mut Criterion) {
    print_results();
    let base = ArchConfig::photofourier_cg();
    let nets = [resnet18()];
    let mut group = c.benchmark_group("tab3");
    group.sample_size(10);
    group.bench_function("design_space_sweep_resnet18", |b| {
        b.iter(|| sweep_pfcu_counts(&base, &[4, 8, 16, 32, 64], 100.0, &nets).expect("sweep"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
