//! Table I — accuracy / fidelity of the row tiling method.
//!
//! Prints per-network fidelity of the row-tiled 8-bit pipeline and the
//! synthetic end-to-end accuracy proxy, and benches a single-layer fidelity
//! evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use pf_bench::{report::fmt_sig, tab1_row_tiling_accuracy, Table};
use pf_nn::executor::{Conv2dExecutor, PipelineConfig, TiledExecutor};
use pf_nn::layers::Conv2d;
use pf_nn::Tensor;
use pf_tiling::DigitalEngine;

fn print_results() {
    let result = tab1_row_tiling_accuracy().expect("table 1 experiment");

    let mut table = Table::new(vec![
        "network",
        "mean rel. error",
        "max rel. error",
        "min SNR (dB)",
    ]);
    for report in &result.fidelity {
        table.row(vec![
            report.network.clone(),
            fmt_sig(report.mean_relative_error()),
            fmt_sig(report.max_relative_error()),
            fmt_sig(report.min_snr_db()),
        ]);
    }
    println!("\n== Table I (part a): per-layer fidelity of the PhotoFourier pipeline ==\n{table}");

    let mut proxy = Table::new(vec![
        "configuration",
        "accuracy (%)",
        "drop vs reference (%)",
    ]);
    let reference = result.accuracy_proxy[0].1;
    for (label, acc) in &result.accuracy_proxy {
        proxy.row(vec![
            label.clone(),
            format!("{:.1}", acc * 100.0),
            format!("{:+.1}", (reference - acc) * 100.0),
        ]);
    }
    println!("== Table I (part b): end-to-end accuracy proxy (synthetic task) ==\n{proxy}");
}

fn bench(c: &mut Criterion) {
    print_results();
    // Hoist layer/input generation and executor construction out of the
    // timed closure so the bench measures the row-tiled convolution, not
    // random-weight allocation (evaluate_layer regenerates both per call).
    let layer = Conv2d::random(16, 4, 3, 1, true, 0.5, 7).expect("layer");
    let input = Tensor::random(vec![16, 32, 32], -1.0, 1.0, 8);
    let tiled = TiledExecutor::new(DigitalEngine, 256, PipelineConfig::photofourier_default())
        .expect("executor");
    let mut group = c.benchmark_group("tab1");
    group.sample_size(10);
    group.bench_function("single_layer_row_tiled_forward", |b| {
        b.iter(|| tiled.forward(&input, &layer).expect("forward"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
