//! Figure 10 — geometric-mean FPS/W as the PhotoFourier optimisations are
//! applied cumulatively.

use criterion::{criterion_group, criterion_main, Criterion};
use pf_arch::optimizations::OptimizationStep;
use pf_arch::simulator::Simulator;
use pf_bench::{fig10_optimizations, Table};
use pf_nn::models::imagenet::resnet18;

fn print_results() {
    let points = fig10_optimizations().expect("figure 10 experiment");
    let mut table = Table::new(vec!["optimisation", "geomean FPS/W", "vs baseline"]);
    for p in &points {
        table.row(vec![
            p.label.clone(),
            format!("{:.1}", p.geomean_fps_per_watt),
            format!("{:.1}x", p.speedup_over_baseline),
        ]);
    }
    println!("\n== Figure 10: effect of cumulative optimisations (5 CNNs) ==\n{table}");
    println!(
        "total improvement: {:.1}x (paper: ~15x)\n",
        points
            .last()
            .map(|p| p.speedup_over_baseline)
            .unwrap_or(0.0)
    );
}

fn bench(c: &mut Criterion) {
    print_results();
    let net = resnet18();
    let mut group = c.benchmark_group("fig10");
    group.sample_size(20);
    for step in [
        OptimizationStep::Baseline,
        OptimizationStep::NonlinearMaterial,
    ] {
        let sim = Simulator::new(step.config()).expect("simulator");
        group.bench_function(
            format!("evaluate_{}", step.label().replace(' ', "_")),
            |b| b.iter(|| sim.evaluate_network(&net).expect("evaluation")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
