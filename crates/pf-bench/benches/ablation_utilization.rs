//! Ablation — waveguide utilisation and strided-convolution waste per
//! network (the effects behind PhotoFourier's AlexNet inefficiency and the
//! waveguide-count trade-off of Section V-E).

use criterion::{criterion_group, criterion_main, Criterion};
use pf_arch::config::ArchConfig;
use pf_arch::dataflow::LayerSchedule;
use pf_bench::{ablation_utilization, Table};
use pf_nn::layers::ConvLayerSpec;

fn print_results() {
    let rows = ablation_utilization().expect("ablation experiment");
    let mut table = Table::new(vec![
        "network",
        "avg waveguide utilisation (%)",
        "strided output waste (%)",
    ]);
    for row in &rows {
        table.row(vec![
            row.network.clone(),
            format!("{:.1}", row.avg_waveguide_utilization * 100.0),
            format!("{:.1}", row.strided_waste * 100.0),
        ]);
    }
    println!(
        "\n== Ablation: utilisation and strided-convolution waste (PhotoFourier-CG) ==\n{table}"
    );

    // Section VII what-if: how much cheaper data movement (photonic memory,
    // 3D integration) would still buy for each design point.
    use pf_arch::whatif::{data_movement_sweep, DISCUSSION_SCALES};
    use pf_nn::models::imagenet::resnet18;
    let mut sweep = Table::new(vec![
        "design",
        "memory energy scale",
        "FPS/W (ResNet-18)",
        "memory share (%)",
    ]);
    for (label, base) in [
        ("CG", ArchConfig::photofourier_cg()),
        ("NG", ArchConfig::photofourier_ng()),
    ] {
        let points = data_movement_sweep(&base, &DISCUSSION_SCALES, &[resnet18()])
            .expect("data-movement sweep");
        for p in points {
            sweep.row(vec![
                label.to_string(),
                format!("{:.4}", p.memory_energy_scale),
                format!("{:.1}", p.geomean_fps_per_watt),
                format!("{:.1}", p.memory_energy_share * 100.0),
            ]);
        }
    }
    println!("== Section VII what-if: cheaper data movement ==\n{sweep}");
}

fn bench(c: &mut Criterion) {
    print_results();
    let cfg = ArchConfig::photofourier_cg();
    let spec = ConvLayerSpec::new("resnet_block", 128, 128, 3, 1, 28, true).expect("spec");
    let mut group = c.benchmark_group("ablation");
    group.sample_size(50);
    group.bench_function("layer_schedule", |b| {
        b.iter(|| LayerSchedule::new(&spec, &cfg).expect("schedule"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
