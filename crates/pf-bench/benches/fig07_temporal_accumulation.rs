//! Figure 7 — accuracy (and partial-sum error) versus temporal accumulation
//! depth with an 8-bit partial-sum ADC.

use criterion::{criterion_group, criterion_main, Criterion};
use pf_bench::{fig07_temporal_accumulation, Table};
use pf_jtc::temporal::accumulate_with_depth;
use pf_photonics::adc::Adc;

fn print_results() {
    let result = fig07_temporal_accumulation().expect("figure 7 experiment");
    let mut table = Table::new(vec![
        "temporal depth",
        "psum rel. error",
        "proxy accuracy (%)",
    ]);
    for point in &result.points {
        table.row(vec![
            point.depth.to_string(),
            format!("{:.4}", point.psum_relative_error),
            format!("{:.1}", point.accuracy * 100.0),
        ]);
    }
    println!("\n== Figure 7: temporal accumulation depth sweep (8-bit ADC) ==\n{table}");
    println!(
        "fp psum accuracy: {:.1}%   reference (fp64) accuracy: {:.1}%\n",
        result.fp_psum_accuracy * 100.0,
        result.reference_accuracy * 100.0
    );
}

fn bench(c: &mut Criterion) {
    print_results();
    let adc = Adc::new(8, 0.625, 0.93).expect("adc");
    let cycles: Vec<Vec<f64>> = (0..64)
        .map(|i| {
            (0..128)
                .map(|j| (((i * 37 + j * 11) % 101) as f64 / 50.0) - 1.0)
                .collect()
        })
        .collect();
    let mut group = c.benchmark_group("fig07");
    group.sample_size(30);
    for depth in [1usize, 16] {
        group.bench_function(format!("accumulate_depth_{depth}"), |b| {
            b.iter(|| accumulate_with_depth(&cycles, depth, &adc, Some(16.0)).expect("accumulate"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
