//! Figure 2 — simulated JTC output for a 256-element row-tiled input.
//!
//! Prints the three-term separation check and benches the optics chain.

use criterion::{criterion_group, criterion_main, Criterion};
use pf_bench::{fig02_jtc_output, Table};
use pf_jtc::correlator::JtcSimulator;

fn print_results() {
    let result = fig02_jtc_output().expect("figure 2 experiment");
    let mut table = Table::new(vec!["quantity", "value"]);
    table.row(vec![
        "output plane samples".to_string(),
        result.intensity.len().to_string(),
    ]);
    table.row(vec![
        "three terms spatially separated".to_string(),
        result.terms_separated.to_string(),
    ]);
    table.row(vec![
        "correlation extraction rel. error".to_string(),
        format!("{:.2e}", result.extraction_error),
    ]);
    println!("\n== Figure 2: JTC output plane ==\n{table}");
}

fn bench(c: &mut Criterion) {
    print_results();
    let jtc = JtcSimulator::new(256).expect("simulator");
    let signal: Vec<f64> = (0..256).map(|i| ((i % 13) as f64) / 13.0).collect();
    let kernel: Vec<f64> = (0..67)
        .map(|i| if i % 32 < 3 { 0.3 } else { 0.0 })
        .collect();
    let mut group = c.benchmark_group("fig02");
    group.sample_size(20);
    group.bench_function("jtc_output_plane_256", |b| {
        b.iter(|| jtc.output_plane(&signal, &kernel).expect("jtc run"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
