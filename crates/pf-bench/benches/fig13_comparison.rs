//! Figure 13 — throughput (FPS), efficiency (FPS/W) and 1/EDP of
//! PhotoFourier against prior accelerators on AlexNet / VGG-16 / ResNet-18.

use criterion::{criterion_group, criterion_main, Criterion};
use pf_arch::config::ArchConfig;
use pf_arch::simulator::Simulator;
use pf_bench::{fig13_comparison, report::fmt_sig, Table};
use pf_nn::models::comparison_suite;

fn print_results() {
    let rows = fig13_comparison().expect("figure 13 experiment");
    for network in ["AlexNet", "VGG-16", "ResNet-18"] {
        let mut table = Table::new(vec!["accelerator", "FPS", "FPS/W", "1/EDP (1/J·s)"]);
        for row in rows.iter().filter(|r| r.network == network) {
            table.row(vec![
                row.accelerator.clone(),
                fmt_sig(row.fps),
                fmt_sig(row.fps_per_watt),
                fmt_sig(row.inverse_edp),
            ]);
        }
        println!("\n== Figure 13: {network} ==\n{table}");
    }
    println!("prior-accelerator bars are anchored reference points (see pf-baselines docs)\n");
}

fn bench(c: &mut Criterion) {
    print_results();
    let cg = Simulator::new(ArchConfig::photofourier_cg()).expect("simulator");
    let nets = comparison_suite();
    let mut group = c.benchmark_group("fig13");
    group.sample_size(20);
    group.bench_function("evaluate_comparison_suite_cg", |b| {
        b.iter(|| {
            nets.iter()
                .map(|n| cg.evaluate_network(n).expect("evaluation").fps)
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
