//! CrossLight comparison (Section VI-E) — energy per inference on the
//! 4-layer CIFAR-10 CNN.

use criterion::{criterion_group, criterion_main, Criterion};
use pf_arch::config::ArchConfig;
use pf_arch::simulator::Simulator;
use pf_bench::{crosslight_energy, Table};
use pf_nn::models::cifar::crosslight_cnn;

fn print_results() {
    let result = crosslight_energy().expect("crosslight experiment");
    let mut table = Table::new(vec!["accelerator", "energy per inference (uJ)"]);
    table.row(vec![
        "PhotoFourier-CG (simulated)".to_string(),
        format!("{:.2}", result.photofourier_cg_uj),
    ]);
    table.row(vec![
        "CrossLight (published)".to_string(),
        format!("{:.1}", result.crosslight_uj),
    ]);
    println!("\n== CrossLight comparison (4-layer CIFAR-10 CNN) ==\n{table}");
    println!(
        "advantage: {:.0}x (paper: 4.76 uJ vs 427 uJ, ~90x)\n",
        result.advantage()
    );
}

fn bench(c: &mut Criterion) {
    print_results();
    let sim = Simulator::new(ArchConfig::photofourier_cg()).expect("simulator");
    let net = crosslight_cnn();
    let mut group = c.benchmark_group("crosslight");
    group.sample_size(50);
    group.bench_function("evaluate_crosslight_cnn", |b| {
        b.iter(|| sim.evaluate_network(&net).expect("evaluation"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
