//! Figure 12 — power breakdown of PhotoFourier-CG and -NG over the five
//! benchmark CNNs.

use criterion::{criterion_group, criterion_main, Criterion};
use pf_arch::config::ArchConfig;
use pf_arch::power::EnergyBreakdown;
use pf_arch::simulator::Simulator;
use pf_bench::{fig12_power_breakdown, Table};
use pf_nn::models::paper_benchmark_suite;

fn print_results() {
    let profiles = fig12_power_breakdown().expect("figure 12 experiment");
    let mut table = Table::new(vec![
        "design",
        "avg power (W)",
        "laser %",
        "MRR %",
        "DAC %",
        "ADC %",
        "SRAM %",
        "CMOS %",
        "DRAM %",
    ]);
    for p in &profiles {
        let shares = p.breakdown.shares();
        let mut row = vec![p.design_point.clone(), format!("{:.2}", p.avg_power_w)];
        row.extend(shares.iter().map(|s| format!("{:.1}", s * 100.0)));
        table.row(row);
    }
    let _ = EnergyBreakdown::COMPONENT_LABELS;
    println!("\n== Figure 12: power breakdown (5 CNNs) ==\n{table}");
    println!("paper reference: CG average 26.0 W, NG average 8.42 W; SRAM becomes the largest NG contributor\n");
}

fn bench(c: &mut Criterion) {
    print_results();
    let sim = Simulator::new(ArchConfig::photofourier_ng()).expect("simulator");
    let nets = paper_benchmark_suite();
    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);
    group.bench_function("evaluate_five_cnns_ng", |b| {
        b.iter(|| {
            nets.iter()
                .map(|n| sim.evaluate_network(n).expect("evaluation").avg_power_w)
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
