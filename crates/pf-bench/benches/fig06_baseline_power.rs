//! Figure 6 — power contribution of the components of the un-optimised
//! 1-PFCU baseline system on VGG-16.

use criterion::{criterion_group, criterion_main, Criterion};
use pf_arch::config::ArchConfig;
use pf_arch::power::EnergyBreakdown;
use pf_arch::simulator::Simulator;
use pf_bench::{fig06_baseline_power, Table};
use pf_nn::models::imagenet::vgg16;

fn print_results() {
    let profile = fig06_baseline_power().expect("figure 6 experiment");
    let mut table = Table::new(vec!["component", "share of total power (%)"]);
    let shares = profile.breakdown.shares();
    for (label, share) in EnergyBreakdown::COMPONENT_LABELS.iter().zip(shares) {
        table.row(vec![label.to_string(), format!("{:.1}", share * 100.0)]);
    }
    println!("\n== Figure 6: 1-PFCU baseline power breakdown (VGG-16) ==\n{table}");
    println!(
        "DAC + ADC share: {:.1}% (paper: > 80%)\naverage power: {:.1} W\n",
        profile.breakdown.converter_share() * 100.0,
        profile.avg_power_w
    );
}

fn bench(c: &mut Criterion) {
    print_results();
    let sim = Simulator::new(ArchConfig::baseline_single_pfcu()).expect("simulator");
    let net = vgg16();
    let mut group = c.benchmark_group("fig06");
    group.sample_size(30);
    group.bench_function("baseline_vgg16_power_model", |b| {
        b.iter(|| sim.evaluate_network(&net).expect("evaluation"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
