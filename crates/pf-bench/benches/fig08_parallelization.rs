//! Figure 8 — the parallelisation objective IB/N_TA + CP for 8/16/32 PFCUs.

use criterion::{criterion_group, criterion_main, Criterion};
use pf_arch::parallel::optimal_scheme;
use pf_bench::{fig08_parallelization, Table};

fn print_results() {
    let sweeps = fig08_parallelization().expect("figure 8 experiment");
    let mut table = Table::new(vec!["N_PFCU", "IB", "IB/N_TA + CP"]);
    for (n, points) in &sweeps {
        for p in points {
            table.row(vec![
                n.to_string(),
                p.input_broadcast.to_string(),
                format!("{:.4}", p.objective),
            ]);
        }
    }
    println!("\n== Figure 8: parallelisation scheme objective (N_TA = 16) ==\n{table}");
    for (n, _) in &sweeps {
        let best = optimal_scheme(*n, 16).expect("scheme");
        println!(
            "N_PFCU = {n}: optimal IB = {}, CP = {}",
            best.input_broadcast, best.channel_parallel
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_results();
    // Hoist all setup out of the timed closure: the bench measures the
    // scheme optimisation itself, not the sweep's result-table allocation.
    let pfcu_counts = [8usize, 16, 32];
    let mut group = c.benchmark_group("fig08");
    group.sample_size(50);
    group.bench_function("optimal_scheme_8_16_32", |b| {
        b.iter(|| {
            pfcu_counts
                .iter()
                .map(|&n| optimal_scheme(n, 16).expect("scheme").input_broadcast)
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
