//! Frozen copy of the **seed** (pre-execution-engine) hot path.
//!
//! `speedup_vs_seed` in `BENCH_throughput.json` is only meaningful if the
//! reference it divides by never moves. The live code paths keep getting
//! faster (that is the point), so this module preserves the seed
//! implementation verbatim:
//!
//! * a per-call radix-2 FFT that recomputes the bit-reversal permutation and
//!   the twiddle factors (incrementally, `w *= w_len`) on every invocation —
//!   the original `pf_dsp::fft::fft_dir`;
//! * a JTC correlate that assembles the joint input plane and runs **two
//!   full-grid complex FFTs** per call — the original
//!   `JtcSimulator::output_plane`;
//! * strictly serial row tiling with no kernel preparation — the original
//!   `TiledConvolver::valid_by_row_tiling`;
//! * a CG signal chain ([`SeedCg`]) wrapping the seed optics in the
//!   unprepared mixed-signal pipeline (per-call DAC quantisation of both
//!   operands, sensing noise, output ADC) — the pre-preparation structure
//!   the stochastic backend ran before prepared kernels were extended to
//!   noisy engines.
//!
//! Do not "fix" or optimise this module; it is a measurement origin, not
//! production code.

use parking_lot::Mutex;
use pf_dsp::complex::Complex;
use pf_dsp::conv::{correlate1d, Matrix, PaddingMode};
use pf_dsp::util::next_pow2;
use pf_photonics::adc::Adc;
use pf_photonics::dac::Dac;
use pf_photonics::detector::SensingNoise;

/// The seed FFT: per-call bit reversal, incremental twiddles.
fn seed_fft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    assert!(n.is_power_of_two() && n > 0, "seed fft needs a pow2 length");
    let mut data = input.to_vec();

    let bits = n.trailing_zeros();
    for i in 0..n {
        let mut x = i;
        let mut j = 0usize;
        for _ in 0..bits {
            j = (j << 1) | (x & 1);
            x >>= 1;
        }
        if j > i {
            data.swap(i, j);
        }
    }

    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        let half = len / 2;
        for start in (0..n).step_by(len) {
            let mut w = Complex::ONE;
            for k in 0..half {
                let u = data[start + k];
                let v = data[start + k + half] * w;
                data[start + k] = u + v;
                data[start + k + half] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
    data
}

/// The seed ideal-JTC correlator (geometry identical to
/// `JtcSimulator::output_plane` at the seed commit).
#[derive(Debug, Clone, Copy)]
pub struct SeedJtc {
    capacity: usize,
    grid: usize,
}

impl SeedJtc {
    /// Builds the seed simulator for `capacity` input-plane samples.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self {
            capacity,
            grid: next_pow2(8 * capacity.max(8)),
        }
    }

    /// The seed valid cross-correlation: joint plane, two full complex FFTs.
    pub fn correlate(&self, signal: &[f64], kernel: &[f64]) -> Vec<f64> {
        assert!(!signal.is_empty() && !kernel.is_empty());
        assert!(signal.len() <= self.capacity && kernel.len() <= self.capacity);
        if kernel.len() > signal.len() {
            return Vec::new();
        }
        let d = 2 * signal.len() + kernel.len() + 2;
        let n = self.grid.max(next_pow2(2 * d + 2 * kernel.len() + 4));

        let mut joint = vec![Complex::ZERO; n];
        for (i, &s) in signal.iter().enumerate() {
            joint[i] = Complex::from_real(s);
        }
        for (i, &k) in kernel.iter().enumerate() {
            joint[d + i] += Complex::from_real(k);
        }

        let fourier_plane = seed_fft(&joint);
        let intensity: Vec<Complex> = fourier_plane
            .iter()
            .map(|z| Complex::from_real(z.norm_sqr()))
            .collect();
        let output = seed_fft(&intensity);
        let field: Vec<f64> = output.iter().map(|z| z.re / n as f64).collect();

        let len = signal.len() - kernel.len() + 1;
        (0..len).map(|j| field[(d + n - j) % n]).collect()
    }
}

/// The seed PhotoFourier-CG signal chain: the seed joint-plane optics
/// wrapped in the unprepared mixed-signal pipeline (8-bit DAC quantisation
/// of signal and kernel per call, RMS-relative sensing noise, 8-bit output
/// ADC). Frozen like the rest of this module: the live CG path now caches
/// prepared kernel spectra and shares signal spectra, and its speedup is
/// measured against *this* pre-preparation structure.
#[derive(Debug)]
pub struct SeedCg {
    jtc: SeedJtc,
    dac: Dac,
    adc: Adc,
    noise: SensingNoise,
}

impl SeedCg {
    /// Builds the seed CG chain for `capacity` input-plane samples, with
    /// the paper's signal-chain parameters (8-bit converters, 20 dB
    /// sensing SNR, seed 0).
    pub fn new(capacity: usize) -> Self {
        Self {
            jtc: SeedJtc::new(capacity),
            dac: Dac::new(8, 10.0, 35.71).expect("seed DAC parameters are valid"),
            adc: Adc::new(8, 0.625, 0.93).expect("seed ADC parameters are valid"),
            noise: SensingNoise::from_snr_db(pf_photonics::params::TARGET_SNR_DB, 1.0, 0)
                .expect("seed SNR is valid"),
        }
    }

    /// The seed unprepared CG correlation: per-call DAC quantisation of
    /// both operands, the seed joint-plane optics, rescale, sensing noise,
    /// output ADC.
    pub fn correlate(&mut self, signal: &[f64], kernel: &[f64]) -> Vec<f64> {
        let (signal_q, s_scale) = seed_quantize(&self.dac, signal);
        let (kernel_q, k_scale) = seed_quantize(&self.dac, kernel);
        let mut out = self.jtc.correlate(&signal_q, &kernel_q);
        let rescale = s_scale * k_scale;
        for v in &mut out {
            *v *= rescale;
        }
        let rms = (out.iter().map(|x| x * x).sum::<f64>() / out.len().max(1) as f64).sqrt();
        if rms > 0.0 {
            for v in out.iter_mut() {
                *v += self.noise.perturb(0.0) * rms;
            }
        }
        let full_scale = out
            .iter()
            .fold(0.0f64, |m, &v| m.max(v.abs()))
            .max(f64::EPSILON);
        self.adc.quantize_slice(&out, full_scale)
    }
}

/// The seed normalise-then-DAC operand quantisation.
fn seed_quantize(dac: &Dac, values: &[f64]) -> (Vec<f64>, f64) {
    let max_abs = values.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    if max_abs == 0.0 {
        return (values.to_vec(), 1.0);
    }
    let quantised: Vec<f64> = values
        .iter()
        .map(|&v| dac.generate(v.abs() / max_abs) * v.signum())
        .collect();
    (quantised, max_abs)
}

/// The seed 1D backends.
#[derive(Debug)]
pub enum SeedEngine<'a> {
    /// Exact digital dot-product reference.
    Digital,
    /// The seed ideal-JTC optics chain.
    Jtc(&'a SeedJtc),
    /// The seed CG signal chain (mutable noise state behind a mutex, like
    /// the live engine).
    Cg(&'a Mutex<SeedCg>),
}

impl SeedEngine<'_> {
    fn correlate_valid(&self, signal: &[f64], kernel: &[f64]) -> Vec<f64> {
        match self {
            SeedEngine::Digital => correlate1d(signal, kernel, PaddingMode::Valid),
            SeedEngine::Jtc(jtc) => jtc.correlate(signal, kernel),
            SeedEngine::Cg(cg) => cg.lock().correlate(signal, kernel),
        }
    }
}

/// The seed row-tiled `valid` 2D cross-correlation: serial tiles, the tiled
/// kernel rebuilt per convolution, no preparation, no parallelism. Supports
/// the full row-tiling regime (`n_conv >= kernel_rows * input_cols`), which
/// is the regime every perf scenario runs in.
pub fn seed_conv2d_valid(
    engine: &SeedEngine<'_>,
    input: &Matrix,
    kernel: &Matrix,
    n_conv: usize,
) -> Matrix {
    let si = input.cols();
    let sk = kernel.rows();
    assert!(
        n_conv >= sk * si,
        "seed path only reproduces the row-tiling regime"
    );
    let rows_per_tile = (n_conv / si).min(input.rows());
    let n_or = rows_per_tile.saturating_sub(sk).saturating_add(1).max(1);

    let out_rows = input.rows() - kernel.rows() + 1;
    let out_cols = input.cols() - kernel.cols() + 1;
    let mut out = Matrix::zeros(out_rows, out_cols);

    // Tiled kernel, rebuilt per call exactly like the seed executor did.
    let tiled_kernel_len = (sk - 1) * si + kernel.cols();
    let mut tiled_kernel = vec![0.0; tiled_kernel_len];
    for r in 0..sk {
        let dst = r * si;
        tiled_kernel[dst..dst + kernel.cols()].copy_from_slice(kernel.row(r));
    }

    let mut r0 = 0;
    while r0 < out_rows {
        let mut tiled_input = vec![0.0; n_conv];
        for i in 0..rows_per_tile {
            let r = r0 + i;
            if r >= input.rows() {
                break;
            }
            let dst = i * si;
            tiled_input[dst..dst + si].copy_from_slice(input.row(r));
        }
        let signal = &tiled_input[..rows_per_tile * si];
        let corr = engine.correlate_valid(signal, &tiled_kernel);
        for rr in 0..n_or {
            let out_r = r0 + rr;
            if out_r >= out_rows {
                break;
            }
            for c in 0..out_cols {
                out.set(out_r, c, corr[rr * si + c]);
            }
        }
        r0 += n_or;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_dsp::conv::correlate2d;
    use pf_dsp::util::max_abs_diff;

    #[test]
    fn seed_jtc_matches_digital_reference() {
        let jtc = SeedJtc::new(64);
        let signal: Vec<f64> = (0..40).map(|i| ((i as f64) * 0.3).sin() + 0.5).collect();
        let kernel = vec![0.25, 0.5, 1.0, 0.5, 0.25];
        let optical = jtc.correlate(&signal, &kernel);
        let digital = correlate1d(&signal, &kernel, PaddingMode::Valid);
        assert_eq!(optical.len(), digital.len());
        assert!(max_abs_diff(&optical, &digital) < 1e-8);
    }

    #[test]
    fn seed_conv2d_matches_reference_on_both_engines() {
        let input = Matrix::new(
            16,
            16,
            (0..256).map(|i| (i as f64 * 0.11).sin() + 0.2).collect(),
        )
        .unwrap();
        let kernel = Matrix::new(3, 3, (0..9).map(|i| (i as f64 - 4.0) / 9.0).collect()).unwrap();
        let reference = correlate2d(&input, &kernel, PaddingMode::Valid);

        let digital = seed_conv2d_valid(&SeedEngine::Digital, &input, &kernel, 256);
        assert!(max_abs_diff(digital.data(), reference.data()) < 1e-10);

        let jtc = SeedJtc::new(256);
        let optical = seed_conv2d_valid(&SeedEngine::Jtc(&jtc), &input, &kernel, 256);
        assert!(max_abs_diff(optical.data(), reference.data()) < 1e-7);
    }

    #[test]
    fn seed_cg_is_noisy_but_close() {
        use pf_dsp::util::relative_l2_error;

        let input = Matrix::new(
            16,
            16,
            (0..256).map(|i| (i as f64 * 0.13).sin() + 0.4).collect(),
        )
        .unwrap();
        let kernel = Matrix::new(3, 3, (0..9).map(|i| (i as f64 - 4.0) / 9.0).collect()).unwrap();
        let reference = correlate2d(&input, &kernel, PaddingMode::Valid);
        let cg = Mutex::new(SeedCg::new(256));
        let noisy = seed_conv2d_valid(&SeedEngine::Cg(&cg), &input, &kernel, 256);
        let err = relative_l2_error(noisy.data(), reference.data());
        assert!(err > 0.0, "the seed CG chain must actually inject noise");
        assert!(err < 0.25, "seed CG error unexpectedly large: {err}");
    }
}
