//! The serving load-generator behind `cargo run -p pf-bench --bin loadgen`.
//!
//! Drives the `pf-serve` micro-batching inference server with concurrent,
//! seeded-RNG traffic and emits a machine-readable `BENCH_serving.json` —
//! the latency axis of the repo's performance trajectory (the throughput
//! axis is `perf.rs`). Two arrival patterns:
//!
//! * **closed loop** — `concurrency` submitter threads, each submitting a
//!   request and blocking on its result before the next (classic
//!   latency-measurement harness; offered load adapts to service rate);
//! * **open loop** — one submitter paces arrivals by a seeded exponential
//!   (Poisson) process at a target request rate, never waiting for results
//!   (offered load is independent of service rate, so queueing and
//!   overload behaviour are visible).
//!
//! Every record carries the server's own [`ServerStats`] (p50/p95/p99
//! latency, queue-wait, achieved batch-size histogram, throughput) plus
//! `matches_offline`: whether every served result was bit-identical to the
//! offline path — `Session::run_batch` for deterministic backends,
//! `Session::run_inference_seeded` keyed by each ticket's admission
//! sequence number for the stochastic CG chain.

use std::time::{Duration, Instant};

use parking_lot::Mutex;
use photofourier::prelude::*;
use photofourier::serve::{self, ServerStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Schema identifier written into the report.
pub const SCHEMA: &str = "pf-bench/serving-v1";

/// How long a load run offers traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// Exactly this many requests in total (deterministic; the smoke mode).
    Requests(usize),
    /// As many requests as fit in this wall-time window.
    Wall(Duration),
}

/// One measured backend/pattern combination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingRecord {
    /// Backend registry name (`digital`, `jtc_ideal`, `photofourier_cg`).
    pub backend: String,
    /// `closed_loop` or `open_loop`.
    pub pattern: String,
    /// Closed loop: submitter threads. Open loop: always 1.
    pub concurrency: usize,
    /// Open loop: target arrival rate. Closed loop: 0 (load is adaptive).
    pub target_rps: f64,
    /// Whether every served result was bit-identical to the offline
    /// single-session path on the same inputs.
    pub matches_offline: bool,
    /// The server's own accounting: counts, latency percentiles,
    /// queue-wait, achieved batch-size histogram, throughput.
    pub stats: ServerStats,
}

/// Telemetry accounting for a traced run, embedded in the report when the
/// load was generated under a live [`Telemetry`] handle (absent otherwise,
/// so untraced reports round-trip unchanged).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Spans the bounded ring buffer retained.
    pub spans_recorded: u64,
    /// Spans the ring discarded once full (drop-oldest losses; non-zero
    /// means the start of the trace is missing, not that data is wrong).
    pub spans_dropped: u64,
    /// Deepest queue occupancy any server in the run saw — the max over
    /// every `serve.queue_high_water` gauge (replica-prefixed ones
    /// included, so routed runs report the worst shard).
    pub queue_high_water: u64,
}

impl TraceSummary {
    /// Reads the summary out of a telemetry handle, first mirroring the
    /// process-wide scratch-arena counters so the snapshot is complete.
    /// `None` when the handle is disabled.
    pub fn from_telemetry(tel: &Telemetry) -> Option<Self> {
        if !tel.is_enabled() {
            return None;
        }
        photofourier::mirror_scratch_gauges(tel);
        let snapshot = tel.snapshot();
        let queue_high_water = snapshot
            .gauges
            .iter()
            .filter(|(name, _)| name.ends_with("serve.queue_high_water"))
            .map(|&(_, v)| v)
            .max()
            .unwrap_or(0);
        Some(Self {
            spans_recorded: snapshot.spans_recorded,
            spans_dropped: snapshot.spans_dropped,
            queue_high_water,
        })
    }
}

/// The full report serialised to `BENCH_serving.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// Schema identifier ([`SCHEMA`]).
    pub schema: String,
    /// `smoke` (CI) or `full`.
    pub mode: String,
    /// Worker threads rayon-style dispatch uses on this host (the engine's
    /// per-image parallelism inside each micro-batch).
    pub host_threads: usize,
    /// Measured records.
    pub results: Vec<ServingRecord>,
    /// Telemetry accounting when the run was traced (`loadgen --trace`).
    pub trace: Option<TraceSummary>,
}

/// Options of [`run_suite`], typically parsed from loadgen flags.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenOptions {
    /// Small fixed request counts and the smoke serving config (CI).
    pub smoke: bool,
    /// Backends to measure. Empty means the mode's default set.
    pub backends: Vec<BackendKind>,
    /// Closed-loop submitter threads.
    pub concurrency: usize,
    /// Open-loop target arrival rate (requests/s).
    pub rps: f64,
    /// Full-mode wall-time budget per closed-loop record; also sizes the
    /// open-loop request count (`rps * duration`).
    pub duration: Duration,
    /// Seed of the arrival-process and image RNGs.
    pub seed: u64,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        Self {
            smoke: false,
            backends: Vec::new(),
            concurrency: 4,
            rps: 200.0,
            duration: Duration::from_secs(2),
            seed: 42,
        }
    }
}

/// The serving configuration a load run uses (the scenario's `[serving]`
/// section equivalent, sized for the mode).
fn serving_spec(smoke: bool) -> ServingSpec {
    if smoke {
        ServingSpec {
            max_batch: 4,
            batch_timeout_us: 200,
            queue_depth: 256,
            workers: 1,
            router: None,
        }
    } else {
        ServingSpec {
            max_batch: 8,
            batch_timeout_us: 1_000,
            queue_depth: 256,
            workers: 1,
            router: None,
        }
    }
}

fn backend_scenario(kind: BackendKind, smoke: bool) -> Scenario {
    let mut scenario = Scenario::new(
        format!("loadgen_{kind}"),
        "resnet18",
        BackendSpec {
            kind,
            capacity: 256,
        },
    );
    scenario.serving = Some(serving_spec(smoke));
    scenario
}

/// The image request `(worker, k)` submits: seeded, so two runs (and the
/// offline verification) see identical traffic.
fn request_image(scenario: &Scenario, seed: u64, worker: usize, k: usize) -> Tensor {
    let f = &scenario.functional;
    let image_seed = seed
        .wrapping_add(worker as u64 * 1_000_003)
        .wrapping_add(k as u64);
    Tensor::random(
        vec![f.input_channels, f.input_size, f.input_size],
        0.0,
        1.0,
        image_seed,
    )
}

/// One served request, recorded for offline verification.
type Outcome = (u64, Tensor, Tensor); // (seq, input, served output)

fn tensors_bit_equal(a: &Tensor, b: &Tensor) -> bool {
    a.shape() == b.shape()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Re-runs every served request through a fresh offline session and checks
/// bit-identity. Deterministic backends go through the batched offline path
/// (`run_batch`); the stochastic chain replays each request's admission
/// seed.
fn verify_offline(session: &Session, outcomes: &[Outcome]) -> bool {
    if outcomes.is_empty() {
        return true;
    }
    if session.is_stochastic() {
        return outcomes.iter().all(|(seq, input, served)| {
            session
                .run_inference_seeded(input, *seq)
                .map(|offline| tensors_bit_equal(&offline, served))
                .unwrap_or(false)
        });
    }
    let inputs: Vec<Tensor> = outcomes.iter().map(|(_, input, _)| input.clone()).collect();
    match session.run_batch(&inputs) {
        Ok(offline) => offline
            .iter()
            .zip(outcomes)
            .all(|(o, (_, _, served))| tensors_bit_equal(o, served)),
        Err(_) => false,
    }
}

/// Runs a closed-loop load: `concurrency` submitter threads, each blocking
/// on its request's result before submitting the next.
///
/// # Errors
///
/// Propagates session/server construction errors (individual request
/// failures are accounted in the record's stats instead).
pub fn run_closed_loop(
    kind: BackendKind,
    concurrency: usize,
    budget: Budget,
    seed: u64,
    smoke: bool,
) -> Result<ServingRecord, PfError> {
    run_closed_loop_traced(
        kind,
        concurrency,
        budget,
        seed,
        smoke,
        &Telemetry::disabled(),
    )
}

/// [`run_closed_loop`] under a telemetry handle: the server records
/// `serve.*` counters and per-request span trees into `tel`. Results are
/// bit-identical to the untraced run.
///
/// # Errors
///
/// Same conditions as [`run_closed_loop`].
pub fn run_closed_loop_traced(
    kind: BackendKind,
    concurrency: usize,
    budget: Budget,
    seed: u64,
    smoke: bool,
    tel: &Telemetry,
) -> Result<ServingRecord, PfError> {
    let scenario = backend_scenario(kind, smoke);
    let offline = Session::from_scenario(scenario.clone())?;
    // Scope this record's counters apart from the suite's other servers
    // (the registry is shared, so an unscoped second server would report
    // cumulative counts); spans stay on the shared unscoped timeline.
    let server =
        serve::serve_scenario_traced(scenario, tel.with_prefix(&format!("closed_{kind}")))?;

    let outcomes: Mutex<Vec<Outcome>> = Mutex::new(Vec::new());
    let deadline = match budget {
        Budget::Wall(window) => Some(Instant::now() + window),
        Budget::Requests(_) => None,
    };
    let per_worker = |w: usize| match budget {
        Budget::Requests(total) => {
            total / concurrency.max(1) + usize::from(w < total % concurrency.max(1))
        }
        Budget::Wall(_) => usize::MAX,
    };

    std::thread::scope(|scope| {
        for w in 0..concurrency.max(1) {
            let server = &server;
            let outcomes = &outcomes;
            let scenario = offline.scenario();
            scope.spawn(move || {
                let quota = per_worker(w);
                let mut k = 0;
                while k < quota {
                    if let Some(deadline) = deadline {
                        if Instant::now() >= deadline {
                            break;
                        }
                    }
                    let input = request_image(scenario, seed, w, k);
                    if let Ok(ticket) = server.submit(input.clone()) {
                        let seq = ticket.seq();
                        if let Ok(output) = ticket.wait() {
                            outcomes.lock().push((seq, input, output));
                        }
                    }
                    k += 1;
                }
            });
        }
    });

    let stats = server.shutdown()?;
    let matches_offline = verify_offline(&offline, &outcomes.into_inner());
    Ok(ServingRecord {
        backend: kind.name().to_string(),
        pattern: "closed_loop".to_string(),
        concurrency: concurrency.max(1),
        target_rps: 0.0,
        matches_offline,
        stats,
    })
}

/// Runs an open-loop load: one submitter paces `requests` arrivals by a
/// seeded exponential (Poisson) process at `rps`, collecting every ticket
/// afterwards. Overload shows up as rejected requests in the stats rather
/// than back-pressure on the arrival process.
///
/// # Errors
///
/// Propagates session/server construction errors.
pub fn run_open_loop(
    kind: BackendKind,
    rps: f64,
    requests: usize,
    seed: u64,
    smoke: bool,
) -> Result<ServingRecord, PfError> {
    run_open_loop_traced(kind, rps, requests, seed, smoke, &Telemetry::disabled())
}

/// [`run_open_loop`] under a telemetry handle (see
/// [`run_closed_loop_traced`]).
///
/// # Errors
///
/// Same conditions as [`run_open_loop`].
pub fn run_open_loop_traced(
    kind: BackendKind,
    rps: f64,
    requests: usize,
    seed: u64,
    smoke: bool,
    tel: &Telemetry,
) -> Result<ServingRecord, PfError> {
    assert!(rps > 0.0, "open loop needs a positive arrival rate");
    let scenario = backend_scenario(kind, smoke);
    let offline = Session::from_scenario(scenario.clone())?;
    // See run_closed_loop_traced: per-record metric scope, shared spans.
    let server = serve::serve_scenario_traced(scenario, tel.with_prefix(&format!("open_{kind}")))?;

    let mut rng = StdRng::seed_from_u64(seed);
    let mut tickets = Vec::with_capacity(requests);
    let mut next_arrival = Instant::now();
    for k in 0..requests {
        // Exponential inter-arrival gap (u is in [0, 1), so 1 - u > 0).
        let u: f64 = rng.gen_range(0.0..1.0);
        let gap = -(1.0 - u).ln() / rps;
        next_arrival += Duration::from_secs_f64(gap);
        let now = Instant::now();
        if next_arrival > now {
            std::thread::sleep(next_arrival - now);
        }
        let input = request_image(offline.scenario(), seed, 0, k);
        if let Ok(ticket) = server.submit(input.clone()) {
            tickets.push((input, ticket));
        }
    }

    let mut outcomes: Vec<Outcome> = Vec::with_capacity(tickets.len());
    for (input, ticket) in tickets {
        let seq = ticket.seq();
        if let Ok(output) = ticket.wait() {
            outcomes.push((seq, input, output));
        }
    }

    let stats = server.shutdown()?;
    let matches_offline = verify_offline(&offline, &outcomes);
    Ok(ServingRecord {
        backend: kind.name().to_string(),
        pattern: "open_loop".to_string(),
        concurrency: 1,
        target_rps: rps,
        matches_offline,
        stats,
    })
}

/// Runs the full record matrix for one mode.
///
/// Smoke: closed loop on the mode's backends (default `digital` +
/// `jtc_ideal`) with 32 requests each, plus one open-loop record on the
/// last backend. Full: closed loop (wall-time budget) and open loop
/// (`rps * duration` requests) on every backend (default all three).
///
/// # Errors
///
/// Propagates the first record's error.
pub fn run_suite(options: &LoadgenOptions) -> Result<ServingReport, PfError> {
    run_suite_traced(options, &Telemetry::disabled())
}

/// [`run_suite`] under a telemetry handle: every record's server shares
/// `tel`, and the report carries a [`TraceSummary`] (`None` when `tel` is
/// disabled, making this identical to [`run_suite`]).
///
/// # Errors
///
/// Same conditions as [`run_suite`].
pub fn run_suite_traced(
    options: &LoadgenOptions,
    tel: &Telemetry,
) -> Result<ServingReport, PfError> {
    let backends: Vec<BackendKind> = if options.backends.is_empty() {
        if options.smoke {
            vec![BackendKind::Digital, BackendKind::JtcIdeal]
        } else {
            BackendKind::ALL.to_vec()
        }
    } else {
        options.backends.clone()
    };

    let mut results = Vec::new();
    for &kind in &backends {
        let budget = if options.smoke {
            Budget::Requests(32)
        } else {
            Budget::Wall(options.duration)
        };
        results.push(run_closed_loop_traced(
            kind,
            options.concurrency,
            budget,
            options.seed,
            options.smoke,
            tel,
        )?);
    }
    let open_backends: &[BackendKind] = if options.smoke {
        &backends[backends.len() - 1..]
    } else {
        &backends
    };
    for &kind in open_backends {
        let requests = if options.smoke {
            32
        } else {
            ((options.rps * options.duration.as_secs_f64()).ceil() as usize).max(1)
        };
        results.push(run_open_loop_traced(
            kind,
            options.rps,
            requests,
            options.seed,
            options.smoke,
            tel,
        )?);
    }

    Ok(ServingReport {
        schema: SCHEMA.to_string(),
        mode: if options.smoke { "smoke" } else { "full" }.to_string(),
        host_threads: rayon::current_num_threads(),
        results,
        trace: TraceSummary::from_telemetry(tel),
    })
}

/// The smoke gate CI enforces: no rejections, no failures, every record
/// bit-identical to the offline path, and the sanity invariants
/// (`served + rejected + failed + expired + cancelled == submitted`,
/// monotone percentiles).
/// Returns human-readable failure descriptions (empty = gate passes).
pub fn check_smoke(report: &ServingReport) -> Vec<String> {
    let mut failures = Vec::new();
    for record in &report.results {
        let tag = format!("{}/{}", record.pattern, record.backend);
        let s = &record.stats;
        if s.rejected > 0 {
            failures.push(format!("{tag}: {} request(s) rejected", s.rejected));
        }
        if s.failed > 0 {
            failures.push(format!("{tag}: {} request(s) failed", s.failed));
        }
        if !record.matches_offline {
            failures.push(format!(
                "{tag}: served results diverge from the offline session"
            ));
        }
        if s.expired > 0 || s.cancelled > 0 {
            failures.push(format!(
                "{tag}: {} expired / {} cancelled (loadgen sets no deadlines)",
                s.expired, s.cancelled
            ));
        }
        if s.served + s.rejected + s.failed + s.expired + s.cancelled != s.submitted {
            failures.push(format!(
                "{tag}: accounting broken ({} + {} + {} + {} + {} != {})",
                s.served, s.rejected, s.failed, s.expired, s.cancelled, s.submitted
            ));
        }
        if s.latency.p99_ms < s.latency.p50_ms {
            failures.push(format!(
                "{tag}: p99 {} below p50 {}",
                s.latency.p99_ms, s.latency.p50_ms
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_closed_loop_matches_offline_and_accounts_fully() {
        let record =
            run_closed_loop(BackendKind::Digital, 2, Budget::Requests(8), 7, true).unwrap();
        assert_eq!(record.backend, "digital");
        assert_eq!(record.pattern, "closed_loop");
        assert!(record.matches_offline);
        let s = &record.stats;
        assert_eq!(s.submitted, 8);
        assert_eq!(s.served, 8);
        assert_eq!(s.rejected, 0);
        assert_eq!(s.served + s.rejected + s.failed, s.submitted);
        assert!(s.latency.p99_ms >= s.latency.p50_ms);
        assert!(s.throughput_rps > 0.0);
        let batches: u64 = s.batch_histogram.iter().map(|b| b.count).sum();
        let requests: u64 = s
            .batch_histogram
            .iter()
            .map(|b| b.size as u64 * b.count)
            .sum();
        assert!(batches > 0);
        assert_eq!(requests, s.served + s.failed);
    }

    #[test]
    fn open_loop_paces_and_verifies() {
        let record = run_open_loop(BackendKind::JtcIdeal, 400.0, 8, 9, true).unwrap();
        assert_eq!(record.pattern, "open_loop");
        assert!(record.matches_offline);
        assert_eq!(record.stats.submitted, 8);
        assert_eq!(record.stats.served, 8);
    }

    #[test]
    fn stochastic_backend_replays_by_admission_seed() {
        let record = run_closed_loop(
            BackendKind::PhotofourierCg,
            2,
            Budget::Requests(6),
            11,
            true,
        )
        .unwrap();
        assert!(
            record.matches_offline,
            "CG results must replay from ticket seqs"
        );
        assert_eq!(record.stats.served, 6);
    }

    #[test]
    fn smoke_gate_flags_broken_records() {
        let good = run_closed_loop(BackendKind::Digital, 1, Budget::Requests(4), 3, true).unwrap();
        let mut report = ServingReport {
            schema: SCHEMA.to_string(),
            mode: "smoke".to_string(),
            host_threads: 1,
            results: vec![good],
            trace: None,
        };
        assert!(check_smoke(&report).is_empty());
        report.results[0].matches_offline = false;
        report.results[0].stats.rejected = 1;
        let failures = check_smoke(&report);
        assert_eq!(failures.len(), 3, "{failures:?}"); // reject, diverge, accounting
    }

    #[test]
    fn report_serializes_round_trip() {
        let record =
            run_closed_loop(BackendKind::Digital, 1, Budget::Requests(2), 1, true).unwrap();
        let report = ServingReport {
            schema: SCHEMA.to_string(),
            mode: "smoke".to_string(),
            host_threads: 4,
            results: vec![record],
            trace: None,
        };
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: ServingReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
