//! `cargo run -p pf-bench --bin sweep` — the declarative design-space
//! sweep driver.
//!
//! Loads a scenario file, expands its `[sweep]` section into the full
//! cartesian grid (see `docs/SCENARIOS.md`), executes every point
//! rayon-parallel through the `photofourier::SweepRunner`, prints a summary
//! table and writes the `SweepReport` as both JSON and CSV.
//!
//! Flags:
//!
//! * `--scenario PATH`  scenario file (`.toml` or `.json`) — required
//! * `--out PATH`       JSON report path (default `SWEEP_report.json`);
//!   the CSV is written next to it with a `.csv` extension
//! * `--smoke`          small functional probes (the CI configuration)
//! * `--filter SUBSTR`  run only points whose id contains the substring
//! * `--serial`         disable parallel point execution (reports are
//!   bit-for-bit identical either way)

use std::path::PathBuf;
use std::process::ExitCode;

use pf_bench::Table;
use photofourier::prelude::*;

fn usage() {
    eprintln!("usage: sweep --scenario PATH [--out PATH] [--smoke] [--filter SUBSTR] [--serial]");
}

fn print_report(report: &SweepReport) {
    println!(
        "\n== sweep `{}` ({} mode, {} point(s)) ==\n",
        report.base,
        report.mode,
        report.points.len()
    );
    let mut table = Table::new(vec![
        "point",
        "backend",
        "network",
        "pfcu",
        "td",
        "fps",
        "fps/W",
        "conv2d err",
        "infer err",
    ]);
    for p in &report.points {
        table.row(vec![
            p.id.clone(),
            p.backend.clone(),
            p.network.clone(),
            p.num_pfcus.to_string(),
            p.temporal_depth.to_string(),
            format!("{:.1}", p.fps),
            format!("{:.1}", p.fps_per_watt),
            format!("{:.2e}", p.conv2d_max_abs_err),
            format!("{:.2e}", p.inference_mean_abs_err),
        ]);
    }
    println!("{}", table.render());
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scenario_path: Option<String> = None;
    let mut out = "SWEEP_report.json".to_string();
    let mut smoke = false;
    let mut serial = false;
    let mut filter: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--full" => smoke = false,
            "--serial" => serial = true,
            "--scenario" | "--out" | "--filter" => {
                let flag = args[i].clone();
                i += 1;
                let Some(value) = args.get(i) else {
                    eprintln!("{flag} needs a value");
                    usage();
                    return ExitCode::from(2);
                };
                match flag.as_str() {
                    "--scenario" => scenario_path = Some(value.clone()),
                    "--out" => out = value.clone(),
                    _ => filter = Some(value.clone()),
                }
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other}");
                usage();
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    let Some(scenario_path) = scenario_path else {
        eprintln!("--scenario is required");
        usage();
        return ExitCode::from(2);
    };
    let scenario = match Scenario::from_path(&scenario_path) {
        Ok(scenario) => scenario,
        Err(e) => {
            eprintln!("failed to load {scenario_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut runner = match SweepRunner::new(scenario) {
        Ok(runner) => runner,
        Err(e) => {
            eprintln!("failed to expand sweep: {e}");
            return ExitCode::FAILURE;
        }
    };
    let total = runner.plan().points().len();
    if let Some(pattern) = &filter {
        runner = runner.filter(pattern);
        println!(
            "filter `{pattern}` matched {} of {total} point(s)",
            runner.plan().points().len()
        );
    } else {
        println!("expanded {total} point(s)");
    }
    runner = runner.smoke(smoke).parallel(!serial);

    let start = std::time::Instant::now();
    let report = match runner.run() {
        Ok(report) => report,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = start.elapsed();
    print_report(&report);
    println!(
        "ran {} point(s) in {:.2}s ({})",
        report.points.len(),
        elapsed.as_secs_f64(),
        if serial { "serial" } else { "parallel" }
    );

    let json = match report.to_json() {
        Ok(json) => json,
        Err(e) => {
            eprintln!("failed to serialise report: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&out, json + "\n") {
        eprintln!("failed to write {out}: {e}");
        return ExitCode::FAILURE;
    }
    let csv_path = PathBuf::from(&out).with_extension("csv");
    if let Err(e) = std::fs::write(&csv_path, report.to_csv()) {
        eprintln!("failed to write {}: {e}", csv_path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {out} and {}", csv_path.display());
    ExitCode::SUCCESS
}
