//! `cargo run -p pf-bench --bin perf` — the throughput perf harness.
//!
//! Measures batched conv2d and batched inference on every backend, writes
//! `BENCH_throughput.json`, and (with `--check`) gates against the
//! committed `benches/baseline.json`. See the README "Performance" section
//! for the schema and the CI wiring, and `docs/PERFORMANCE.md` ("Reading
//! the scaling curves") for the `--threads-sweep` output.
//!
//! Flags:
//!
//! * `--smoke`          small shapes / few reps (the CI bench-smoke job)
//! * `--out PATH`       report path (default `BENCH_throughput.json`)
//! * `--check PATH`     compare against a committed baseline; non-zero exit
//!   on regression (throughput floors and, when the sweep ran, the
//!   core-gated thread-scaling floors)
//! * `--tolerance F`    allowed fractional regression for `--check`
//!   (default 0.30 = 30%)
//! * `--threads N`      size the parallel-dispatch worker pool (default:
//!   one worker per available core); the report records both the request
//!   (`host_threads_configured`) and the pool actually used
//!   (`host_threads`)
//! * `--threads-sweep 1,2,4`  measure thread-scaling curves: each listed
//!   pool width is installed as a scoped pool and every smoke scenario is
//!   re-timed under it; emitted under the report's `threads` key
//! * `--grain G`        parallelism grain for the sweep sessions: `auto`
//!   (default), `image` or `tile`
//! * `--md-summary PATH`  write the report as a GitHub-flavoured markdown
//!   table (the CI `$GITHUB_STEP_SUMMARY` payload)
//! * `--stages`         additionally measure the per-scenario, per-backend
//!   stage breakdown (signal-FFT / spectrum-apply / inverse / DAC-ADC
//!   shares under each scenario's tile geometry) and emit it under the
//!   report's `stages` key
//! * `--trace PATH`     run one batched inference per backend under a live
//!   telemetry handle and export the span trees (bench → run_batch →
//!   per-stage children) as validated Chrome trace-event JSON, printing
//!   the flamegraph-style text tree alongside
//! * `--overhead-check` measure the telemetry-enabled inference workload
//!   against the disabled path (interleaved best-of) and fail if the
//!   overhead exceeds the budget (default 3%)
//! * `--overhead-budget F`  override that budget fraction

use std::process::ExitCode;

use pf_bench::perf::{
    check_against_baseline, check_scaling_against_baseline, markdown_summary, run_suite,
    telemetry_overhead, thread_scaling, traced_run, Baseline, PerfReport, OVERHEAD_BUDGET,
};
use photofourier::telemetry::validate_chrome_trace;
use photofourier::{ParallelGrain, Telemetry};

fn usage() {
    eprintln!(
        "usage: perf [--smoke] [--stages] [--out PATH] [--check BASELINE] [--tolerance FRACTION] \
         [--threads N] [--threads-sweep N,N,...] [--grain auto|image|tile] [--md-summary PATH] \
         [--trace PATH] [--overhead-check] [--overhead-budget F]"
    );
}

fn print_report(report: &PerfReport) {
    println!(
        "\n== PhotoFourier throughput ({} mode, {} host thread(s), {} core(s)) ==",
        report.mode, report.host_threads, report.host_cores
    );
    println!(
        "{:<22} {:<16} {:>6} {:>12} {:>12} {:>10} {:>14}",
        "scenario", "backend", "batch", "imgs/s", "seed imgs/s", "us/conv", "speedup_vs_seed"
    );
    for r in &report.results {
        println!(
            "{:<22} {:<16} {:>6} {:>12.2} {:>12.2} {:>10.2} {:>14.2}",
            r.scenario,
            r.backend,
            r.batch,
            r.images_per_s,
            r.seed_images_per_s,
            r.us_per_conv,
            r.speedup_vs_seed
        );
    }
    if let Some(threads) = &report.threads {
        println!(
            "\n-- thread scaling (requested grain: {}, widths {:?}) --",
            threads.grain, threads.counts
        );
        println!(
            "{:<22} {:<16} {:>7} {:>8} {:>12} {:>12} {:>11}",
            "scenario", "backend", "threads", "grain", "imgs/s", "speedup_vs_1", "efficiency"
        );
        for r in &threads.curve {
            println!(
                "{:<22} {:<16} {:>7} {:>8} {:>12.2} {:>12.2} {:>11.2}",
                r.scenario,
                r.backend,
                r.threads,
                r.grain,
                r.images_per_s,
                r.speedup_vs_1,
                r.efficiency
            );
        }
    }
    if let Some(stages) = &report.stages {
        println!("\n-- stage breakdown (shares of one prepared correlation) --");
        println!(
            "{:<22} {:<16} {:>12} {:>15} {:>10} {:>10} {:>10}",
            "scenario", "backend", "signal_fft", "spectrum_apply", "inverse", "dac_adc", "other_us"
        );
        for s in stages {
            println!(
                "{:<22} {:<16} {:>11.1}% {:>14.1}% {:>9.1}% {:>9.1}% {:>10.1}",
                s.scenario,
                s.backend,
                s.signal_fft_share * 100.0,
                s.spectrum_apply_share * 100.0,
                s.inverse_share * 100.0,
                s.dac_adc_share * 100.0,
                s.other_us
            );
        }
    }
    println!();
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut stages = false;
    let mut out = "BENCH_throughput.json".to_string();
    let mut check: Option<String> = None;
    let mut tolerance = 0.30f64;
    let mut threads: Option<usize> = None;
    let mut sweep: Option<Vec<usize>> = None;
    let mut grain = ParallelGrain::Auto;
    let mut md_summary: Option<String> = None;
    let mut trace: Option<String> = None;
    let mut overhead_check = false;
    let mut overhead_budget = OVERHEAD_BUDGET;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--full" => smoke = false,
            "--stages" => stages = true,
            "--overhead-check" => overhead_check = true,
            "--out" | "--check" | "--tolerance" | "--threads" | "--threads-sweep" | "--grain"
            | "--md-summary" | "--trace" | "--overhead-budget" => {
                let flag = args[i].clone();
                i += 1;
                let Some(value) = args.get(i) else {
                    eprintln!("{flag} needs a value");
                    usage();
                    return ExitCode::from(2);
                };
                match flag.as_str() {
                    "--out" => out = value.clone(),
                    "--check" => check = Some(value.clone()),
                    "--md-summary" => md_summary = Some(value.clone()),
                    "--trace" => trace = Some(value.clone()),
                    "--overhead-budget" => match value.parse::<f64>() {
                        Ok(f) if (0.0..1.0).contains(&f) => overhead_budget = f,
                        _ => {
                            eprintln!("--overhead-budget needs a fraction in [0, 1)");
                            return ExitCode::from(2);
                        }
                    },
                    "--threads" => match value.parse::<usize>() {
                        Ok(n) if n >= 1 => threads = Some(n),
                        _ => {
                            eprintln!("--threads needs an integer >= 1");
                            return ExitCode::from(2);
                        }
                    },
                    "--threads-sweep" => {
                        let counts: Result<Vec<usize>, _> = value
                            .split(',')
                            .map(|s| s.trim().parse::<usize>())
                            .collect();
                        match counts {
                            Ok(counts) if counts.iter().all(|&n| n >= 1) && !counts.is_empty() => {
                                sweep = Some(counts);
                            }
                            _ => {
                                eprintln!(
                                    "--threads-sweep needs a comma-separated list of integers >= 1"
                                );
                                return ExitCode::from(2);
                            }
                        }
                    }
                    "--grain" => match ParallelGrain::from_name(value) {
                        Some(g) => grain = g,
                        None => {
                            eprintln!("--grain needs one of: auto, image, tile");
                            return ExitCode::from(2);
                        }
                    },
                    _ => match value.parse::<f64>() {
                        Ok(t) if (0.0..1.0).contains(&t) => tolerance = t,
                        _ => {
                            eprintln!("--tolerance needs a fraction in [0, 1)");
                            return ExitCode::from(2);
                        }
                    },
                }
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other}");
                usage();
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    if let Some(n) = threads {
        if rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .is_err()
        {
            eprintln!("failed to configure a {n}-thread worker pool");
            return ExitCode::FAILURE;
        }
    }

    let mut report = match run_suite(smoke, stages) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("perf suite failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    report.host_threads_configured = threads.unwrap_or(0);
    if let Some(counts) = &sweep {
        report.threads = match thread_scaling(smoke, counts, grain) {
            Ok(scaling) => Some(scaling),
            Err(e) => {
                eprintln!("thread-scaling sweep failed: {e}");
                return ExitCode::FAILURE;
            }
        };
    }
    print_report(&report);

    let json = match serde_json::to_string_pretty(&report) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("failed to serialise report: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&out, json + "\n") {
        eprintln!("failed to write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");

    let baseline: Option<Baseline> = match &check {
        Some(baseline_path) => {
            match std::fs::read_to_string(baseline_path)
                .map_err(|e| e.to_string())
                .and_then(|s| serde_json::from_str(&s).map_err(|e| e.to_string()))
            {
                Ok(baseline) => Some(baseline),
                Err(e) => {
                    eprintln!("failed to read baseline {baseline_path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };

    if let Some(path) = &md_summary {
        if let Err(e) = std::fs::write(path, markdown_summary(&report, baseline.as_ref())) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }

    if let Some(path) = &trace {
        let tel = Telemetry::enabled();
        if let Err(e) = traced_run(smoke, &tel) {
            eprintln!("traced run failed: {e}");
            return ExitCode::FAILURE;
        }
        let json = tel.chrome_trace_json();
        let stats = match validate_chrome_trace(&json) {
            Ok(stats) => stats,
            Err(e) => {
                eprintln!("exported trace is not valid Chrome trace JSON: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\n-- span tree (one batched inference per backend) --");
        print!("{}", tel.text_tree());
        println!(
            "wrote {path} ({} event(s), {} span pair(s), {} track(s))",
            stats.events, stats.pairs, stats.tracks
        );
    }

    if overhead_check {
        let overhead = match telemetry_overhead(smoke) {
            Ok(overhead) => overhead,
            Err(e) => {
                eprintln!("overhead measurement failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "telemetry overhead: disabled {:.3} ms, enabled {:.3} ms, {:+.2}% (budget {:.0}%)",
            overhead.disabled_s * 1e3,
            overhead.enabled_s * 1e3,
            overhead.overhead_frac * 100.0,
            overhead_budget * 100.0
        );
        if overhead.overhead_frac > overhead_budget {
            eprintln!(
                "telemetry overhead gate FAILED: {:.2}% exceeds the {:.0}% budget",
                overhead.overhead_frac * 100.0,
                overhead_budget * 100.0
            );
            return ExitCode::FAILURE;
        }
        println!("telemetry overhead gate passed");
    }

    if let (Some(baseline_path), Some(baseline)) = (&check, &baseline) {
        let mut failures = check_against_baseline(&report, baseline, tolerance);
        let (scaling_failures, skipped) = check_scaling_against_baseline(&report, baseline);
        failures.extend(scaling_failures);
        for note in &skipped {
            println!("scaling gate skipped: {note}");
        }
        if failures.is_empty() {
            println!(
                "bench gate passed against {baseline_path} ({}% tolerance)",
                tolerance * 100.0
            );
        } else {
            eprintln!("bench gate FAILED against {baseline_path}:");
            for failure in &failures {
                eprintln!("  - {failure}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
