//! `cargo run -p pf-bench --bin perf` — the throughput perf harness.
//!
//! Measures batched conv2d and batched inference on every backend, writes
//! `BENCH_throughput.json`, and (with `--check`) gates against the
//! committed `benches/baseline.json`. See the README "Performance" section
//! for the schema and the CI wiring.
//!
//! Flags:
//!
//! * `--smoke`          small shapes / few reps (the CI bench-smoke job)
//! * `--out PATH`       report path (default `BENCH_throughput.json`)
//! * `--check PATH`     compare against a committed baseline; non-zero exit
//!   on regression
//! * `--tolerance F`    allowed fractional regression for `--check`
//!   (default 0.30 = 30%)
//! * `--threads N`      size the parallel-dispatch worker pool (default:
//!   one worker per available core); the report's `host_threads` records
//!   whichever pool size was actually used
//! * `--stages`         additionally measure the per-backend stage
//!   breakdown (signal-FFT / spectrum-apply / inverse / DAC-ADC shares)
//!   and emit it under the report's `stages` key

use std::process::ExitCode;

use pf_bench::perf::{check_against_baseline, run_suite, Baseline, PerfReport};

fn usage() {
    eprintln!(
        "usage: perf [--smoke] [--stages] [--out PATH] [--check BASELINE] [--tolerance FRACTION] [--threads N]"
    );
}

fn print_report(report: &PerfReport) {
    println!(
        "\n== PhotoFourier throughput ({} mode, {} host thread(s)) ==",
        report.mode, report.host_threads
    );
    println!(
        "{:<22} {:<16} {:>6} {:>12} {:>12} {:>10} {:>14}",
        "scenario", "backend", "batch", "imgs/s", "seed imgs/s", "us/conv", "speedup_vs_seed"
    );
    for r in &report.results {
        println!(
            "{:<22} {:<16} {:>6} {:>12.2} {:>12.2} {:>10.2} {:>14.2}",
            r.scenario,
            r.backend,
            r.batch,
            r.images_per_s,
            r.seed_images_per_s,
            r.us_per_conv,
            r.speedup_vs_seed
        );
    }
    if let Some(stages) = &report.stages {
        println!("\n-- stage breakdown (shares of one prepared correlation) --");
        println!(
            "{:<16} {:>12} {:>15} {:>10} {:>10} {:>10}",
            "backend", "signal_fft", "spectrum_apply", "inverse", "dac_adc", "other_us"
        );
        for s in stages {
            println!(
                "{:<16} {:>11.1}% {:>14.1}% {:>9.1}% {:>9.1}% {:>10.1}",
                s.backend,
                s.signal_fft_share * 100.0,
                s.spectrum_apply_share * 100.0,
                s.inverse_share * 100.0,
                s.dac_adc_share * 100.0,
                s.other_us
            );
        }
    }
    println!();
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut stages = false;
    let mut out = "BENCH_throughput.json".to_string();
    let mut check: Option<String> = None;
    let mut tolerance = 0.30f64;
    let mut threads: Option<usize> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--full" => smoke = false,
            "--stages" => stages = true,
            "--out" | "--check" | "--tolerance" | "--threads" => {
                let flag = args[i].clone();
                i += 1;
                let Some(value) = args.get(i) else {
                    eprintln!("{flag} needs a value");
                    usage();
                    return ExitCode::from(2);
                };
                match flag.as_str() {
                    "--out" => out = value.clone(),
                    "--check" => check = Some(value.clone()),
                    "--threads" => match value.parse::<usize>() {
                        Ok(n) if n >= 1 => threads = Some(n),
                        _ => {
                            eprintln!("--threads needs an integer >= 1");
                            return ExitCode::from(2);
                        }
                    },
                    _ => match value.parse::<f64>() {
                        Ok(t) if (0.0..1.0).contains(&t) => tolerance = t,
                        _ => {
                            eprintln!("--tolerance needs a fraction in [0, 1)");
                            return ExitCode::from(2);
                        }
                    },
                }
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other}");
                usage();
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    if let Some(n) = threads {
        if rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .is_err()
        {
            eprintln!("failed to configure a {n}-thread worker pool");
            return ExitCode::FAILURE;
        }
    }

    let report = match run_suite(smoke, stages) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("perf suite failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print_report(&report);

    let json = match serde_json::to_string_pretty(&report) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("failed to serialise report: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&out, json + "\n") {
        eprintln!("failed to write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");

    if let Some(baseline_path) = check {
        let baseline: Baseline = match std::fs::read_to_string(&baseline_path)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::from_str(&s).map_err(|e| e.to_string()))
        {
            Ok(baseline) => baseline,
            Err(e) => {
                eprintln!("failed to read baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let failures = check_against_baseline(&report, &baseline, tolerance);
        if failures.is_empty() {
            println!(
                "bench gate passed against {baseline_path} ({}% tolerance)",
                tolerance * 100.0
            );
        } else {
            eprintln!("bench gate FAILED against {baseline_path}:");
            for failure in &failures {
                eprintln!("  - {failure}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
