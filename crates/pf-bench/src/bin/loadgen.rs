//! `cargo run -p pf-bench --bin loadgen` — the serving load generator.
//!
//! Drives the `pf-serve` micro-batching inference server with closed- and
//! open-loop traffic (seeded arrival RNG), prints a latency summary table
//! and writes `BENCH_serving.json` (schema `pf-bench/serving-v1`). In
//! `--smoke` mode (CI's route-smoke job) the run also gates: any rejected
//! or failed request, or any served result that is not bit-identical to
//! the offline `Session` path, is a non-zero exit.
//!
//! With `--route` the generator instead drives the `pf-router`
//! multi-replica tier with trace-driven arrivals (bursty / diurnal /
//! heavy-tail, seeded and replayable) and writes `BENCH_routing.json`
//! (schema `pf-bench/routing-v1`). With `--chaos` it drives the tier with
//! the scenario's deterministic `[faults]` plan installed (default
//! `scenarios/chaos_resnet18.toml`, override with `--scenario`) through
//! the retrying submission path, and writes `BENCH_chaos.json` (schema
//! `pf-bench/chaos-v1`).
//!
//! Exit codes (see [`pf_bench::exitcode`]): **0** pass, **1** hard
//! failure (rejections, SLO violations, offline divergence, I/O), **2**
//! bad command line, **3** route smoke gate found only *intentional
//! shedding* outside the overload record, **4** chaos gate breach (hung
//! tickets, a replica never re-admitted, or a healthy-class SLO miss
//! under faults). The smoke-gating CI jobs assert this taxonomy.
//!
//! Flags:
//!
//! * `--smoke`           small fixed request counts + the smoke gate (CI)
//! * `--route`           drive the multi-replica router instead
//! * `--chaos`           drive the router under the scenario's `[faults]` plan
//! * `--scenario PATH`   chaos mode: scenario file (default `scenarios/chaos_resnet18.toml`)
//! * `--rps F`           open-loop / trace mean arrival rate (default 200 serve, 400 route/chaos)
//! * `--concurrency N`   closed-loop submitter threads (default 4)
//! * `--duration SECS`   full-mode wall-time budget per record (default 2)
//! * `--requests N`      route/chaos mode: arrivals per trace record (default by mode)
//! * `--backend NAME`    restrict to one backend (repeatable; route mode uses the first)
//! * `--seed N`          arrival/image RNG seed (default 42)
//! * `--out PATH`        report path (default `BENCH_serving.json` /
//!   `BENCH_routing.json` / `BENCH_chaos.json`)
//! * `--trace [PATH]`    run under a live telemetry handle and export the
//!   span trees as Chrome trace-event JSON (default `TRACE_serving.json` /
//!   `TRACE_routing.json` / `TRACE_chaos.json`; the written file is always
//!   validated, invalid JSON is a non-zero exit). The summary gains spans
//!   recorded / dropped (ring drop-oldest losses) and the queue high-water
//!   mark.
//! * `--report-every SECS`  print a periodic metrics-delta snapshot while
//!   the load runs (implies metrics collection even without `--trace`)

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pf_bench::chaos::{check_chaos_smoke, run_chaos_suite_traced, ChaosOptions, ChaosReport};
use pf_bench::exitcode;
use pf_bench::routing::{check_route_smoke, run_route_suite_traced, RouteOptions, RoutingReport};
use pf_bench::serving::{
    check_smoke, run_suite_traced, LoadgenOptions, ServingReport, TraceSummary,
};
use pf_bench::Table;
use photofourier::telemetry::validate_chrome_trace;
use photofourier::{BackendKind, Telemetry};

fn usage() {
    eprintln!(
        "usage: loadgen [--smoke] [--route | --chaos] [--scenario PATH] [--rps F] \
         [--concurrency N] [--duration SECS] [--requests N] [--backend NAME]... [--seed N] \
         [--out PATH] [--trace [PATH]] [--report-every SECS]"
    );
}

/// A background thread printing metrics-delta snapshots every interval
/// while the load runs. Stops (and joins) on drop.
struct Reporter {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Reporter {
    fn start(tel: &Telemetry, every: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let tel = tel.clone();
        let handle = std::thread::spawn(move || {
            let tick = Duration::from_millis(50).min(every);
            let mut since = Duration::ZERO;
            let mut elapsed = Duration::ZERO;
            let mut prev = tel.snapshot();
            while !flag.load(Ordering::Relaxed) {
                std::thread::sleep(tick);
                since += tick;
                elapsed += tick;
                if since < every {
                    continue;
                }
                since = Duration::ZERO;
                let now = tel.snapshot();
                let delta = now.delta_since(&prev);
                prev = now;
                let table = delta.format_table();
                println!(
                    "-- telemetry delta @ ~{:.0}s --\n{}",
                    elapsed.as_secs_f64(),
                    if table.is_empty() { "(idle)\n" } else { &table }
                );
            }
        });
        Self {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for Reporter {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Prints the traced-run summary line: ring losses and the queue
/// high-water mark.
fn print_trace_summary(summary: &TraceSummary) {
    println!(
        "trace: {} span(s) retained, {} dropped (ring drop-oldest), queue high water {}",
        summary.spans_recorded, summary.spans_dropped, summary.queue_high_water
    );
}

/// Exports the retained spans as Chrome trace-event JSON, validates the
/// exact bytes written, and reports the span-pair/track counts.
fn write_trace(tel: &Telemetry, path: &str) -> Result<(), ExitCode> {
    let json = tel.chrome_trace_json();
    let stats = match validate_chrome_trace(&json) {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("exported trace is not valid Chrome trace JSON: {e}");
            return Err(ExitCode::from(exitcode::FAILURE));
        }
    };
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("failed to write {path}: {e}");
        return Err(ExitCode::from(exitcode::FAILURE));
    }
    println!(
        "wrote {path} ({} event(s), {} span pair(s), {} track(s))",
        stats.events, stats.pairs, stats.tracks
    );
    Ok(())
}

fn print_report(report: &ServingReport) {
    println!(
        "\n== PhotoFourier serving ({} mode, {} host thread(s)) ==\n",
        report.mode, report.host_threads
    );
    let mut table = Table::new(vec![
        "pattern",
        "backend",
        "submitted",
        "served",
        "rejected",
        "rps",
        "p50 ms",
        "p95 ms",
        "p99 ms",
        "mean batch",
        "offline match",
    ]);
    for r in &report.results {
        table.row(vec![
            r.pattern.clone(),
            r.backend.clone(),
            r.stats.submitted.to_string(),
            r.stats.served.to_string(),
            r.stats.rejected.to_string(),
            format!("{:.1}", r.stats.throughput_rps),
            format!("{:.3}", r.stats.latency.p50_ms),
            format!("{:.3}", r.stats.latency.p95_ms),
            format!("{:.3}", r.stats.latency.p99_ms),
            format!("{:.2}", r.stats.mean_batch_size()),
            if r.matches_offline { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!("{}", table.render());
}

fn print_route_report(report: &RoutingReport) {
    println!(
        "\n== PhotoFourier routing ({} mode, {} host thread(s)) ==\n",
        report.mode, report.host_threads
    );
    let mut table = Table::new(vec![
        "trace",
        "policy",
        "backend",
        "submitted",
        "served",
        "shed",
        "rejected",
        "spills",
        "p50 ms",
        "p99 ms",
        "miss",
        "cache hit",
        "offline match",
    ]);
    for r in &report.results {
        let s = &r.stats;
        table.row(vec![
            if r.overload {
                format!("{} (overload)", r.trace)
            } else {
                r.trace.clone()
            },
            r.policy.clone(),
            r.backend.clone(),
            s.submitted.to_string(),
            s.served().to_string(),
            s.shed.to_string(),
            s.rejected.to_string(),
            s.spills.to_string(),
            format!("{:.3}", s.latency.p50_ms),
            format!("{:.3}", s.latency.p99_ms),
            s.deadline_misses.to_string(),
            format!("{:.0}%", s.cache().hit_rate() * 100.0),
            if r.matches_offline { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!("{}", table.render());
}

fn print_chaos_report(report: &ChaosReport) {
    println!(
        "\n== PhotoFourier chaos ({} mode, scenario {}) ==\n",
        report.mode, report.scenario
    );
    println!(
        "offered {} | resolved {} | failed {} | shed {} | rejected {}",
        report.requests, report.resolved, report.failed, report.shed, report.rejected
    );
    let c = &report.counts;
    let injected: Vec<String> = c.faults.iter().map(|(k, n)| format!("{k}={n}")).collect();
    println!(
        "injected: {} | retries {} | breaker transitions {} | quarantined {} | integrity rejects {}",
        if injected.is_empty() {
            "(none)".to_string()
        } else {
            injected.join(" ")
        },
        c.retries,
        c.breaker_transitions,
        c.quarantined,
        c.integrity_rejects
    );
    let mut table = Table::new(vec![
        "replica",
        "state",
        "ewma ms",
        "err rate",
        "transitions",
        "quarantines",
        "dispatched",
    ]);
    for r in &report.stats.replicas {
        table.row(vec![
            r.replica.to_string(),
            r.health.state.clone(),
            format!("{:.3}", r.health.ewma_latency_ms),
            format!("{:.3}", r.health.ewma_error_rate),
            r.health.transitions.to_string(),
            r.health.quarantines.to_string(),
            r.dispatched.to_string(),
        ]);
    }
    println!("{}", table.render());
    if let Some(highest) = report.stats.classes.first() {
        println!(
            "highest-class p99 {:.3} ms (SLO {:.0} ms)",
            highest.latency.p99_ms, report.slo_p99_ms
        );
    }
}

fn run_chaos(
    options: &LoadgenOptions,
    scenario: Option<String>,
    requests: usize,
    out: Option<String>,
    tel: &Telemetry,
    trace_out: Option<&str>,
) -> ExitCode {
    let mut chaos_options = ChaosOptions {
        smoke: options.smoke,
        requests,
        base_rps: if options.rps > 0.0 {
            options.rps
        } else {
            400.0
        },
        seed: options.seed,
        ..ChaosOptions::default()
    };
    if let Some(path) = scenario {
        chaos_options.scenario = path;
    }
    let report = match run_chaos_suite_traced(&chaos_options, tel) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("chaos loadgen failed: {e}");
            return ExitCode::from(exitcode::FAILURE);
        }
    };
    print_chaos_report(&report);
    if let Some(summary) = &report.trace {
        print_trace_summary(summary);
    }
    let out = out.unwrap_or_else(|| "BENCH_chaos.json".to_string());
    if let Err(code) = write_json(&report, &out) {
        return code;
    }
    if let Some(path) = trace_out {
        if let Err(code) = write_trace(tel, path) {
            return code;
        }
    }

    if options.smoke {
        let failures = check_chaos_smoke(&report);
        if failures.is_empty() {
            println!("chaos smoke gate passed");
        } else {
            eprintln!("chaos smoke gate BREACHED:");
            for failure in &failures {
                eprintln!("  - {failure}");
            }
            return ExitCode::from(exitcode::CHAOS);
        }
    }
    ExitCode::from(exitcode::OK)
}

fn write_json<T: serde::Serialize>(report: &T, out: &str) -> Result<(), ExitCode> {
    let json = match serde_json::to_string_pretty(report) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("failed to serialise report: {e}");
            return Err(ExitCode::from(exitcode::FAILURE));
        }
    };
    if let Err(e) = std::fs::write(out, json + "\n") {
        eprintln!("failed to write {out}: {e}");
        return Err(ExitCode::from(exitcode::FAILURE));
    }
    println!("wrote {out}");
    Ok(())
}

fn run_route(
    options: &LoadgenOptions,
    requests: usize,
    out: Option<String>,
    tel: &Telemetry,
    trace_out: Option<&str>,
) -> ExitCode {
    let route_options = RouteOptions {
        smoke: options.smoke,
        backend: options
            .backends
            .first()
            .copied()
            .unwrap_or(BackendKind::Digital),
        base_rps: if options.rps > 0.0 {
            options.rps
        } else {
            400.0
        },
        requests,
        seed: options.seed,
    };
    let report = match run_route_suite_traced(&route_options, tel) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("route loadgen failed: {e}");
            return ExitCode::from(exitcode::FAILURE);
        }
    };
    print_route_report(&report);
    if let Some(summary) = &report.trace {
        print_trace_summary(summary);
    }
    let out = out.unwrap_or_else(|| "BENCH_routing.json".to_string());
    if let Err(code) = write_json(&report, &out) {
        return code;
    }
    if let Some(path) = trace_out {
        if let Err(code) = write_trace(tel, path) {
            return code;
        }
    }

    if options.smoke {
        let gate = check_route_smoke(&report);
        if gate.passed() {
            println!("route smoke gate passed");
        } else if gate.failures.is_empty() {
            // Intentional shedding only: the tier degraded by policy
            // rather than failing — its own exit path, distinct from
            // rejections.
            eprintln!("route smoke gate: intentional shedding outside the overload record:");
            for shed in &gate.unexpected_sheds {
                eprintln!("  - {shed}");
            }
            return ExitCode::from(exitcode::SHED);
        } else {
            eprintln!("route smoke gate FAILED:");
            for failure in &gate.failures {
                eprintln!("  - {failure}");
            }
            for shed in &gate.unexpected_sheds {
                eprintln!("  - (shed) {shed}");
            }
            return ExitCode::from(exitcode::FAILURE);
        }
    }
    ExitCode::from(exitcode::OK)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut options = LoadgenOptions::default();
    let mut route = false;
    let mut chaos = false;
    let mut scenario: Option<String> = None;
    let mut requests = 0usize;
    let mut rps_set = false;
    let mut out: Option<String> = None;
    let mut trace = false;
    let mut trace_path: Option<String> = None;
    let mut report_every: Option<Duration> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => options.smoke = true,
            "--full" => options.smoke = false,
            "--route" => route = true,
            "--chaos" => chaos = true,
            "--trace" => {
                trace = true;
                // Optional path operand: `--trace out.json` or bare `--trace`.
                if let Some(value) = args.get(i + 1) {
                    if !value.starts_with("--") {
                        trace_path = Some(value.clone());
                        i += 1;
                    }
                }
            }
            "--rps" | "--concurrency" | "--duration" | "--requests" | "--backend" | "--seed"
            | "--out" | "--scenario" | "--report-every" => {
                let flag = args[i].clone();
                i += 1;
                let Some(value) = args.get(i) else {
                    eprintln!("{flag} needs a value");
                    usage();
                    return ExitCode::from(exitcode::USAGE);
                };
                match flag.as_str() {
                    "--rps" => match value.parse::<f64>() {
                        Ok(rps) if rps > 0.0 => {
                            options.rps = rps;
                            rps_set = true;
                        }
                        _ => {
                            eprintln!("--rps needs a positive number");
                            return ExitCode::from(exitcode::USAGE);
                        }
                    },
                    "--concurrency" => match value.parse::<usize>() {
                        Ok(n) if n >= 1 => options.concurrency = n,
                        _ => {
                            eprintln!("--concurrency needs an integer >= 1");
                            return ExitCode::from(exitcode::USAGE);
                        }
                    },
                    "--duration" => match value.parse::<f64>() {
                        Ok(secs) if secs > 0.0 => {
                            options.duration = Duration::from_secs_f64(secs);
                        }
                        _ => {
                            eprintln!("--duration needs a positive number of seconds");
                            return ExitCode::from(exitcode::USAGE);
                        }
                    },
                    "--requests" => match value.parse::<usize>() {
                        Ok(n) if n >= 1 => requests = n,
                        _ => {
                            eprintln!("--requests needs an integer >= 1");
                            return ExitCode::from(exitcode::USAGE);
                        }
                    },
                    "--backend" => match BackendKind::from_name(value) {
                        Ok(kind) => options.backends.push(kind),
                        Err(e) => {
                            eprintln!("{e}");
                            return ExitCode::from(exitcode::USAGE);
                        }
                    },
                    "--seed" => match value.parse::<u64>() {
                        Ok(seed) => options.seed = seed,
                        Err(_) => {
                            eprintln!("--seed needs an integer");
                            return ExitCode::from(exitcode::USAGE);
                        }
                    },
                    "--report-every" => match value.parse::<f64>() {
                        Ok(secs) if secs > 0.0 => {
                            report_every = Some(Duration::from_secs_f64(secs));
                        }
                        _ => {
                            eprintln!("--report-every needs a positive number of seconds");
                            return ExitCode::from(exitcode::USAGE);
                        }
                    },
                    "--scenario" => scenario = Some(value.clone()),
                    _ => out = Some(value.clone()),
                }
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::from(exitcode::OK);
            }
            other => {
                eprintln!("unknown flag {other}");
                usage();
                return ExitCode::from(exitcode::USAGE);
            }
        }
        i += 1;
    }

    // `--trace` records spans + metrics; `--report-every` alone still needs
    // the metric registry but no span ring.
    let tel = if trace {
        Telemetry::enabled()
    } else if report_every.is_some() {
        Telemetry::with_span_capacity(0)
    } else {
        Telemetry::disabled()
    };
    let _reporter = report_every.map(|every| Reporter::start(&tel, every));

    if route && chaos {
        eprintln!("--route and --chaos are mutually exclusive");
        usage();
        return ExitCode::from(exitcode::USAGE);
    }
    if chaos {
        if !rps_set {
            options.rps = 400.0;
        }
        let trace_out = trace.then(|| {
            trace_path
                .clone()
                .unwrap_or_else(|| "TRACE_chaos.json".to_string())
        });
        return run_chaos(
            &options,
            scenario,
            requests,
            out,
            &tel,
            trace_out.as_deref(),
        );
    }
    if route {
        if !rps_set {
            options.rps = 400.0;
        }
        let trace_out = trace.then(|| {
            trace_path
                .clone()
                .unwrap_or_else(|| "TRACE_routing.json".to_string())
        });
        return run_route(&options, requests, out, &tel, trace_out.as_deref());
    }

    let report = match run_suite_traced(&options, &tel) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("loadgen failed: {e}");
            return ExitCode::from(exitcode::FAILURE);
        }
    };
    print_report(&report);
    if let Some(summary) = &report.trace {
        print_trace_summary(summary);
    }
    let out = out.unwrap_or_else(|| "BENCH_serving.json".to_string());
    if let Err(code) = write_json(&report, &out) {
        return code;
    }
    if trace {
        let path = trace_path.unwrap_or_else(|| "TRACE_serving.json".to_string());
        if let Err(code) = write_trace(&tel, &path) {
            return code;
        }
    }

    if options.smoke {
        let failures = check_smoke(&report);
        if failures.is_empty() {
            println!("serve smoke gate passed");
        } else {
            eprintln!("serve smoke gate FAILED:");
            for failure in &failures {
                eprintln!("  - {failure}");
            }
            return ExitCode::from(exitcode::FAILURE);
        }
    }
    ExitCode::from(exitcode::OK)
}
