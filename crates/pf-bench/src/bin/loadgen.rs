//! `cargo run -p pf-bench --bin loadgen` — the serving load generator.
//!
//! Drives the `pf-serve` micro-batching inference server with closed- and
//! open-loop traffic (seeded arrival RNG), prints a latency summary table
//! and writes `BENCH_serving.json` (schema `pf-bench/serving-v1`). In
//! `--smoke` mode (CI's serve-smoke job) the run also gates: any rejected
//! or failed request, or any served result that is not bit-identical to
//! the offline `Session` path, is a non-zero exit.
//!
//! Flags:
//!
//! * `--smoke`           small fixed request counts + the smoke gate (CI)
//! * `--rps F`           open-loop target arrival rate (default 200)
//! * `--concurrency N`   closed-loop submitter threads (default 4)
//! * `--duration SECS`   full-mode wall-time budget per record (default 2)
//! * `--backend NAME`    restrict to one backend (repeatable)
//! * `--seed N`          arrival/image RNG seed (default 42)
//! * `--out PATH`        report path (default `BENCH_serving.json`)

use std::process::ExitCode;
use std::time::Duration;

use pf_bench::serving::{check_smoke, run_suite, LoadgenOptions, ServingReport};
use pf_bench::Table;
use photofourier::BackendKind;

fn usage() {
    eprintln!(
        "usage: loadgen [--smoke] [--rps F] [--concurrency N] [--duration SECS] \
         [--backend NAME]... [--seed N] [--out PATH]"
    );
}

fn print_report(report: &ServingReport) {
    println!(
        "\n== PhotoFourier serving ({} mode, {} host thread(s)) ==\n",
        report.mode, report.host_threads
    );
    let mut table = Table::new(vec![
        "pattern",
        "backend",
        "submitted",
        "served",
        "rejected",
        "rps",
        "p50 ms",
        "p95 ms",
        "p99 ms",
        "mean batch",
        "offline match",
    ]);
    for r in &report.results {
        table.row(vec![
            r.pattern.clone(),
            r.backend.clone(),
            r.stats.submitted.to_string(),
            r.stats.served.to_string(),
            r.stats.rejected.to_string(),
            format!("{:.1}", r.stats.throughput_rps),
            format!("{:.3}", r.stats.latency.p50_ms),
            format!("{:.3}", r.stats.latency.p95_ms),
            format!("{:.3}", r.stats.latency.p99_ms),
            format!("{:.2}", r.stats.mean_batch_size()),
            if r.matches_offline { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!("{}", table.render());
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut options = LoadgenOptions::default();
    let mut out = "BENCH_serving.json".to_string();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => options.smoke = true,
            "--full" => options.smoke = false,
            "--rps" | "--concurrency" | "--duration" | "--backend" | "--seed" | "--out" => {
                let flag = args[i].clone();
                i += 1;
                let Some(value) = args.get(i) else {
                    eprintln!("{flag} needs a value");
                    usage();
                    return ExitCode::from(2);
                };
                match flag.as_str() {
                    "--rps" => match value.parse::<f64>() {
                        Ok(rps) if rps > 0.0 => options.rps = rps,
                        _ => {
                            eprintln!("--rps needs a positive number");
                            return ExitCode::from(2);
                        }
                    },
                    "--concurrency" => match value.parse::<usize>() {
                        Ok(n) if n >= 1 => options.concurrency = n,
                        _ => {
                            eprintln!("--concurrency needs an integer >= 1");
                            return ExitCode::from(2);
                        }
                    },
                    "--duration" => match value.parse::<f64>() {
                        Ok(secs) if secs > 0.0 => {
                            options.duration = Duration::from_secs_f64(secs);
                        }
                        _ => {
                            eprintln!("--duration needs a positive number of seconds");
                            return ExitCode::from(2);
                        }
                    },
                    "--backend" => match BackendKind::from_name(value) {
                        Ok(kind) => options.backends.push(kind),
                        Err(e) => {
                            eprintln!("{e}");
                            return ExitCode::from(2);
                        }
                    },
                    "--seed" => match value.parse::<u64>() {
                        Ok(seed) => options.seed = seed,
                        Err(_) => {
                            eprintln!("--seed needs an integer");
                            return ExitCode::from(2);
                        }
                    },
                    _ => out = value.clone(),
                }
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other}");
                usage();
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    let report = match run_suite(&options) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("loadgen failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print_report(&report);

    let json = match serde_json::to_string_pretty(&report) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("failed to serialise report: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&out, json + "\n") {
        eprintln!("failed to write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");

    if options.smoke {
        let failures = check_smoke(&report);
        if failures.is_empty() {
            println!("serve smoke gate passed");
        } else {
            eprintln!("serve smoke gate FAILED:");
            for failure in &failures {
                eprintln!("  - {failure}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
