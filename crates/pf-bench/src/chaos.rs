//! The chaos load-generator behind `cargo run -p pf-bench --bin loadgen
//! -- --chaos`.
//!
//! Where `routing.rs` measures the front tier on clean replicas, this
//! module measures it **under injected faults**: the scenario's `[faults]`
//! plan (see `docs/SCENARIOS.md`) is compiled onto its target replica via
//! [`photofourier::route::chaos_scenario_traced`], the trace is driven
//! through [`Router::submit_with_retry`], and the report records how the
//! self-healing machinery responded — retries, breaker transitions,
//! quarantine and re-admission, integrity rejects — next to the injected
//! fault counts.
//!
//! Everything the gate asserts is a **count of deterministic events**. The
//! committed chaos scenario pins `max_batch = 1` and `workers = 1`, the
//! driver submits from one thread through a bounded FIFO in-flight window,
//! and the fault plan is a pure function of each replica's request
//! sequence numbers — so two runs of the same scenario and seed inject
//! bit-identical fault/retry/breaker counts even though wall-clock
//! latencies differ ([`ChaosCounts`] is the comparable object).
//!
//! [`Router::submit_with_retry`]: photofourier::route::Router::submit_with_retry

use std::collections::{BTreeMap, VecDeque};

use photofourier::prelude::*;
use photofourier::route::{self, ChaosShard, RouterRequest, RouterStats};
use serde::{Deserialize, Serialize};

use crate::routing::{Trace, TraceKind};

/// Schema identifier written into the report.
pub const SCHEMA: &str = "pf-bench/chaos-v1";

/// The committed scenario CI's chaos-smoke job drives.
pub const DEFAULT_SCENARIO: &str = "scenarios/chaos_resnet18.toml";

/// How many tickets the driver keeps in flight. Bounded and FIFO so the
/// interleaving of submissions, waits and retries is a pure function of
/// the trace — the determinism the chaos gate relies on.
const IN_FLIGHT: usize = 4;

/// Options of [`run_chaos_suite`], typically parsed from loadgen flags.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosOptions {
    /// Small fixed request count and the chaos smoke gate (CI).
    pub smoke: bool,
    /// Scenario path (must carry a `[faults]` section to inject anything).
    pub scenario: String,
    /// Arrivals (0 means the mode's default).
    pub requests: usize,
    /// Mean arrival rate used to *shape* the bursty trace (the driver
    /// submits unpaced: determinism beats wall-clock realism here).
    pub base_rps: f64,
    /// Seed of the trace and image RNGs.
    pub seed: u64,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        Self {
            smoke: false,
            scenario: DEFAULT_SCENARIO.to_string(),
            requests: 0,
            base_rps: 400.0,
            seed: 42,
        }
    }
}

/// The deterministic-event counts of one chaos run: the object two runs of
/// the same scenario and seed must agree on byte-for-byte.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosCounts {
    /// Injected faults by kind name (aggregated over every replica's
    /// [`FaultyEngine`](photofourier::route::FaultyEngine)); only kinds
    /// that fired appear.
    pub faults: BTreeMap<String, u64>,
    /// Failed attempts the router resubmitted.
    pub retries: u64,
    /// Circuit-breaker state changes across all replicas.
    pub breaker_transitions: u64,
    /// Transitions into `open` (quarantine events).
    pub quarantined: u64,
    /// Served payloads discarded by the integrity screen.
    pub integrity_rejects: u64,
}

/// The full report serialised to `BENCH_chaos.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosReport {
    /// Schema identifier ([`SCHEMA`]).
    pub schema: String,
    /// `smoke` (CI) or `full`.
    pub mode: String,
    /// Scenario name (from the loaded file).
    pub scenario: String,
    /// The replica the fault plan targets.
    pub fault_replica: usize,
    /// Arrivals offered.
    pub requests: usize,
    /// Tickets that resolved with a served result.
    pub resolved: u64,
    /// Tickets that resolved with an error after retries were exhausted
    /// (or the request was not admitted for a non-capacity reason).
    pub failed: u64,
    /// Requests refused by the shed ladder (not admitted).
    pub shed: u64,
    /// Requests rejected with every queue full (not admitted).
    pub rejected: u64,
    /// The p99 SLO (milliseconds) the highest class is held to.
    pub slo_p99_ms: f64,
    /// The deterministic-event counts (the determinism gate's object).
    pub counts: ChaosCounts,
    /// The router's full accounting, including each replica's final
    /// breaker state and health scores.
    pub stats: RouterStats,
    /// Telemetry accounting when the run was traced; see
    /// [`crate::serving::TraceSummary`].
    pub trace: Option<crate::serving::TraceSummary>,
}

/// Runs the chaos scenario once.
///
/// # Errors
///
/// Propagates scenario loading/validation and tier construction errors.
/// Per-request failures do **not** error the run — they are what the gate
/// inspects.
pub fn run_chaos_suite(options: &ChaosOptions) -> Result<ChaosReport, PfError> {
    run_chaos_suite_traced(options, &Telemetry::disabled())
}

/// [`run_chaos_suite`] under a telemetry handle (`router.retries`,
/// `router.breaker_transitions` and friends land in `tel`; the report
/// carries a trace summary when `tel` is enabled).
///
/// # Errors
///
/// Same conditions as [`run_chaos_suite`].
pub fn run_chaos_suite_traced(
    options: &ChaosOptions,
    tel: &Telemetry,
) -> Result<ChaosReport, PfError> {
    let scenario = Scenario::from_path(&options.scenario)?;
    let requests = match options.requests {
        0 if options.smoke => 96,
        0 => 192,
        n => n,
    };
    let router_spec = scenario
        .serving
        .clone()
        .unwrap_or_default()
        .router
        .unwrap_or_default();
    let fault_replica = scenario.faults.as_ref().map_or(0, |f| f.replica);
    let slo_p99_ms = router_spec.slo_p99_ms;
    let scenario_name = scenario.name.clone();

    let (router, shards) =
        route::chaos_scenario_traced(scenario.clone(), tel.with_prefix("chaos"))?;
    let trace = Trace::generate(
        TraceKind::Bursty,
        requests,
        options.base_rps,
        router_spec.models as u64,
        options.seed,
    );

    let mut resolved = 0u64;
    let mut failed = 0u64;
    let mut shed = 0u64;
    let mut rejected = 0u64;
    let mut pending = VecDeque::with_capacity(IN_FLIGHT);
    let settle = |pending: &mut VecDeque<_>, resolved: &mut u64, failed: &mut u64| {
        if let Some(ticket) = pending.pop_front() {
            match route::RouterTicket::<'_, ChaosShard>::wait(ticket) {
                Ok(_) => *resolved += 1,
                Err(_) => *failed += 1,
            }
        }
    };
    for (k, event) in trace.events.iter().enumerate() {
        if pending.len() >= IN_FLIGHT {
            settle(&mut pending, &mut resolved, &mut failed);
        }
        let image = Tensor::random(
            vec![
                scenario.functional.input_channels,
                scenario.functional.input_size,
                scenario.functional.input_size,
            ],
            0.0,
            1.0,
            options
                .seed
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(k as u64),
        );
        let payload = route::ModelRequest::new(image, event.model).with_seed(k as u64);
        let request = RouterRequest::new(payload)
            .with_class(event.class)
            .with_affinity(event.model);
        match router.submit_with_retry(request) {
            Ok(ticket) => pending.push_back(ticket),
            Err(PfError::Shed { .. }) => shed += 1,
            Err(PfError::Overloaded { .. }) => rejected += 1,
            Err(e) => return Err(e),
        }
    }
    while !pending.is_empty() {
        settle(&mut pending, &mut resolved, &mut failed);
    }

    let stats = router.drain()?;
    let mut faults = BTreeMap::new();
    let mut add = |kind: &str, n: u64| {
        if n > 0 {
            *faults.entry(kind.to_string()).or_insert(0) += n;
        }
    };
    for shard in &shards {
        let counts = shard.counts();
        add("latency_spike", counts.spikes);
        add("stall", counts.stalls);
        add("panic", counts.panics);
        add("transient_error", counts.errors);
        add("corruption", counts.corruptions);
        add("calibration_drift", counts.drifts);
    }

    Ok(ChaosReport {
        schema: SCHEMA.to_string(),
        mode: if options.smoke { "smoke" } else { "full" }.to_string(),
        scenario: scenario_name,
        fault_replica,
        requests,
        resolved,
        failed,
        shed,
        rejected,
        slo_p99_ms,
        counts: ChaosCounts {
            faults,
            retries: stats.retries,
            breaker_transitions: stats.breaker_transitions,
            quarantined: stats.quarantined,
            integrity_rejects: stats.integrity_rejects,
        },
        stats,
        trace: crate::serving::TraceSummary::from_telemetry(tel),
    })
}

/// The chaos smoke gate CI enforces (exit [`crate::exitcode::CHAOS`] on
/// breach).
///
/// Self-healing must actually have worked: every ticket resolves (no
/// hangs, no exhausted retries), the plan injected faults and the router
/// retried them, the flapped replica was quarantined at least once and its
/// breaker walked back to `closed` (closed → open → half-open → closed,
/// ≥ 3 transitions), the integrity screen caught the injected corruption,
/// admission accounting still sums, and the highest class's p99 stayed
/// inside the scenario's SLO while all of that happened.
pub fn check_chaos_smoke(report: &ChaosReport) -> Vec<String> {
    let mut failures = Vec::new();
    let s = &report.stats;
    if report.failed > 0 {
        failures.push(format!(
            "{} request(s) failed after retries — self-healing did not absorb the plan",
            report.failed
        ));
    }
    if report.resolved + report.failed + report.shed + report.rejected != report.requests as u64 {
        failures.push(format!(
            "ticket resolution incomplete: {} resolved + {} failed + {} shed + {} rejected != {} offered",
            report.resolved, report.failed, report.shed, report.rejected, report.requests
        ));
    }
    if report.shed > 0 || report.rejected > 0 {
        failures.push(format!(
            "{} shed / {} rejected on a tier sized to admit the whole trace",
            report.shed, report.rejected
        ));
    }
    if s.submitted != s.admitted + s.shed + s.rejected {
        failures.push(format!(
            "admission accounting broken ({} + {} + {} != {})",
            s.admitted, s.shed, s.rejected, s.submitted
        ));
    }
    let c = &report.counts;
    if c.faults.is_empty() {
        failures.push("the fault plan injected nothing".to_string());
    }
    if c.retries == 0 {
        failures.push("no retries recorded under an injected-fault plan".to_string());
    }
    if c.quarantined == 0 {
        failures.push("the flapping replica was never quarantined".to_string());
    }
    if c.breaker_transitions < 3 {
        failures.push(format!(
            "breaker transitions {} < 3 (closed -> open -> half-open -> closed never completed)",
            c.breaker_transitions
        ));
    }
    if c.faults.contains_key("corruption") && c.integrity_rejects == 0 {
        failures.push("injected corruption was served past the integrity screen".to_string());
    }
    match s.replicas.get(report.fault_replica) {
        Some(rollup) if rollup.health.state != "closed" => failures.push(format!(
            "replica {} finished `{}`, never re-admitted",
            report.fault_replica, rollup.health.state
        )),
        None => failures.push(format!(
            "fault replica {} missing from the rollups",
            report.fault_replica
        )),
        Some(_) => {}
    }
    if let Some(highest) = s.classes.first() {
        if highest.latency.count > 0 && highest.latency.p99_ms > report.slo_p99_ms {
            failures.push(format!(
                "highest-class p99 {:.3} ms exceeds the {:.0} ms SLO under faults",
                highest.latency.p99_ms, report.slo_p99_ms
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_options() -> ChaosOptions {
        ChaosOptions {
            smoke: true,
            scenario: format!("{}/../../{}", env!("CARGO_MANIFEST_DIR"), DEFAULT_SCENARIO),
            ..ChaosOptions::default()
        }
    }

    #[test]
    fn chaos_smoke_passes_its_own_gate() {
        let report = run_chaos_suite(&smoke_options()).unwrap();
        assert_eq!(report.schema, SCHEMA);
        let failures = check_chaos_smoke(&report);
        assert!(failures.is_empty(), "{failures:?}");
        // The committed plan exercises every self-healing mechanism.
        assert!(report.counts.faults.contains_key("transient_error"));
        assert!(report.counts.faults.contains_key("corruption"));
        assert!(report.counts.faults.contains_key("panic"));
        assert!(report.counts.integrity_rejects >= 1);
    }

    #[test]
    fn chaos_counts_replay_bit_identically() {
        let a = run_chaos_suite(&smoke_options()).unwrap();
        let b = run_chaos_suite(&smoke_options()).unwrap();
        assert_eq!(a.counts, b.counts, "fault/retry/breaker counts diverged");
        assert_eq!(a.resolved, b.resolved);
        assert_eq!(a.failed, b.failed);
        let json_a = serde_json::to_string(&a.counts).unwrap();
        let json_b = serde_json::to_string(&b.counts).unwrap();
        assert_eq!(json_a, json_b, "serialised counts diverged");
    }

    #[test]
    fn gate_flags_the_failure_modes() {
        let report = run_chaos_suite(&smoke_options()).unwrap();
        assert!(check_chaos_smoke(&report).is_empty());

        let mut broken = report.clone();
        broken.failed = 1;
        assert!(!check_chaos_smoke(&broken).is_empty());

        let mut broken = report.clone();
        broken.counts.quarantined = 0;
        assert!(!check_chaos_smoke(&broken).is_empty());

        let mut broken = report.clone();
        broken.stats.replicas[broken.fault_replica].health.state = "open".to_string();
        assert!(!check_chaos_smoke(&broken).is_empty());

        let mut broken = report;
        broken.counts.integrity_rejects = 0;
        assert!(!check_chaos_smoke(&broken).is_empty());
    }
}
