//! One function per table / figure of the paper's evaluation.

use pf_arch::area::{AreaBreakdown, AreaModel};
use pf_arch::config::ArchConfig;
use pf_arch::design_space::{sweep_pfcu_counts, DesignPoint, TABLE3_PFCU_COUNTS};
use pf_arch::optimizations::OptimizationStep;
use pf_arch::parallel::{sweep_input_broadcast, SweepPoint};
use pf_arch::power::EnergyBreakdown;
use pf_arch::simulator::{NetworkPerformance, Simulator};
use pf_arch::ArchError;
use pf_baselines::digital::SystolicArray;
use pf_baselines::published::{prior_photonic_accelerators, CROSSLIGHT_ENERGY_PER_INFERENCE_UJ};
use pf_baselines::AcceleratorModel;
use pf_dsp::conv::Matrix;
use pf_jtc::correlator::JtcSimulator;
use pf_jtc::temporal::{accumulate_quantized_per_cycle, accumulate_with_depth};
use pf_nn::dataset::{DatasetConfig, SyntheticDataset};
use pf_nn::executor::{PipelineConfig, ReferenceExecutor, TiledExecutor};
use pf_nn::fidelity::{evaluate_network, FidelityConfig, FidelityReport};
use pf_nn::models::cifar::{crosslight_cnn, resnet_s};
use pf_nn::models::imagenet::{alexnet, resnet18, vgg16};
use pf_nn::models::small::SmallCnn;
use pf_nn::models::{comparison_suite, paper_benchmark_suite, NetworkSpec};
use pf_nn::train::{accuracy, train_linear_probe, TrainConfig};
use pf_photonics::adc::Adc;
use pf_tiling::{tile_input_rows, tile_kernel, DigitalEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Figure 2
// ---------------------------------------------------------------------------

/// Result of the Figure 2 experiment: the JTC output plane for a row-tiled
/// CIFAR-sized input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Result {
    /// Output-plane intensity, fft-shifted so the optical axis is centred.
    pub intensity: Vec<f64>,
    /// Whether the three output terms are spatially separated.
    pub terms_separated: bool,
    /// Relative L2 error of the extracted correlation term against the
    /// digital reference.
    pub extraction_error: f64,
}

/// Reproduces Figure 2: simulate the JTC output of a 256-element row-tiled
/// input with a tiled 3×3 kernel.
///
/// # Errors
///
/// Propagates JTC simulation errors.
pub fn fig02_jtc_output() -> Result<Fig2Result, pf_jtc::JtcError> {
    let image = Matrix::new(
        32,
        32,
        (0..1024)
            .map(|i| {
                let (r, c) = (i / 32, i % 32);
                (((r as f64) * 0.4).sin() * ((c as f64) * 0.25).cos()).abs()
            })
            .collect(),
    )
    .expect("static image shape is valid");
    let kernel = Matrix::new(3, 3, vec![0.1, 0.3, 0.1, 0.3, 1.0, 0.3, 0.1, 0.3, 0.1])
        .expect("static kernel shape is valid");

    let tiled_input = tile_input_rows(&image, 0, 8, 256);
    let tiled_kernel: Vec<f64> = tile_kernel(&kernel, 32, 256)[..2 * 32 + 3].to_vec();

    let jtc = JtcSimulator::new(256)?;
    let output = jtc.output_plane(&tiled_input, &tiled_kernel)?;
    let extracted = output.valid_correlation();
    let reference = pf_dsp::conv::correlate1d(
        &tiled_input,
        &tiled_kernel,
        pf_dsp::conv::PaddingMode::Valid,
    );
    Ok(Fig2Result {
        intensity: output.intensity_shifted(),
        terms_separated: output.terms_are_separated(1e-6),
        extraction_error: pf_dsp::util::relative_l2_error(&extracted, &reference),
    })
}

// ---------------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------------

/// Result of the Table I experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tab1Result {
    /// Per-network, per-layer fidelity of the row-tiled pipeline.
    pub fidelity: Vec<FidelityReport>,
    /// End-to-end accuracy proxy: (configuration label, accuracy).
    pub accuracy_proxy: Vec<(String, f64)>,
}

/// Reproduces the Table I experiment in two parts: (a) per-layer numerical
/// fidelity of row tiling + 8-bit quantisation on the three comparison
/// networks, and (b) an end-to-end accuracy proxy on the synthetic dataset
/// comparing the reference executor with the PhotoFourier pipeline (see
/// DESIGN.md for the ImageNet substitution).
///
/// # Errors
///
/// Propagates fidelity-evaluation and training errors.
pub fn tab1_row_tiling_accuracy() -> Result<Tab1Result, Box<dyn std::error::Error>> {
    let config = FidelityConfig {
        max_input_size: 32,
        max_in_channels: 8,
        max_out_channels: 2,
        seed: 11,
    };
    let mut fidelity = Vec::new();
    for network in comparison_suite() {
        fidelity.push(evaluate_network(
            &network,
            || DigitalEngine,
            256,
            PipelineConfig::photofourier_default(),
            &config,
        )?);
    }

    // Accuracy proxy: linear probe on reference features, evaluated with
    // features from the reference executor and from the PhotoFourier
    // pipeline (with and without the row-tiling edge approximation).
    let dataset = SyntheticDataset::new(DatasetConfig {
        num_classes: 8,
        image_size: 16,
        noise_sigma: 0.5,
        max_shift: 3,
        seed: 21,
    })?;
    let train_set = dataset.generate(25, 1);
    let test_set = dataset.generate(30, 2);
    let cnn = SmallCnn::new(1, 16, 5)?;
    let train_features = cnn.features_batch(&train_set.images, &ReferenceExecutor)?;
    let probe = train_linear_probe(
        &train_features,
        &train_set.labels,
        train_set.num_classes,
        TrainConfig::default(),
    )?;

    let mut accuracy_proxy = Vec::new();
    let reference_features = cnn.features_batch(&test_set.images, &ReferenceExecutor)?;
    accuracy_proxy.push((
        "reference fp64 (original)".to_string(),
        accuracy(&probe, &reference_features, &test_set.labels)?,
    ));
    let tiled = TiledExecutor::new(DigitalEngine, 256, PipelineConfig::photofourier_default())?;
    let tiled_features = cnn.features_batch(&test_set.images, &tiled)?;
    accuracy_proxy.push((
        "row tiling + 8-bit (ours)".to_string(),
        accuracy(&probe, &tiled_features, &test_set.labels)?,
    ));
    let mut ideal = PipelineConfig::ideal();
    ideal.edge_handling = pf_tiling::EdgeHandling::ZeroPad;
    let exact = TiledExecutor::new(DigitalEngine, 256, ideal)?;
    let exact_features = cnn.features_batch(&test_set.images, &exact)?;
    accuracy_proxy.push((
        "row tiling, zero-padded, fp64".to_string(),
        accuracy(&probe, &exact_features, &test_set.labels)?,
    ));

    Ok(Tab1Result {
        fidelity,
        accuracy_proxy,
    })
}

// ---------------------------------------------------------------------------
// Figure 6 / Figure 12
// ---------------------------------------------------------------------------

/// Power profile of one design point on one or more networks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerProfile {
    /// Design-point name.
    pub design_point: String,
    /// Average power over the evaluated networks, in watts.
    pub avg_power_w: f64,
    /// Aggregated energy breakdown.
    pub breakdown: EnergyBreakdown,
}

fn power_profile(config: ArchConfig, networks: &[NetworkSpec]) -> Result<PowerProfile, ArchError> {
    let sim = Simulator::new(config)?;
    let mut breakdown = EnergyBreakdown::default();
    let mut power_sum = 0.0;
    for network in networks {
        let perf = sim.evaluate_network(network)?;
        breakdown += perf.breakdown;
        power_sum += perf.avg_power_w;
    }
    Ok(PowerProfile {
        design_point: sim.config().name().to_string(),
        avg_power_w: power_sum / networks.len() as f64,
        breakdown,
    })
}

/// Reproduces Figure 6: power contribution of each component of the
/// un-optimised 1-PFCU baseline running VGG-16.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn fig06_baseline_power() -> Result<PowerProfile, ArchError> {
    power_profile(ArchConfig::baseline_single_pfcu(), &[vgg16()])
}

/// Reproduces Figure 12: power breakdown of PhotoFourier-CG and -NG averaged
/// over the five benchmark CNNs.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn fig12_power_breakdown() -> Result<Vec<PowerProfile>, ArchError> {
    let networks = paper_benchmark_suite();
    Ok(vec![
        power_profile(ArchConfig::photofourier_cg(), &networks)?,
        power_profile(ArchConfig::photofourier_ng(), &networks)?,
    ])
}

// ---------------------------------------------------------------------------
// Figure 7
// ---------------------------------------------------------------------------

/// One point of the Figure 7 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Point {
    /// Temporal accumulation depth.
    pub depth: usize,
    /// Relative error of the accumulated partial sums against the exact sum
    /// (ResNet-s-like 64-channel accumulation, 8-bit ADC).
    pub psum_relative_error: f64,
    /// End-to-end accuracy of the synthetic classification proxy at this
    /// depth.
    pub accuracy: f64,
}

/// Result of the Figure 7 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Result {
    /// Sweep over accumulation depths.
    pub points: Vec<Fig7Point>,
    /// Accuracy with full-precision partial sums (the `fp psum` reference).
    pub fp_psum_accuracy: f64,
    /// Accuracy of the exact fp64 reference pipeline.
    pub reference_accuracy: f64,
}

/// Reproduces Figure 7: accuracy (and partial-sum error) versus temporal
/// accumulation depth with an 8-bit partial-sum ADC.
///
/// # Errors
///
/// Propagates accumulation, dataset and training errors.
pub fn fig07_temporal_accumulation() -> Result<Fig7Result, Box<dyn std::error::Error>> {
    // (a) Numerical part: accumulate 64 input channels (ResNet-s block 3
    // width) of random partial sums through an 8-bit ADC at each depth.
    let mut rng = StdRng::seed_from_u64(2023);
    let lanes = 128;
    let channels = 64;
    let cycles: Vec<Vec<f64>> = (0..channels)
        .map(|_| (0..lanes).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let exact: Vec<f64> = (0..lanes)
        .map(|l| cycles.iter().map(|c| c[l]).sum())
        .collect();
    let adc = Adc::new(8, 0.625, 0.93).expect("valid ADC");
    let full_scale = Some(pf_photonics::params::TEMPORAL_ACCUMULATION_DEPTH as f64);

    // (b) Accuracy part: the synthetic classification proxy.
    let dataset = SyntheticDataset::new(DatasetConfig {
        num_classes: 8,
        image_size: 16,
        noise_sigma: 0.5,
        max_shift: 3,
        seed: 7,
    })?;
    let train_set = dataset.generate(25, 1);
    let test_set = dataset.generate(30, 2);
    let cnn = SmallCnn::new(1, 16, 42)?;
    let train_features = cnn.features_batch(&train_set.images, &ReferenceExecutor)?;
    let probe = train_linear_probe(
        &train_features,
        &train_set.labels,
        train_set.num_classes,
        TrainConfig::default(),
    )?;
    let reference_features = cnn.features_batch(&test_set.images, &ReferenceExecutor)?;
    let reference_accuracy = accuracy(&probe, &reference_features, &test_set.labels)?;

    let mut points = Vec::new();
    for depth in [1usize, 2, 4, 8, 16, 32] {
        let accumulated = accumulate_with_depth(&cycles, depth, &adc, full_scale)?;
        let psum_relative_error = pf_dsp::util::relative_l2_error(&accumulated, &exact);

        let executor = TiledExecutor::new(
            DigitalEngine,
            256,
            PipelineConfig::with_temporal_depth(depth),
        )?;
        let features = cnn.features_batch(&test_set.images, &executor)?;
        let acc = accuracy(&probe, &features, &test_set.labels)?;
        points.push(Fig7Point {
            depth,
            psum_relative_error,
            accuracy: acc,
        });
    }

    // Per-cycle quantisation sanity anchor (depth 1 equals the per-cycle
    // baseline by construction).
    let per_cycle = accumulate_quantized_per_cycle(&cycles, &adc, full_scale);
    debug_assert!(
        (pf_dsp::util::relative_l2_error(&per_cycle, &exact) - points[0].psum_relative_error).abs()
            < 1e-12
    );

    let mut fp_cfg = PipelineConfig::photofourier_default();
    fp_cfg.psum_adc_bits = None;
    let executor = TiledExecutor::new(DigitalEngine, 256, fp_cfg)?;
    let features = cnn.features_batch(&test_set.images, &executor)?;
    let fp_psum_accuracy = accuracy(&probe, &features, &test_set.labels)?;

    Ok(Fig7Result {
        points,
        fp_psum_accuracy,
        reference_accuracy,
    })
}

// ---------------------------------------------------------------------------
// Figure 8
// ---------------------------------------------------------------------------

/// Reproduces Figure 8: the parallelisation objective for 8/16/32 PFCUs.
///
/// # Errors
///
/// Propagates configuration errors.
pub fn fig08_parallelization() -> Result<Vec<(usize, Vec<SweepPoint>)>, ArchError> {
    [8usize, 16, 32]
        .into_iter()
        .map(|n| Ok((n, sweep_input_broadcast(n, 16)?)))
        .collect()
}

// ---------------------------------------------------------------------------
// Table III
// ---------------------------------------------------------------------------

/// Result of the Table III sweep for both design points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tab3Result {
    /// PhotoFourier-CG sweep.
    pub cg: Vec<DesignPoint>,
    /// PhotoFourier-NG sweep.
    pub ng: Vec<DesignPoint>,
}

/// Reproduces Table III: maximum waveguides per PFCU and geometric-mean
/// FPS/W for 4–64 PFCUs under a 100 mm² budget, on the five benchmark CNNs.
///
/// # Errors
///
/// Propagates design-space exploration errors.
pub fn tab3_design_space() -> Result<Tab3Result, ArchError> {
    let networks = paper_benchmark_suite();
    Ok(Tab3Result {
        cg: sweep_pfcu_counts(
            &ArchConfig::photofourier_cg(),
            &TABLE3_PFCU_COUNTS,
            100.0,
            &networks,
        )?,
        ng: sweep_pfcu_counts(
            &ArchConfig::photofourier_ng(),
            &TABLE3_PFCU_COUNTS,
            100.0,
            &networks,
        )?,
    })
}

// ---------------------------------------------------------------------------
// Figure 10
// ---------------------------------------------------------------------------

/// One bar of Figure 10.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig10Point {
    /// Optimisation-step label.
    pub label: String,
    /// Geometric-mean FPS/W over the five benchmark CNNs.
    pub geomean_fps_per_watt: f64,
    /// Value normalised to the baseline.
    pub speedup_over_baseline: f64,
}

/// Reproduces Figure 10: geometric-mean FPS/W as optimisations accumulate.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn fig10_optimizations() -> Result<Vec<Fig10Point>, ArchError> {
    let networks = paper_benchmark_suite();
    let mut points = Vec::new();
    let mut baseline_value = None;
    for step in OptimizationStep::ALL {
        let sim = Simulator::new(step.config())?;
        let value = sim.geomean_fps_per_watt(&networks)?;
        let base = *baseline_value.get_or_insert(value);
        points.push(Fig10Point {
            label: step.label().to_string(),
            geomean_fps_per_watt: value,
            speedup_over_baseline: value / base,
        });
    }
    Ok(points)
}

// ---------------------------------------------------------------------------
// Figure 11
// ---------------------------------------------------------------------------

/// Reproduces Figure 11: area breakdown of PhotoFourier-CG and -NG.
pub fn fig11_area() -> Vec<(String, AreaBreakdown)> {
    let cg = ArchConfig::photofourier_cg();
    let ng = ArchConfig::photofourier_ng();
    vec![
        (
            cg.tech.name.clone(),
            AreaModel::for_tech(&cg.tech).breakdown(&cg.tech),
        ),
        (
            ng.tech.name.clone(),
            AreaModel::for_tech(&ng.tech).breakdown(&ng.tech),
        ),
    ]
}

// ---------------------------------------------------------------------------
// Figure 13
// ---------------------------------------------------------------------------

/// One bar group of Figure 13.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Accelerator name.
    pub accelerator: String,
    /// Network name.
    pub network: String,
    /// Throughput in frames per second.
    pub fps: f64,
    /// Efficiency in FPS/W.
    pub fps_per_watt: f64,
    /// Inverse energy-delay product (1 / (J·s)), larger is better.
    pub inverse_edp: f64,
}

/// Reproduces Figure 13: FPS, FPS/W and 1/EDP of PhotoFourier-CG/NG (with
/// and without memory power), the prior photonic accelerators (anchored to
/// the simulated CG results, see `pf-baselines`), and the UNPU-like digital
/// baseline, on AlexNet / VGG-16 / ResNet-18.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn fig13_comparison() -> Result<Vec<ComparisonRow>, ArchError> {
    let networks = comparison_suite();
    let cg = Simulator::new(ArchConfig::photofourier_cg())?;
    let ng = Simulator::new(ArchConfig::photofourier_ng())?;

    let cg_results: Vec<NetworkPerformance> = networks
        .iter()
        .map(|n| cg.evaluate_network(n))
        .collect::<Result<_, _>>()?;
    let ng_results: Vec<NetworkPerformance> = networks
        .iter()
        .map(|n| ng.evaluate_network(n))
        .collect::<Result<_, _>>()?;

    let mut rows = Vec::new();
    for (network, perf) in networks.iter().zip(&cg_results) {
        rows.push(ComparisonRow {
            accelerator: "PhotoFourier-CG".to_string(),
            network: network.name.clone(),
            fps: perf.fps,
            fps_per_watt: perf.fps_per_watt,
            inverse_edp: perf.inverse_edp(),
        });
        rows.push(ComparisonRow {
            accelerator: "PhotoFourier-CG-nm".to_string(),
            network: network.name.clone(),
            fps: perf.fps,
            fps_per_watt: perf.fps_per_watt_no_memory(),
            inverse_edp: perf.fps * perf.fps_per_watt_no_memory(),
        });
    }
    for (network, perf) in networks.iter().zip(&ng_results) {
        rows.push(ComparisonRow {
            accelerator: "PhotoFourier-NG".to_string(),
            network: network.name.clone(),
            fps: perf.fps,
            fps_per_watt: perf.fps_per_watt,
            inverse_edp: perf.inverse_edp(),
        });
        rows.push(ComparisonRow {
            accelerator: "PhotoFourier-NG-nm".to_string(),
            network: network.name.clone(),
            fps: perf.fps,
            fps_per_watt: perf.fps_per_watt_no_memory(),
            inverse_edp: perf.fps * perf.fps_per_watt_no_memory(),
        });
    }

    for reference in prior_photonic_accelerators() {
        let anchored = reference.anchored(&cg_results);
        for network in &networks {
            if let (Some(fps), Some(fpw), Some(edp)) = (
                anchored.fps(network),
                anchored.fps_per_watt(network),
                anchored.edp(network),
            ) {
                rows.push(ComparisonRow {
                    accelerator: reference.name.to_string(),
                    network: network.name.clone(),
                    fps,
                    fps_per_watt: fpw,
                    inverse_edp: 1.0 / edp,
                });
            }
        }
    }

    let unpu = SystolicArray::unpu_like();
    for network in &networks {
        rows.push(ComparisonRow {
            accelerator: unpu.name().to_string(),
            network: network.name.clone(),
            fps: unpu
                .fps(network)
                .expect("systolic model covers all networks"),
            fps_per_watt: unpu
                .fps_per_watt(network)
                .expect("systolic model covers all networks"),
            inverse_edp: 1.0
                / unpu
                    .edp(network)
                    .expect("systolic model covers all networks"),
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// CrossLight comparison
// ---------------------------------------------------------------------------

/// Result of the CrossLight energy comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrosslightResult {
    /// Energy per inference of PhotoFourier-CG on the 4-layer CIFAR-10 CNN,
    /// in microjoules (paper: 4.76 µJ).
    pub photofourier_cg_uj: f64,
    /// Published CrossLight energy per inference in microjoules (427 µJ).
    pub crosslight_uj: f64,
}

impl CrosslightResult {
    /// Energy advantage of PhotoFourier-CG.
    pub fn advantage(&self) -> f64 {
        self.crosslight_uj / self.photofourier_cg_uj
    }
}

/// Reproduces the Section VI-E CrossLight comparison.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn crosslight_energy() -> Result<CrosslightResult, ArchError> {
    let sim = Simulator::new(ArchConfig::photofourier_cg())?;
    let perf = sim.evaluate_network(&crosslight_cnn())?;
    Ok(CrosslightResult {
        photofourier_cg_uj: perf.energy_uj(),
        crosslight_uj: CROSSLIGHT_ENERGY_PER_INFERENCE_UJ,
    })
}

// ---------------------------------------------------------------------------
// Ablation: utilisation and strided convolutions
// ---------------------------------------------------------------------------

/// Utilisation statistics of one network on PhotoFourier-CG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilizationRow {
    /// Network name.
    pub network: String,
    /// Average input-waveguide utilisation across layers (cycle-weighted).
    pub avg_waveguide_utilization: f64,
    /// Fraction of computed unit-stride outputs that strided layers discard.
    pub strided_waste: f64,
}

/// Ablation: waveguide utilisation and strided-convolution waste per network
/// (the effects discussed in Sections V-E and VI-E).
///
/// # Errors
///
/// Propagates scheduling errors.
pub fn ablation_utilization() -> Result<Vec<UtilizationRow>, ArchError> {
    let config = ArchConfig::photofourier_cg();
    let sim = Simulator::new(config.clone())?;
    let mut rows = Vec::new();
    for network in [alexnet(), vgg16(), resnet18(), resnet_s()] {
        let perf = sim.evaluate_network(&network)?;
        let total_cycles: u64 = perf.layers.iter().map(|l| l.schedule.total_cycles).sum();
        let weighted_util: f64 = perf
            .layers
            .iter()
            .map(|l| {
                l.schedule
                    .waveguide_utilization(config.tech.input_waveguides)
                    * l.schedule.total_cycles as f64
            })
            .sum::<f64>()
            / total_cycles as f64;
        let computed: u64 = network
            .conv_layers
            .iter()
            .map(|l| (l.input_size * l.input_size) as u64 * l.out_channels as u64)
            .sum();
        let kept: u64 = network
            .conv_layers
            .iter()
            .map(|l| l.output_activations())
            .sum();
        rows.push(UtilizationRow {
            network: network.name.clone(),
            avg_waveguide_utilization: weighted_util,
            strided_waste: 1.0 - kept as f64 / computed as f64,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig02_terms_are_separated_and_exact() {
        let result = fig02_jtc_output().unwrap();
        assert!(result.terms_separated);
        assert!(result.extraction_error < 1e-9);
        assert!(!result.intensity.is_empty());
    }

    #[test]
    fn fig06_baseline_is_converter_heavy() {
        let profile = fig06_baseline_power().unwrap();
        assert!(profile.breakdown.converter_share() > 0.6);
        assert!(profile.avg_power_w > 10.0);
    }

    #[test]
    fn fig08_matches_paper_values() {
        let sweeps = fig08_parallelization().unwrap();
        assert_eq!(sweeps.len(), 3);
        let (n, points) = &sweeps[0];
        assert_eq!(*n, 8);
        let best = points
            .iter()
            .map(|p| p.objective)
            .fold(f64::INFINITY, f64::min);
        assert!((best - 1.5).abs() < 1e-12);
    }

    #[test]
    fn fig10_is_monotone() {
        let points = fig10_optimizations().unwrap();
        assert_eq!(points.len(), 5);
        for pair in points.windows(2) {
            assert!(pair[1].geomean_fps_per_watt > pair[0].geomean_fps_per_watt);
        }
        assert!(points.last().unwrap().speedup_over_baseline > 5.0);
    }

    #[test]
    fn fig11_areas_are_comparable() {
        let areas = fig11_area();
        assert_eq!(areas.len(), 2);
        let ratio = areas[1].1.pic_mm2() / areas[0].1.pic_mm2();
        assert!((0.7..1.4).contains(&ratio));
    }

    #[test]
    fn fig12_ng_uses_less_power_than_cg() {
        let profiles = fig12_power_breakdown().unwrap();
        assert_eq!(profiles.len(), 2);
        assert!(profiles[1].avg_power_w < profiles[0].avg_power_w);
        // CG sits in the tens of watts, NG below it (paper: 26.0 / 8.42 W).
        assert!((5.0..80.0).contains(&profiles[0].avg_power_w));
    }

    #[test]
    fn fig13_photofourier_ng_wins_edp() {
        let rows = fig13_comparison().unwrap();
        for network in ["AlexNet", "VGG-16", "ResNet-18"] {
            let ng = rows
                .iter()
                .find(|r| r.accelerator == "PhotoFourier-NG" && r.network == network)
                .unwrap();
            for row in rows
                .iter()
                .filter(|r| r.network == network && !r.accelerator.starts_with("PhotoFourier"))
            {
                assert!(
                    ng.inverse_edp > row.inverse_edp,
                    "{} beats NG on {network}",
                    row.accelerator
                );
            }
        }
    }

    #[test]
    fn crosslight_advantage_is_large() {
        let result = crosslight_energy().unwrap();
        assert!(result.photofourier_cg_uj < 50.0);
        assert!(result.advantage() > 10.0);
    }

    #[test]
    fn ablation_utilization_flags_alexnet_stride() {
        let rows = ablation_utilization().unwrap();
        let alex = rows.iter().find(|r| r.network == "AlexNet").unwrap();
        let vgg = rows.iter().find(|r| r.network == "VGG-16").unwrap();
        // AlexNet discards most of its first-layer outputs (stride 4).
        assert!(alex.strided_waste > vgg.strided_waste);
        for row in &rows {
            assert!(row.avg_waveguide_utilization > 0.0);
            assert!(row.avg_waveguide_utilization <= 1.0);
        }
    }
}
