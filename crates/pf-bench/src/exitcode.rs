//! The `loadgen` exit-code taxonomy, in one place so the CI jobs, the
//! docs and the binary cannot drift apart.
//!
//! | code | meaning |
//! |------|---------|
//! | [`OK`] | run (and any gate) passed |
//! | [`FAILURE`] | hard failure: broken accounting, SLO violation, offline divergence, I/O error |
//! | [`USAGE`] | bad command line |
//! | [`SHED`] | route smoke gate: the only finding is *intentional shedding* outside the overload record — the tier protected itself |
//! | [`CHAOS`] | chaos gate breach: a hung ticket, a replica never re-admitted, or a healthy-class SLO miss under injected faults |
//!
//! `SHED` and `CHAOS` are deliberately distinct from `FAILURE`: CI can
//! treat "the tier degraded by policy" and "the tier failed to self-heal"
//! differently from "the tier is broken".

/// The run — and any gate it ran under — passed.
pub const OK: u8 = 0;

/// Hard failure (rejections, SLO violations, offline divergence, I/O).
pub const FAILURE: u8 = 1;

/// Bad command line.
pub const USAGE: u8 = 2;

/// Route smoke gate: intentional shedding outside the overload record was
/// the only finding.
pub const SHED: u8 = 3;

/// Chaos gate breach (see [`crate::chaos::check_chaos_smoke`]).
pub const CHAOS: u8 = 4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_distinct_and_stable() {
        let codes = [OK, FAILURE, USAGE, SHED, CHAOS];
        for (i, a) in codes.iter().enumerate() {
            for b in &codes[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // The taxonomy is part of the CI contract: renumbering breaks the
        // workflow gates, so pin the values.
        assert_eq!(codes, [0, 1, 2, 3, 4]);
    }
}
