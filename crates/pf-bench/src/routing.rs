//! The routing load-generator behind `cargo run -p pf-bench --bin loadgen
//! --route`.
//!
//! Drives the `pf-router` multi-replica serving tier with **trace-driven**
//! arrivals and emits a machine-readable `BENCH_routing.json` (schema
//! [`SCHEMA`]). Where `serving.rs` measures one replica under closed/open
//! loops, this module measures the *front tier*: dispatch policies compared
//! on recorded tail latency and model-cache locality, the degradation
//! ladder exercised by a deliberate overload record, and per-class
//! accounting (shed vs rejected vs served) checked by the smoke gate.
//!
//! Three seeded, replayable arrival processes ([`TraceKind`]):
//!
//! * **bursty** — a baseline Poisson rate with periodic bursts at ten times
//!   that rate (the CI trace: bursts expose queueing and spills without
//!   needing wall-clock scale);
//! * **diurnal** — the arrival rate ramps sinusoidally from 30% of the
//!   base rate to its peak and back (a compressed day);
//! * **heavy_tail** — Pareto inter-arrival gaps (α = 1.5) with the same
//!   mean rate, so rare long gaps alternate with tight clumps.
//!
//! Every event carries a model key (requests arrive in runs of the same
//! model, the locality a `kernel_affinity` router can exploit) and a
//! priority class drawn from the configured distribution. Traces are pure
//! functions of their seed: the same seed replays the same arrival times,
//! models and classes, and — for deterministic backends — bit-identical
//! served results, verified against offline per-variant sessions.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use photofourier::prelude::*;
use photofourier::route::{self, model_scenario, ModelRequest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Schema identifier written into the report.
pub const SCHEMA: &str = "pf-bench/routing-v1";

/// The priority classes every routing record runs with (highest first).
pub const CLASSES: [&str; 3] = ["interactive", "standard", "background"];

/// One of the seeded arrival processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// Baseline Poisson rate with periodic 10x bursts.
    Bursty,
    /// Sinusoidal ramp from 30% of the base rate to peak and back.
    Diurnal,
    /// Pareto (α = 1.5) inter-arrival gaps at the same mean rate.
    HeavyTail,
}

impl TraceKind {
    /// All trace kinds, in report order.
    pub const ALL: [TraceKind; 3] = [TraceKind::Bursty, TraceKind::Diurnal, TraceKind::HeavyTail];

    /// The report-facing name.
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::Bursty => "bursty",
            TraceKind::Diurnal => "diurnal",
            TraceKind::HeavyTail => "heavy_tail",
        }
    }

    /// Parses a trace name (inverse of [`TraceKind::name`]).
    ///
    /// # Errors
    ///
    /// Returns [`PfError::InvalidScenario`] for an unknown name.
    pub fn from_name(name: &str) -> Result<Self, PfError> {
        match name {
            "bursty" => Ok(TraceKind::Bursty),
            "diurnal" => Ok(TraceKind::Diurnal),
            "heavy_tail" => Ok(TraceKind::HeavyTail),
            other => Err(PfError::invalid_scenario(format!(
                "unknown trace `{other}` (known: bursty, diurnal, heavy_tail)"
            ))),
        }
    }
}

/// One arrival in a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Offset from the trace start.
    pub at: Duration,
    /// Model-variant key (also the affinity key).
    pub model: u64,
    /// Priority class index into [`CLASSES`].
    pub class: usize,
}

/// A generated arrival trace: replayable from `(kind, seed)` alone.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Which arrival process generated it.
    pub kind: TraceKind,
    /// The generation seed.
    pub seed: u64,
    /// Arrivals in time order.
    pub events: Vec<TraceEvent>,
}

/// Events per model run: arrivals come in runs of the same model, the
/// temporal locality `kernel_affinity` exploits.
const MODEL_RUN: usize = 6;

/// Burst shape of [`TraceKind::Bursty`]: after every `BURST_PERIOD` baseline
/// arrivals, `BURST_LEN` arrivals at 10x the base rate.
const BURST_PERIOD: usize = 8;
/// See [`BURST_PERIOD`].
const BURST_LEN: usize = 8;

impl Trace {
    /// Generates `requests` arrivals at a mean `base_rps`, cycling model
    /// keys `0..models` in runs of six, classes drawn 25%
    /// interactive / 50% standard / 25% background. Deterministic in
    /// `(kind, requests, base_rps, models, seed)`.
    pub fn generate(
        kind: TraceKind,
        requests: usize,
        base_rps: f64,
        models: u64,
        seed: u64,
    ) -> Self {
        assert!(base_rps > 0.0, "trace needs a positive base rate");
        assert!(models >= 1, "trace needs at least one model");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut at = Duration::ZERO;
        let mut events = Vec::with_capacity(requests);
        for k in 0..requests {
            let u: f64 = rng.gen_range(0.0..1.0);
            let gap = match kind {
                TraceKind::Bursty => {
                    // Exponential gaps; every BURST_PERIOD + BURST_LEN
                    // events, BURST_LEN of them arrive at 10x the rate.
                    let phase = k % (BURST_PERIOD + BURST_LEN);
                    let rate = if phase < BURST_PERIOD {
                        base_rps
                    } else {
                        base_rps * 10.0
                    };
                    -(1.0 - u).ln() / rate
                }
                TraceKind::Diurnal => {
                    // Rate ramps 0.3x -> 1.7x -> 0.3x over the trace.
                    let t = k as f64 / requests.max(1) as f64;
                    let rate = base_rps * (0.3 + 1.4 * (std::f64::consts::PI * t).sin());
                    -(1.0 - u).ln() / rate
                }
                TraceKind::HeavyTail => {
                    // Pareto(α = 1.5) with mean 1/base_rps: mean of Pareto
                    // is α·xm/(α-1) = 3·xm, so xm = 1/(3·base_rps).
                    let alpha = 1.5;
                    let xm = 1.0 / (3.0 * base_rps);
                    xm * (1.0 - u).powf(-1.0 / alpha)
                }
            };
            at += Duration::from_secs_f64(gap);
            let cu: f64 = rng.gen_range(0.0..1.0);
            let class = if cu < 0.25 {
                0
            } else if cu < 0.75 {
                1
            } else {
                2
            };
            events.push(TraceEvent {
                at,
                model: (k / MODEL_RUN) as u64 % models,
                class,
            });
        }
        Self { kind, seed, events }
    }
}

/// One measured router run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingRecord {
    /// Backend registry name.
    pub backend: String,
    /// Dispatch policy the router ran with.
    pub policy: String,
    /// Trace name ([`TraceKind::name`]).
    pub trace: String,
    /// Arrivals offered.
    pub requests: usize,
    /// Whether this record deliberately overloads the tier (tiny queues,
    /// unpaced arrivals) to exercise the shed/spill/reject ladder.
    /// Shedding is *expected* here and *unexpected* everywhere else.
    pub overload: bool,
    /// Whether every served result was bit-identical to an offline
    /// session of the same model variant (seeded replay for stochastic
    /// backends).
    pub matches_offline: bool,
    /// The p99 SLO (milliseconds) the highest class is held to.
    pub slo_p99_ms: f64,
    /// The router's full accounting (per-class, per-replica, aggregate).
    pub stats: RouterStats,
}

/// The full report serialised to `BENCH_routing.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingReport {
    /// Schema identifier ([`SCHEMA`]).
    pub schema: String,
    /// `smoke` (CI) or `full`.
    pub mode: String,
    /// Rayon worker threads on this host.
    pub host_threads: usize,
    /// Measured records.
    pub results: Vec<RoutingRecord>,
    /// Telemetry accounting when the run was traced (`loadgen --route
    /// --trace`); see [`crate::serving::TraceSummary`].
    pub trace: Option<crate::serving::TraceSummary>,
}

/// Options of [`run_route_suite`], typically parsed from loadgen flags.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteOptions {
    /// Small fixed request counts and the smoke route gate (CI).
    pub smoke: bool,
    /// Backend the per-policy records run on.
    pub backend: BackendKind,
    /// Mean arrival rate of the paced traces (requests/s).
    pub base_rps: f64,
    /// Arrivals per record (0 means the mode's default).
    pub requests: usize,
    /// Seed of the trace and image RNGs.
    pub seed: u64,
}

impl Default for RouteOptions {
    fn default() -> Self {
        Self {
            smoke: false,
            backend: BackendKind::Digital,
            base_rps: 400.0,
            requests: 0,
            seed: 42,
        }
    }
}

/// Knobs of one router run; [`RouteRun::record`] executes it.
#[derive(Debug, Clone)]
struct RouteRun {
    backend: BackendKind,
    policy: String,
    replicas: usize,
    queue_depth: usize,
    models: u64,
    replica_cache: usize,
    slo_p99_ms: f64,
    /// Pace submissions to the trace's arrival times. The overload record
    /// turns this off: all arrivals at once, so queue pressure is a
    /// property of the trace rather than of host speed.
    paced: bool,
    /// Per-request deadline budget from submission. `None` = no deadlines.
    deadline: Option<Duration>,
    overload: bool,
}

impl RouteRun {
    fn scenario(&self) -> Scenario {
        let mut scenario = Scenario::new(
            format!("routegen_{}_{}", self.backend, self.policy),
            "resnet18",
            BackendSpec {
                kind: self.backend,
                capacity: 256,
            },
        );
        scenario.serving = Some(ServingSpec {
            max_batch: 4,
            batch_timeout_us: 200,
            queue_depth: self.queue_depth,
            workers: 1,
            router: Some(RouterSpec {
                replicas: self.replicas,
                policy: self.policy.clone(),
                priority_classes: CLASSES.iter().map(|c| c.to_string()).collect(),
                slo_p99_ms: self.slo_p99_ms,
                models: self.models as usize,
                replica_cache: self.replica_cache,
                shed_at: 0.75,
                shrink_at: 0.5,
            }),
        });
        scenario
    }

    /// Runs the trace through a fresh router and verifies served results
    /// against offline per-variant sessions. Under an enabled telemetry
    /// handle the router also records admission spans, `router.*` counters
    /// and replica-scoped `serve.*` metrics into `tel`; results are
    /// bit-identical either way.
    fn record_traced(
        &self,
        trace: &Trace,
        seed: u64,
        tel: &Telemetry,
    ) -> Result<RoutingRecord, PfError> {
        let scenario = self.scenario();
        // Scope this record's counters apart from the suite's other routers
        // (the registry is shared, so an unscoped second router would
        // report cumulative counts); spans stay on the shared timeline.
        let scope = format!(
            "{}_{}_{}{}",
            trace.kind.name(),
            self.policy,
            self.backend,
            if self.overload { "_overload" } else { "" }
        );
        let router = route::route_scenario_traced(scenario.clone(), tel.with_prefix(&scope))?;

        let start = Instant::now();
        // (trace index, model, input, ticket) of every admitted request.
        let mut pending = Vec::with_capacity(trace.events.len());
        for (k, event) in trace.events.iter().enumerate() {
            if self.paced {
                let arrival = start + event.at;
                let now = Instant::now();
                if arrival > now {
                    std::thread::sleep(arrival - now);
                }
            }
            let input = request_image(&scenario, seed, k);
            let payload = ModelRequest::new(input.clone(), event.model).with_seed(k as u64);
            let mut request = RouterRequest::new(payload)
                .with_class(event.class)
                .with_affinity(event.model);
            if let Some(budget) = self.deadline {
                request = request.with_deadline(Instant::now() + budget);
            }
            match router.submit(request) {
                Ok(ticket) => pending.push((k as u64, event.model, input, ticket)),
                // Sheds and rejections are the router's accounting, not
                // the load generator's problem.
                Err(PfError::Shed { .. }) | Err(PfError::Overloaded { .. }) => {}
                Err(e) => return Err(e),
            }
        }

        // Waiting after the fact is safe for latency accounting: the
        // replica stamps each ticket's completion instant when it is
        // fulfilled, not when it is waited on.
        let mut outcomes = Vec::with_capacity(pending.len());
        for (k, model, input, ticket) in pending {
            if let Ok(output) = ticket.wait() {
                outcomes.push((k, model, input, output));
            }
        }
        let stats = router.drain()?;
        let matches_offline = verify_offline(&scenario, &outcomes)?;
        Ok(RoutingRecord {
            backend: self.backend.name().to_string(),
            policy: self.policy.clone(),
            trace: trace.kind.name().to_string(),
            requests: trace.events.len(),
            overload: self.overload,
            matches_offline,
            slo_p99_ms: self.slo_p99_ms,
            stats,
        })
    }
}

/// The image request `k` of a trace submits: seeded, so a replay (and the
/// offline verification) sees identical traffic.
fn request_image(scenario: &Scenario, seed: u64, k: usize) -> Tensor {
    let f = &scenario.functional;
    Tensor::random(
        vec![f.input_channels, f.input_size, f.input_size],
        0.0,
        1.0,
        seed.wrapping_mul(0x9E37_79B9).wrapping_add(k as u64),
    )
}

fn tensors_bit_equal(a: &Tensor, b: &Tensor) -> bool {
    a.shape() == b.shape()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Re-runs every served request through a fresh offline session of its
/// model variant and checks bit-identity — `run_inference` for
/// deterministic backends, `run_inference_seeded` with the request's trace
/// index for stochastic ones (the same seed the router's replicas used).
fn verify_offline(
    base: &Scenario,
    outcomes: &[(u64, u64, Tensor, Tensor)],
) -> Result<bool, PfError> {
    let mut sessions: BTreeMap<u64, Arc<Session>> = BTreeMap::new();
    for (k, model, input, served) in outcomes {
        let session = match sessions.get(model) {
            Some(session) => Arc::clone(session),
            None => {
                let session = Arc::new(Session::from_scenario(model_scenario(base, *model))?);
                sessions.insert(*model, Arc::clone(&session));
                session
            }
        };
        let offline = if session.is_stochastic() {
            session.run_inference_seeded(input, *k)?
        } else {
            session.run_inference(input)?
        };
        if !tensors_bit_equal(&offline, served) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Runs the routing record matrix for one mode.
///
/// Smoke: the bursty trace through all three policies on a 2-replica
/// router (roomy queues, generous deadlines — the gate demands zero
/// deadline-violating completions), plus one deliberate **overload**
/// record (tiny queues, unpaced arrivals) that exercises the
/// shed → spill → reject ladder. Full: the same per-policy comparison
/// with more arrivals, plus the diurnal and heavy-tail traces under
/// `kernel_affinity` and a stochastic-backend record proving seeded
/// replay through the tier.
///
/// # Errors
///
/// Propagates the first record's construction error.
pub fn run_route_suite(options: &RouteOptions) -> Result<RoutingReport, PfError> {
    run_route_suite_traced(options, &Telemetry::disabled())
}

/// [`run_route_suite`] under a telemetry handle: every record's router
/// shares `tel`, and the report carries a
/// [`TraceSummary`](crate::serving::TraceSummary) (`None` when `tel` is
/// disabled, making this identical to [`run_route_suite`]).
///
/// # Errors
///
/// Same conditions as [`run_route_suite`].
pub fn run_route_suite_traced(
    options: &RouteOptions,
    tel: &Telemetry,
) -> Result<RoutingReport, PfError> {
    let requests = match options.requests {
        0 if options.smoke => 48,
        0 => 192,
        n => n,
    };
    let models = 3;
    let policy_run = |policy: &str| RouteRun {
        backend: options.backend,
        policy: policy.to_string(),
        replicas: 2,
        queue_depth: 256,
        models,
        // Every model fits on every replica, so the policies are compared
        // purely on how many *cold builds* they cause, with no risk of two
        // models thrashing one slot when the ring homes them together.
        replica_cache: models as usize,
        slo_p99_ms: 1_000.0,
        paced: true,
        deadline: Some(Duration::from_secs(10)),
        overload: false,
    };

    let mut results = Vec::new();
    for policy in ROUTER_POLICIES {
        let trace = Trace::generate(
            TraceKind::Bursty,
            requests,
            options.base_rps,
            models,
            options.seed,
        );
        results.push(policy_run(policy).record_traced(&trace, options.seed, tel)?);
    }

    if !options.smoke {
        for kind in [TraceKind::Diurnal, TraceKind::HeavyTail] {
            let trace = Trace::generate(kind, requests, options.base_rps, models, options.seed);
            results.push(policy_run("kernel_affinity").record_traced(&trace, options.seed, tel)?);
        }
        // Seeded replay through the tier on the stochastic CG chain.
        let trace = Trace::generate(
            TraceKind::Bursty,
            requests.min(48),
            options.base_rps,
            models,
            options.seed,
        );
        let mut run = policy_run("kernel_affinity");
        run.backend = BackendKind::PhotofourierCg;
        results.push(run.record_traced(&trace, options.seed, tel)?);
    }

    // The overload record: tiny queues and unpaced arrivals force the
    // degradation ladder. Only the lowest class may be shed; the highest
    // class must stay within its SLO (queues this small cannot hold much
    // latency).
    let overload_trace = Trace::generate(
        TraceKind::Bursty,
        requests,
        options.base_rps,
        models,
        options.seed,
    );
    results.push(
        RouteRun {
            backend: options.backend,
            policy: "least_loaded".to_string(),
            replicas: 2,
            queue_depth: 2,
            models,
            replica_cache: models as usize,
            slo_p99_ms: 1_000.0,
            paced: false,
            deadline: None,
            overload: true,
        }
        .record_traced(&overload_trace, options.seed, tel)?,
    );

    Ok(RoutingReport {
        schema: SCHEMA.to_string(),
        mode: if options.smoke { "smoke" } else { "full" }.to_string(),
        host_threads: rayon::current_num_threads(),
        results,
        trace: crate::serving::TraceSummary::from_telemetry(tel),
    })
}

/// Outcome of the route smoke gate: hard `failures` (broken accounting,
/// SLO violations, capacity rejections, offline divergence — exit 1) are
/// kept apart from `unexpected_sheds` (intentional policy shedding that
/// leaked into a record where it was not provoked — its own exit path,
/// distinct from rejections, so CI can tell "the tier protected itself"
/// from "the tier failed").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouteGate {
    /// Hard gate failures.
    pub failures: Vec<String>,
    /// Shedding observed outside the overload record.
    pub unexpected_sheds: Vec<String>,
}

impl RouteGate {
    /// Whether the gate passes outright.
    pub fn passed(&self) -> bool {
        self.failures.is_empty() && self.unexpected_sheds.is_empty()
    }
}

/// The smoke gate CI enforces on a routing report.
///
/// Non-overload records: no rejections, no failures, no expiries, no
/// abandons, **zero deadline-violating completions**, offline
/// bit-identity, the highest class's p99 within the record's SLO, and
/// class accounting that sums to the aggregate. Shedding here is counted
/// separately (see [`RouteGate`]). The overload record must actually shed
/// — only from the lowest class — while the highest class still meets its
/// SLO. Across records, `kernel_affinity` must beat `round_robin` on
/// model-cache hit rate on the same trace.
pub fn check_route_smoke(report: &RoutingReport) -> RouteGate {
    let mut gate = RouteGate::default();
    for record in &report.results {
        let tag = format!("{}/{}/{}", record.trace, record.policy, record.backend);
        let s = &record.stats;
        if s.submitted != s.admitted + s.shed + s.rejected {
            gate.failures.push(format!(
                "{tag}: admission accounting broken ({} + {} + {} != {})",
                s.admitted, s.shed, s.rejected, s.submitted
            ));
        }
        if !record.matches_offline {
            gate.failures.push(format!(
                "{tag}: served results diverge from offline per-variant sessions"
            ));
        }
        let failed: u64 = s.classes.iter().map(|c| c.failed).sum();
        if failed > 0 {
            gate.failures
                .push(format!("{tag}: {failed} request(s) failed"));
        }
        let highest = &s.classes[0];
        if highest.latency.count > 0 && highest.latency.p99_ms > record.slo_p99_ms {
            gate.failures.push(format!(
                "{tag}: highest-class p99 {:.3} ms exceeds the {:.0} ms SLO",
                highest.latency.p99_ms, record.slo_p99_ms
            ));
        }
        if record.overload {
            if s.shed == 0 {
                gate.failures.push(format!(
                    "{tag}: overload record shed nothing (ladder untested)"
                ));
            }
            let protected_shed: u64 = s
                .classes
                .iter()
                .take(s.classes.len().saturating_sub(1))
                .map(|c| c.shed)
                .sum();
            if protected_shed > 0 {
                gate.failures.push(format!(
                    "{tag}: {protected_shed} shed request(s) above the lowest class"
                ));
            }
        } else {
            if s.rejected > 0 {
                gate.failures
                    .push(format!("{tag}: {} request(s) rejected", s.rejected));
            }
            if s.deadline_misses > 0 {
                gate.failures.push(format!(
                    "{tag}: {} deadline-violating completion(s)",
                    s.deadline_misses
                ));
            }
            let expired: u64 = s.classes.iter().map(|c| c.expired).sum();
            let abandoned: u64 = s.classes.iter().map(|c| c.abandoned).sum();
            if expired > 0 || abandoned > 0 {
                gate.failures.push(format!(
                    "{tag}: {expired} expired / {abandoned} abandoned on an unloaded record"
                ));
            }
            if s.shed > 0 {
                gate.unexpected_sheds.push(format!(
                    "{tag}: {} request(s) shed outside the overload record",
                    s.shed
                ));
            }
        }
    }

    // Policy comparison: kernel affinity must actually buy cache locality
    // over the oblivious baseline on the same trace.
    let hit_rate = |policy: &str| {
        report
            .results
            .iter()
            .find(|r| !r.overload && r.policy == policy && r.trace == "bursty")
            .map(|r| r.stats.cache().hit_rate())
    };
    if let (Some(affinity), Some(round_robin)) =
        (hit_rate("kernel_affinity"), hit_rate("round_robin"))
    {
        if affinity <= round_robin {
            gate.failures.push(format!(
                "kernel_affinity hit rate {:.3} not above round_robin {:.3}",
                affinity, round_robin
            ));
        }
    }
    gate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_given_seed() {
        for kind in TraceKind::ALL {
            let a = Trace::generate(kind, 64, 500.0, 3, 7);
            let b = Trace::generate(kind, 64, 500.0, 3, 7);
            assert_eq!(a, b, "{} not replayable", kind.name());
            let c = Trace::generate(kind, 64, 500.0, 3, 8);
            assert_ne!(a, c, "{} ignores its seed", kind.name());
            // Time is monotone and classes/models are in range.
            for pair in a.events.windows(2) {
                assert!(pair[0].at <= pair[1].at);
            }
            assert!(a.events.iter().all(|e| e.class < CLASSES.len()));
            assert!(a.events.iter().all(|e| e.model < 3));
            assert_eq!(TraceKind::from_name(kind.name()).unwrap(), kind);
        }
        assert!(TraceKind::from_name("steady").is_err());
    }

    #[test]
    fn bursty_trace_has_tighter_gaps_in_bursts() {
        let trace = Trace::generate(TraceKind::Bursty, BURST_PERIOD + BURST_LEN, 100.0, 1, 3);
        let gap = |i: usize| (trace.events[i].at - trace.events[i - 1].at).as_secs_f64();
        let base: f64 = (1..BURST_PERIOD).map(gap).sum::<f64>() / (BURST_PERIOD - 1) as f64;
        let burst: f64 = (BURST_PERIOD + 1..BURST_PERIOD + BURST_LEN)
            .map(gap)
            .sum::<f64>()
            / (BURST_LEN - 1) as f64;
        assert!(
            burst < base,
            "burst mean gap {burst} not below baseline {base}"
        );
    }

    #[test]
    fn smoke_suite_passes_its_own_gate() {
        let options = RouteOptions {
            smoke: true,
            requests: 32,
            ..RouteOptions::default()
        };
        let report = run_route_suite(&options).unwrap();
        assert_eq!(report.schema, SCHEMA);
        // Per-policy bursty records plus the overload record.
        assert_eq!(report.results.len(), ROUTER_POLICIES.len() + 1);
        let gate = check_route_smoke(&report);
        assert!(gate.passed(), "{gate:?}");

        let overload = report.results.last().unwrap();
        assert!(overload.overload);
        assert!(overload.stats.shed > 0, "overload record must shed");
        let by_policy = |p: &str| {
            report
                .results
                .iter()
                .find(|r| !r.overload && r.policy == p)
                .unwrap()
        };
        let affinity = by_policy("kernel_affinity").stats.cache().hit_rate();
        let rr = by_policy("round_robin").stats.cache().hit_rate();
        assert!(
            affinity > rr,
            "affinity {affinity} must beat round robin {rr}"
        );
    }

    #[test]
    fn gate_separates_sheds_from_failures() {
        let options = RouteOptions {
            smoke: true,
            requests: 32,
            ..RouteOptions::default()
        };
        let mut report = run_route_suite(&options).unwrap();
        // Teleport the overload record's sheds into a normal record: the
        // gate must route them to the shed path, not the failure path.
        let sheds = report.results.last().unwrap().stats.shed;
        assert!(sheds > 0);
        report.results[0].stats.shed = sheds;
        report.results[0].stats.submitted += sheds;
        let gate = check_route_smoke(&report);
        assert!(gate.failures.is_empty(), "{:?}", gate.failures);
        assert_eq!(gate.unexpected_sheds.len(), 1);
        assert!(!gate.passed());

        // A rejection on a normal record is a hard failure.
        report.results[0].stats.shed = 0;
        report.results[0].stats.rejected = 1;
        let gate = check_route_smoke(&report);
        assert!(!gate.failures.is_empty());
    }

    #[test]
    fn report_serializes_round_trip() {
        let options = RouteOptions {
            smoke: true,
            requests: 24,
            ..RouteOptions::default()
        };
        let report = run_route_suite(&options).unwrap();
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: RoutingReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
