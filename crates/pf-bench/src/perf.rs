//! The throughput perf harness behind `cargo run -p pf-bench --bin perf`.
//!
//! Drives batched 2D convolution and batched (ResNet-18-shaped scenario)
//! inference through each backend via the [`photofourier::Session`] facade
//! and emits a machine-readable `BENCH_throughput.json` — the repo's
//! performance trajectory. Every record carries `speedup_vs_seed`: measured
//! throughput divided by the throughput of a **seed reference path** run on
//! the same host in the same process, so the number is comparable across
//! machines (and is what the CI bench gate checks).
//!
//! Seed reference paths:
//!
//! * **conv2d on the ideal JTC** — the [`seed`] module below, a frozen copy
//!   of the pre-engine hot path (per-call complex FFTs with incrementally
//!   computed twiddles, joint-plane assembly per tile, serial tiling). It
//!   is deliberately kept verbatim so future optimisation PRs measure
//!   against the same origin.
//! * **conv2d on the digital backend** — the same frozen serial tiling over
//!   the dot-product engine.
//! * **conv2d on the CG chain** — the frozen [`seed::SeedCg`] signal chain
//!   (seed optics plus unprepared per-call DAC/noise/ADC), serial tiling;
//!   the live path now caches prepared kernel spectra for noisy engines
//!   too, which is exactly what this seed measures against.
//! * **multi-kernel conv2d** — the frozen seed path run once per kernel;
//!   the live path tiles each input once and shares every tile's signal
//!   spectrum across the whole kernel set.
//! * **batched inference** — the current engines driven *without* the
//!   prepared-kernel fast path and without cross-image parallelism (the
//!   pre-engine execution structure), via a prepare-hiding adapter.
//!
//! With `--stages`, the report additionally carries a per-scenario,
//! per-backend wall-clock breakdown of one prepared correlation (signal
//! FFT, spectrum apply, inverse lens, DAC/ADC conditioning) under a
//! `stages` key — one row per scenario/backend pair, each measured under
//! that scenario's tile geometry.

pub mod seed;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pf_nn::models::small::SmallCnn;
use pf_nn::Tensor;
use pf_tiling::Conv1dEngine;
use photofourier::prelude::*;
use photofourier::PfError;
use serde::{Deserialize, Serialize};

/// Schema identifier written into the report.
///
/// `throughput-v2` extends v1 with the `threads` scaling-curve section and
/// the `host_threads_configured` / `host_cores` host metadata (see
/// [`ThreadScaling`] and [`PerfReport`]).
pub const SCHEMA: &str = "pf-bench/throughput-v2";

/// One measured scenario/backend combination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfRecord {
    /// Scenario name, e.g. `conv2d_batch` or `resnet18_batch_infer`.
    pub scenario: String,
    /// Backend registry name (`digital`, `jtc_ideal`, `photofourier_cg`).
    pub backend: String,
    /// Images per batch.
    pub batch: usize,
    /// Timing repetitions (the best repetition is reported).
    pub reps: usize,
    /// Measured engine throughput in images per second.
    pub images_per_s: f64,
    /// Mean microseconds per 1D convolution on the engine path.
    pub us_per_conv: f64,
    /// 1D convolutions needed per image.
    pub convs_per_image: usize,
    /// Throughput of the seed reference path in images per second.
    pub seed_images_per_s: f64,
    /// `images_per_s / seed_images_per_s` — the host-independent metric the
    /// CI bench gate tracks.
    pub speedup_vs_seed: f64,
}

/// Wall-clock share of one prepared correlation for one scenario/backend
/// pair, by pipeline stage (the `--stages` breakdown). Stages that a
/// backend does not have (the digital dot product has no optics chain)
/// report zero and the whole correlation lands in `other_us`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageRecord {
    /// Scenario whose tile geometry this row was measured under
    /// (`conv2d_batch` or `resnet18_batch_infer`).
    pub scenario: String,
    /// Backend registry name.
    pub backend: String,
    /// Accumulated microseconds in the signal's first-lens FFT.
    pub signal_fft_us: f64,
    /// Accumulated microseconds adding the kernel spectrum and building the
    /// square-law intensity.
    pub spectrum_apply_us: f64,
    /// Accumulated microseconds in the second (inverse) lens transform and
    /// lobe extraction.
    pub inverse_us: f64,
    /// Accumulated microseconds in mixed-signal conditioning: DAC
    /// quantisation, rescaling, sensing noise, ADC quantisation.
    pub dac_adc_us: f64,
    /// Time outside the staged optics chain (for the digital backend: the
    /// whole direct convolution).
    pub other_us: f64,
    /// Fraction of the total spent in the signal FFT.
    pub signal_fft_share: f64,
    /// Fraction of the total spent applying the kernel spectrum.
    pub spectrum_apply_share: f64,
    /// Fraction of the total spent in the inverse transform.
    pub inverse_share: f64,
    /// Fraction of the total spent in DAC/ADC conditioning.
    pub dac_adc_share: f64,
}

/// One point of a thread-scaling curve: one scenario/backend pair measured
/// under a scoped rayon pool of `threads` workers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadScalingRecord {
    /// Scenario name, e.g. `conv2d_batch` or `resnet18_batch_infer`.
    pub scenario: String,
    /// Backend registry name.
    pub backend: String,
    /// Scoped pool width this point was measured under.
    pub threads: usize,
    /// The parallelism grain the batch actually ran at under this pool
    /// width (`auto` sessions resolve per point: `image` when the batch
    /// fills the pool, `tile` otherwise).
    pub grain: String,
    /// Measured engine throughput in images per second.
    pub images_per_s: f64,
    /// Throughput relative to the 1-thread point of the same curve — the
    /// cores-vs-throughput metric the scaling gate checks.
    pub speedup_vs_1: f64,
    /// `speedup_vs_1 / threads`: 1.0 is perfect linear scaling.
    pub efficiency: f64,
}

/// The `threads` section of a throughput-v2 report: scaling curves over a
/// set of scoped pool widths.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadScaling {
    /// Pool widths swept (always includes 1, the curve's reference point).
    pub counts: Vec<usize>,
    /// The session-level grain the sweep was requested with (`auto`,
    /// `image` or `tile`); per-point resolution is in each record.
    pub grain: String,
    /// One record per (scenario, backend, pool width).
    pub curve: Vec<ThreadScalingRecord>,
}

/// The full report serialised to `BENCH_throughput.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Schema identifier ([`SCHEMA`]).
    pub schema: String,
    /// `smoke` (CI) or `full`.
    pub mode: String,
    /// Worker threads rayon-style dispatch actually uses for this run: the
    /// pool size configured through `--threads` /
    /// `rayon::ThreadPoolBuilder`, or the host's available core count.
    pub host_threads: usize,
    /// The pool size `--threads` *asked for*; `0` when no override was
    /// requested. Recording both sides makes a silently-ignored override
    /// visible: `host_threads` is what dispatch really used.
    pub host_threads_configured: usize,
    /// Physical cores available to the process
    /// (`std::thread::available_parallelism`). Pool widths beyond this are
    /// concurrency without parallelism — the scaling gate skips floors it
    /// cannot measure honestly (see [`check_scaling_against_baseline`]).
    pub host_cores: usize,
    /// Measured records.
    pub results: Vec<PerfRecord>,
    /// Thread-scaling curves; present when the harness ran with
    /// `--threads-sweep`.
    pub threads: Option<ThreadScaling>,
    /// Per-scenario, per-backend stage breakdown; present when the harness
    /// ran with `--stages`.
    pub stages: Option<Vec<StageRecord>>,
}

/// Expected floor for one scenario/backend pair, committed in
/// `benches/baseline.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineEntry {
    /// Scenario name to match.
    pub scenario: String,
    /// Backend registry name to match.
    pub backend: String,
    /// Committed `speedup_vs_seed` floor for this combination.
    pub min_speedup_vs_seed: f64,
}

/// Committed parallel-efficiency floor for one point of a thread-scaling
/// curve: at `threads` workers, the scenario/backend pair must reach at
/// least `min_speedup_vs_1` over its own 1-thread throughput.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingBaselineEntry {
    /// Scenario name to match.
    pub scenario: String,
    /// Backend registry name to match.
    pub backend: String,
    /// Pool width the floor applies at.
    pub threads: usize,
    /// Committed `speedup_vs_1` floor at that width.
    pub min_speedup_vs_1: f64,
}

/// The committed baseline file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Baseline {
    /// Per-scenario floors.
    pub entries: Vec<BaselineEntry>,
    /// Thread-scaling floors, checked by
    /// [`check_scaling_against_baseline`] when the report carries a
    /// `threads` section. Optional so pre-v2 baseline files still load.
    pub scaling: Option<Vec<ScalingBaselineEntry>>,
}

/// Compares a report against the committed baseline.
///
/// A record regresses when its measured `speedup_vs_seed` falls more than
/// `tolerance` (e.g. `0.30` = 30%) below the committed floor; a baseline
/// entry with no matching record is also a failure. Returns human-readable
/// failure descriptions (empty = gate passes).
pub fn check_against_baseline(
    report: &PerfReport,
    baseline: &Baseline,
    tolerance: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for entry in &baseline.entries {
        let Some(record) = report
            .results
            .iter()
            .find(|r| r.scenario == entry.scenario && r.backend == entry.backend)
        else {
            failures.push(format!(
                "baseline entry {}/{} has no measured record",
                entry.scenario, entry.backend
            ));
            continue;
        };
        let floor = entry.min_speedup_vs_seed * (1.0 - tolerance);
        if record.speedup_vs_seed < floor {
            failures.push(format!(
                "{}/{}: speedup_vs_seed {:.2} fell below {:.2} (committed {:.2} - {:.0}% tolerance)",
                entry.scenario,
                entry.backend,
                record.speedup_vs_seed,
                floor,
                entry.min_speedup_vs_seed,
                tolerance * 100.0
            ));
        }
    }
    failures
}

/// Checks a report's thread-scaling curve against the baseline's `scaling`
/// floors. Returns `(failures, skipped)`:
///
/// * a floor whose pool width exceeds the report's `host_cores` is
///   **skipped**, not failed — a 1-core host can time a 4-wide pool but
///   cannot honestly measure parallel speedup on it, so the floor belongs
///   to a wider runner (CI's `scaling-smoke` job);
/// * a checkable floor with no matching curve record, and a record below
///   its floor, are **failures**.
///
/// Reports without a `threads` section (the sweep did not run) skip every
/// floor with a single note.
pub fn check_scaling_against_baseline(
    report: &PerfReport,
    baseline: &Baseline,
) -> (Vec<String>, Vec<String>) {
    let mut failures = Vec::new();
    let mut skipped = Vec::new();
    let Some(floors) = &baseline.scaling else {
        return (failures, skipped);
    };
    let Some(threads) = &report.threads else {
        if !floors.is_empty() {
            skipped.push(format!(
                "report has no `threads` section — {} scaling floor(s) unchecked (run with --threads-sweep)",
                floors.len()
            ));
        }
        return (failures, skipped);
    };
    for entry in floors {
        if entry.threads > report.host_cores {
            skipped.push(format!(
                "{}/{} @ {}T: host has {} core(s) — floor needs a wider runner",
                entry.scenario, entry.backend, entry.threads, report.host_cores
            ));
            continue;
        }
        let Some(record) = threads.curve.iter().find(|r| {
            r.scenario == entry.scenario && r.backend == entry.backend && r.threads == entry.threads
        }) else {
            failures.push(format!(
                "scaling floor {}/{} @ {}T has no measured curve point",
                entry.scenario, entry.backend, entry.threads
            ));
            continue;
        };
        if record.speedup_vs_1 < entry.min_speedup_vs_1 {
            failures.push(format!(
                "{}/{} @ {}T: speedup_vs_1 {:.2} fell below committed floor {:.2}",
                entry.scenario,
                entry.backend,
                entry.threads,
                record.speedup_vs_1,
                entry.min_speedup_vs_1
            ));
        }
    }
    (failures, skipped)
}

/// Times `f` `reps` times and returns the best (minimum) duration — the
/// standard way to suppress scheduler noise on shared CI hosts.
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed());
    }
    best
}

/// Engine adapter that hides the prepared-kernel fast path, reproducing the
/// seed execution structure (per-tile joint FFT, no spectrum reuse) on the
/// current backend.
#[derive(Debug)]
struct NoPrep<E>(E);

impl<E: Conv1dEngine> Conv1dEngine for NoPrep<E> {
    fn correlate_valid(&self, signal: &[f64], kernel: &[f64]) -> Vec<f64> {
        self.0.correlate_valid(signal, kernel)
    }

    fn max_signal_len(&self) -> Option<usize> {
        self.0.max_signal_len()
    }

    fn is_deterministic(&self) -> bool {
        self.0.is_deterministic()
    }
    // prepare_kernel deliberately left at the `None` default.
}

/// Engine adapter counting 1D convolution calls (used once per scenario to
/// establish `convs_per_image`; the prepared path is hidden so every
/// convolution goes through the counted method).
#[derive(Debug)]
struct Counting<E> {
    inner: E,
    calls: Arc<AtomicUsize>,
}

impl<E: Conv1dEngine> Conv1dEngine for Counting<E> {
    fn correlate_valid(&self, signal: &[f64], kernel: &[f64]) -> Vec<f64> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.inner.correlate_valid(signal, kernel)
    }

    fn max_signal_len(&self) -> Option<usize> {
        self.inner.max_signal_len()
    }

    fn is_deterministic(&self) -> bool {
        self.inner.is_deterministic()
    }
}

fn backend_scenario(kind: BackendKind) -> Scenario {
    Scenario::new(
        format!("perf_{kind}"),
        "resnet18",
        BackendSpec {
            kind,
            capacity: 256,
        },
    )
}

fn conv2d_inputs(batch: usize, size: usize) -> Vec<Matrix> {
    (0..batch)
        .map(|b| {
            Matrix::new(
                size,
                size,
                (0..size * size)
                    .map(|i| ((i + 13 * b) as f64 * 0.17).sin() + 0.4)
                    .collect(),
            )
            .expect("well-formed perf input")
        })
        .collect()
}

fn conv2d_kernel() -> Matrix {
    Matrix::new(3, 3, (0..9).map(|i| (i as f64 - 4.0) / 9.0).collect()).expect("3x3 kernel")
}

/// Runs the batched-conv2d scenario on one backend.
///
/// # Errors
///
/// Propagates session construction and convolution errors.
pub fn conv2d_scenario(
    kind: BackendKind,
    batch: usize,
    reps: usize,
    size: usize,
) -> Result<PerfRecord, PfError> {
    let session = Session::from_scenario(backend_scenario(kind))?;
    let inputs = conv2d_inputs(batch, size);
    let kernel = conv2d_kernel();

    // Engine path: prepared kernels + (on multicore hosts) parallel tiles
    // and images. Warm the prepared-kernel cache once so the timing
    // measures the steady state a batch pipeline runs in.
    let _ = session.conv2d(&inputs[0], &kernel)?;
    let (_, stats) = session.conv2d_with_stats(&inputs[0], &kernel)?;
    let engine_time = best_of(reps, || {
        session
            .conv2d_batch(&inputs, &kernel)
            .expect("perf conv2d batch");
    });

    // Seed path.
    let seed_time = match kind {
        BackendKind::JtcIdeal => {
            let jtc = seed::SeedJtc::new(256);
            best_of(reps, || {
                for input in &inputs {
                    let _ =
                        seed::seed_conv2d_valid(&seed::SeedEngine::Jtc(&jtc), input, &kernel, 256);
                }
            })
        }
        BackendKind::Digital => best_of(reps, || {
            for input in &inputs {
                let _ = seed::seed_conv2d_valid(&seed::SeedEngine::Digital, input, &kernel, 256);
            }
        }),
        // The frozen seed CG chain: seed optics, unprepared per-call
        // DAC/noise/ADC, serial tiling — the structure the live path ran
        // before prepared kernels were extended to noisy engines.
        BackendKind::PhotofourierCg => {
            let cg = parking_lot::Mutex::new(seed::SeedCg::new(256));
            best_of(reps, || {
                for input in &inputs {
                    let _ =
                        seed::seed_conv2d_valid(&seed::SeedEngine::Cg(&cg), input, &kernel, 256);
                }
            })
        }
    };

    let images_per_s = batch as f64 / engine_time.as_secs_f64().max(1e-12);
    let seed_images_per_s = batch as f64 / seed_time.as_secs_f64().max(1e-12);
    Ok(PerfRecord {
        scenario: "conv2d_batch".to_string(),
        backend: kind.name().to_string(),
        batch,
        reps,
        images_per_s,
        us_per_conv: engine_time.as_secs_f64() * 1e6 / (stats.convs_1d * batch).max(1) as f64,
        convs_per_image: stats.convs_1d,
        seed_images_per_s,
        speedup_vs_seed: images_per_s / seed_images_per_s.max(1e-12),
    })
}

/// Runs the multi-kernel conv2d scenario on one backend: every image of
/// the batch is correlated against `n_kernels` distinct kernels through
/// [`Session::conv2d_multi`], which tiles each input once and shares each
/// tile's signal spectrum across the whole kernel set. The seed path runs
/// the frozen per-kernel seed convolution `n_kernels` times per image.
///
/// # Errors
///
/// Propagates session construction and convolution errors.
pub fn conv2d_multikernel_scenario(
    kind: BackendKind,
    batch: usize,
    reps: usize,
    size: usize,
    n_kernels: usize,
) -> Result<PerfRecord, PfError> {
    let session = Session::from_scenario(backend_scenario(kind))?;
    let inputs = conv2d_inputs(batch, size);
    let kernels: Vec<Matrix> = (0..n_kernels)
        .map(|k| {
            Matrix::new(
                3,
                3,
                (0..9)
                    .map(|i| ((i + 2 * k) as f64 - 4.0) / (9.0 + k as f64))
                    .collect(),
            )
            .expect("3x3 kernel")
        })
        .collect();

    // Warm the prepared-kernel cache, then time the steady state.
    let _ = session.conv2d_multi(&inputs[0], &kernels)?;
    let (_, stats) = session.conv2d_multi_with_stats(&inputs[0], &kernels)?;
    let engine_time = best_of(reps, || {
        for input in &inputs {
            let _ = session
                .conv2d_multi(input, &kernels)
                .expect("perf conv2d multi");
        }
    });

    // Seed path: the frozen per-kernel seed convolution, once per kernel.
    let seed_time = match kind {
        BackendKind::JtcIdeal => {
            let jtc = seed::SeedJtc::new(256);
            best_of(reps, || {
                for input in &inputs {
                    for kernel in &kernels {
                        let _ = seed::seed_conv2d_valid(
                            &seed::SeedEngine::Jtc(&jtc),
                            input,
                            kernel,
                            256,
                        );
                    }
                }
            })
        }
        BackendKind::Digital => best_of(reps, || {
            for input in &inputs {
                for kernel in &kernels {
                    let _ = seed::seed_conv2d_valid(&seed::SeedEngine::Digital, input, kernel, 256);
                }
            }
        }),
        BackendKind::PhotofourierCg => {
            let cg = parking_lot::Mutex::new(seed::SeedCg::new(256));
            best_of(reps, || {
                for input in &inputs {
                    for kernel in &kernels {
                        let _ =
                            seed::seed_conv2d_valid(&seed::SeedEngine::Cg(&cg), input, kernel, 256);
                    }
                }
            })
        }
    };

    let images_per_s = batch as f64 / engine_time.as_secs_f64().max(1e-12);
    let seed_images_per_s = batch as f64 / seed_time.as_secs_f64().max(1e-12);
    Ok(PerfRecord {
        scenario: "conv2d_multikernel".to_string(),
        backend: kind.name().to_string(),
        batch,
        reps,
        images_per_s,
        us_per_conv: engine_time.as_secs_f64() * 1e6 / (stats.convs_1d * batch).max(1) as f64,
        convs_per_image: stats.convs_1d,
        seed_images_per_s,
        speedup_vs_seed: images_per_s / seed_images_per_s.max(1e-12),
    })
}

/// Runs the batched-inference scenario (the ResNet-18-shaped session
/// configuration: 256-waveguide backend, the scenario's feature-extractor
/// CNN) on one backend.
///
/// # Errors
///
/// Propagates session construction and inference errors.
pub fn inference_scenario(
    kind: BackendKind,
    batch: usize,
    reps: usize,
) -> Result<PerfRecord, PfError> {
    let scenario = backend_scenario(kind);
    let session = Session::from_scenario(scenario.clone())?;
    let images: Vec<Tensor> = (0..batch)
        .map(|i| {
            Tensor::random(
                vec![
                    scenario.functional.input_channels,
                    scenario.functional.input_size,
                    scenario.functional.input_size,
                ],
                0.0,
                1.0,
                1000 + i as u64,
            )
        })
        .collect();

    // Engine path: batched, prepared kernels shared across the batch.
    let _ = session.run_batch(&images[..1])?; // warm the prepared cache
    let engine_time = best_of(reps, || {
        session.run_batch(&images).expect("perf batch inference");
    });

    // Seed path: per-image serial execution without the prepared fast path.
    let cnn = SmallCnn::new(
        scenario.functional.input_channels,
        scenario.functional.input_size,
        scenario.functional.weight_seed,
    )?;
    let seed_exec = pf_nn::executor::TiledExecutor::new(
        NoPrep(scenario.backend.instantiate()?),
        scenario.backend.capacity,
        scenario.pipeline,
    )?;
    let seed_time = best_of(reps, || {
        for image in &images {
            let _ = cnn
                .features(image, &seed_exec)
                .expect("perf seed inference");
        }
    });

    // Conv count per image, via a counting engine (prepared path hidden so
    // every 1D convolution goes through the counted call).
    let calls = Arc::new(AtomicUsize::new(0));
    let counting = Counting {
        inner: scenario.backend.instantiate()?,
        calls: Arc::clone(&calls),
    };
    let count_exec = pf_nn::executor::TiledExecutor::new(
        counting,
        scenario.backend.capacity,
        scenario.pipeline,
    )?;
    let _ = cnn.features(&images[0], &count_exec)?;
    let convs_per_image = calls.load(Ordering::Relaxed);

    let images_per_s = batch as f64 / engine_time.as_secs_f64().max(1e-12);
    let seed_images_per_s = batch as f64 / seed_time.as_secs_f64().max(1e-12);
    Ok(PerfRecord {
        scenario: "resnet18_batch_infer".to_string(),
        backend: kind.name().to_string(),
        batch,
        reps,
        images_per_s,
        us_per_conv: engine_time.as_secs_f64() * 1e6 / (convs_per_image * batch).max(1) as f64,
        convs_per_image,
        seed_images_per_s,
        speedup_vs_seed: images_per_s / seed_images_per_s.max(1e-12),
    })
}

/// Physical cores available to the process (1 if the host will not say).
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Builds a scoped rayon pool of exactly `threads` workers (see the
/// vendored `rayon::ThreadPool`: `install` overrides the advertised pool
/// width for the closure's dispatch decisions).
fn scoped_pool(threads: usize) -> Result<rayon::ThreadPool, PfError> {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .map_err(|e| PfError::invalid_scenario(format!("scoped thread pool: {e}")))
}

/// Normalises a requested sweep into the measured pool widths: positive,
/// sorted, deduplicated, and always containing 1 — the curve's reference
/// point, without which `speedup_vs_1` has no denominator.
fn sweep_widths(counts: &[usize]) -> Vec<usize> {
    let mut widths: Vec<usize> = counts.iter().copied().filter(|&n| n > 0).collect();
    widths.push(1);
    widths.sort_unstable();
    widths.dedup();
    widths
}

/// Measures the thread-scaling curves: every smoke scenario/backend pair is
/// timed under a scoped rayon pool at each requested width, and each
/// curve's throughput is normalised to its own 1-thread point.
///
/// One session per scenario is built up front (prepared-kernel caches warm
/// once and are shared across the whole curve), so the only thing that
/// varies between points is the advertised pool width — which is exactly
/// what the parallel dispatch heuristics key on. The per-point `grain`
/// field records how the session actually resolved its [`ParallelGrain`]
/// under that width (stochastic conv2d batches pin to `serial`: determinism
/// forbids parallel dispatch there regardless of grain).
///
/// On a host with fewer cores than a requested width the point is still
/// measured — the scoped pool advertises the width and dispatch follows it
/// — but the speedup cannot exceed ~1.0; [`check_scaling_against_baseline`]
/// core-gates its floors for exactly this reason.
///
/// # Errors
///
/// Propagates session construction and execution errors.
pub fn thread_scaling(
    smoke: bool,
    counts: &[usize],
    grain: ParallelGrain,
) -> Result<ThreadScaling, PfError> {
    let (conv_batch, conv_reps) = if smoke { (8, 3) } else { (32, 5) };
    let (infer_batch, infer_reps) = if smoke { (4, 2) } else { (16, 3) };
    let widths = sweep_widths(counts);
    let mut curve = Vec::new();

    // conv2d_batch on every backend.
    for kind in [
        BackendKind::Digital,
        BackendKind::JtcIdeal,
        BackendKind::PhotofourierCg,
    ] {
        let session = Session::with_grain(backend_scenario(kind), grain)?;
        let inputs = conv2d_inputs(conv_batch, 32);
        let kernel = conv2d_kernel();
        let _ = session.conv2d(&inputs[0], &kernel)?; // warm the prepared cache
        let mut base = 0.0;
        for &threads in &widths {
            let pool = scoped_pool(threads)?;
            let elapsed = pool.install(|| {
                best_of(conv_reps, || {
                    session
                        .conv2d_batch(&inputs, &kernel)
                        .expect("scaling conv2d batch");
                })
            });
            let point_grain = if session.is_stochastic() {
                "serial".to_string()
            } else {
                pool.install(|| session.effective_grain(conv_batch))
                    .name()
                    .to_string()
            };
            let images_per_s = conv_batch as f64 / elapsed.as_secs_f64().max(1e-12);
            if threads == 1 {
                base = images_per_s;
            }
            let speedup_vs_1 = images_per_s / base.max(1e-12);
            curve.push(ThreadScalingRecord {
                scenario: "conv2d_batch".to_string(),
                backend: kind.name().to_string(),
                threads,
                grain: point_grain,
                images_per_s,
                speedup_vs_1,
                efficiency: speedup_vs_1 / threads as f64,
            });
        }
    }

    // Batched inference on the ideal JTC (the serving-tier hot path).
    {
        let scenario = backend_scenario(BackendKind::JtcIdeal);
        let session = Session::with_grain(scenario.clone(), grain)?;
        let images: Vec<Tensor> = (0..infer_batch)
            .map(|i| {
                Tensor::random(
                    vec![
                        scenario.functional.input_channels,
                        scenario.functional.input_size,
                        scenario.functional.input_size,
                    ],
                    0.0,
                    1.0,
                    1000 + i as u64,
                )
            })
            .collect();
        let _ = session.run_batch(&images[..1])?; // warm the prepared cache
        let mut base = 0.0;
        for &threads in &widths {
            let pool = scoped_pool(threads)?;
            let elapsed = pool.install(|| {
                best_of(infer_reps, || {
                    session.run_batch(&images).expect("scaling batch inference");
                })
            });
            let point_grain = pool
                .install(|| session.effective_grain(infer_batch))
                .name()
                .to_string();
            let images_per_s = infer_batch as f64 / elapsed.as_secs_f64().max(1e-12);
            if threads == 1 {
                base = images_per_s;
            }
            let speedup_vs_1 = images_per_s / base.max(1e-12);
            curve.push(ThreadScalingRecord {
                scenario: "resnet18_batch_infer".to_string(),
                backend: BackendKind::JtcIdeal.name().to_string(),
                threads,
                grain: point_grain,
                images_per_s,
                speedup_vs_1,
                efficiency: speedup_vs_1 / threads as f64,
            });
        }
    }

    Ok(ThreadScaling {
        counts: widths,
        grain: grain.name().to_string(),
        curve,
    })
}

/// Renders the report as a GitHub-flavoured markdown summary (the
/// `$GITHUB_STEP_SUMMARY` payload of the CI bench jobs): the throughput
/// table with committed-floor deltas, and the thread-scaling curves when
/// the sweep ran.
pub fn markdown_summary(report: &PerfReport, baseline: Option<&Baseline>) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "## pf-bench throughput ({} mode, schema `{}`)\n",
        report.mode, report.schema
    );
    let _ = writeln!(
        out,
        "Host: {} core(s); dispatch pool {} thread(s){}.\n",
        report.host_cores,
        report.host_threads,
        if report.host_threads_configured > 0 {
            format!(" (configured {})", report.host_threads_configured)
        } else {
            String::new()
        }
    );

    let _ = writeln!(
        out,
        "| scenario | backend | batch | images/s | speedup vs seed | committed floor | delta |"
    );
    let _ = writeln!(out, "|---|---|--:|--:|--:|--:|--:|");
    for record in &report.results {
        let floor = baseline.and_then(|b| {
            b.entries
                .iter()
                .find(|e| e.scenario == record.scenario && e.backend == record.backend)
                .map(|e| e.min_speedup_vs_seed)
        });
        let (floor_cell, delta_cell) = match floor {
            Some(floor) => (
                format!("{floor:.2}"),
                format!("{:+.2}", record.speedup_vs_seed - floor),
            ),
            None => ("—".to_string(), "—".to_string()),
        };
        let _ = writeln!(
            out,
            "| {} | {} | {} | {:.1} | {:.2} | {} | {} |",
            record.scenario,
            record.backend,
            record.batch,
            record.images_per_s,
            record.speedup_vs_seed,
            floor_cell,
            delta_cell
        );
    }

    if let Some(stages) = &report.stages {
        let _ = writeln!(out, "\n### Stage breakdown (per prepared correlation)\n");
        let _ = writeln!(
            out,
            "| scenario | backend | signal FFT | spectrum apply | inverse | DAC/ADC | other µs |"
        );
        let _ = writeln!(out, "|---|---|--:|--:|--:|--:|--:|");
        for s in stages {
            let _ = writeln!(
                out,
                "| {} | {} | {:.1}% | {:.1}% | {:.1}% | {:.1}% | {:.1} |",
                s.scenario,
                s.backend,
                s.signal_fft_share * 100.0,
                s.spectrum_apply_share * 100.0,
                s.inverse_share * 100.0,
                s.dac_adc_share * 100.0,
                s.other_us
            );
        }
    }

    if let Some(threads) = &report.threads {
        let _ = writeln!(
            out,
            "\n### Thread scaling (requested grain: `{}`)\n",
            threads.grain
        );
        let _ = writeln!(
            out,
            "| scenario | backend | threads | grain | images/s | speedup vs 1T | efficiency |"
        );
        let _ = writeln!(out, "|---|---|--:|---|--:|--:|--:|");
        for record in &threads.curve {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {:.1} | {:.2} | {:.2} |",
                record.scenario,
                record.backend,
                record.threads,
                record.grain,
                record.images_per_s,
                record.speedup_vs_1,
                record.efficiency
            );
        }
        if let Some(baseline) = baseline {
            let (failures, skipped) = check_scaling_against_baseline(report, baseline);
            for note in &skipped {
                let _ = writeln!(out, "\n> skipped: {note}");
            }
            for failure in &failures {
                let _ = writeln!(out, "\n> **FAIL**: {failure}");
            }
        }
    }
    out
}

/// Collects the stage breakdown per scenario and backend. Each scenario
/// contributes one row per backend, measured under that scenario's tile
/// geometry against a full 256-waveguide tile:
///
/// * `conv2d_batch` — 32×32 input, 3×3 kernel → 67-sample tiled kernel;
/// * `resnet18_batch_infer` — the functional scenario's 16×16 feature
///   maps, 3×3 kernel → 35-sample tiled kernel (a tighter joint plane,
///   so its FFT sizes differ from the conv2d rows).
///
/// # Errors
///
/// Propagates engine construction and correlation errors.
pub fn stage_breakdown(smoke: bool) -> Result<Vec<StageRecord>, PfError> {
    use pf_jtc::{JtcEngine, JtcEngineConfig, StageTimes};
    use pf_telemetry::Telemetry;
    use pf_tiling::PreparedConv1d;

    let iters = if smoke { 64 } else { 512 };
    let signal: Vec<f64> = (0..256).map(|i| (i as f64 * 0.17).sin() + 0.4).collect();
    let us = |d: Duration| d.as_secs_f64() * 1e6;

    let mut records = Vec::new();
    for (scenario, size) in [("conv2d_batch", 32usize), ("resnet18_batch_infer", 16)] {
        let kernel2d = conv2d_kernel();
        let tiled_kernel = pf_tiling::tile_kernel(&kernel2d, size, 2 * size + 3);

        // Digital: no optics chain — the whole prepared (sparse,
        // structural zeros skipped) convolution is "other", matching what
        // the shipped digital hot path actually runs.
        let digital_prep = pf_tiling::DigitalEngine
            .prepare_kernel(&tiled_kernel, signal.len())
            .expect("digital engine prepares sparse kernels");
        let start = Instant::now();
        for _ in 0..iters {
            let _ = digital_prep.correlate_valid(&signal);
        }
        records.push(StageRecord {
            scenario: scenario.to_string(),
            backend: BackendKind::Digital.name().to_string(),
            signal_fft_us: 0.0,
            spectrum_apply_us: 0.0,
            inverse_us: 0.0,
            dac_adc_us: 0.0,
            other_us: us(start.elapsed()),
            signal_fft_share: 0.0,
            spectrum_apply_share: 0.0,
            inverse_share: 0.0,
            dac_adc_share: 0.0,
        });

        for kind in [BackendKind::JtcIdeal, BackendKind::PhotofourierCg] {
            let config = match kind {
                BackendKind::JtcIdeal => JtcEngineConfig::ideal(256),
                BackendKind::PhotofourierCg => JtcEngineConfig::photofourier_cg(256),
                BackendKind::Digital => unreachable!("digital handled above"),
            };
            let engine = JtcEngine::new(config)?;
            let prep = engine.prepare(&tiled_kernel, 256)?;
            // Single source of truth: the traced hot path accumulates into
            // the telemetry stage registry and the breakdown is *derived*
            // from those totals, so this harness reports exactly what the
            // serving stack's stage counters see (no second set of books).
            let tel = Telemetry::with_span_capacity(0);
            for _ in 0..iters {
                let _ = prep.correlate_valid_traced(&signal, &tel);
            }
            let times = StageTimes::from_totals(&tel.stage_totals());
            let total = times.total().as_secs_f64().max(1e-12);
            records.push(StageRecord {
                scenario: scenario.to_string(),
                backend: kind.name().to_string(),
                signal_fft_us: us(times.signal_fft),
                spectrum_apply_us: us(times.spectrum_apply),
                inverse_us: us(times.inverse),
                dac_adc_us: us(times.dac_adc),
                other_us: 0.0,
                signal_fft_share: times.signal_fft.as_secs_f64() / total,
                spectrum_apply_share: times.spectrum_apply.as_secs_f64() / total,
                inverse_share: times.inverse.as_secs_f64() / total,
                dac_adc_share: times.dac_adc.as_secs_f64() / total,
            });
        }
    }
    Ok(records)
}

/// Runs the full scenario matrix for one mode, optionally collecting the
/// per-backend stage breakdown.
///
/// # Errors
///
/// Propagates the first scenario error.
pub fn run_suite(smoke: bool, with_stages: bool) -> Result<PerfReport, PfError> {
    let mode = if smoke { "smoke" } else { "full" };
    let (conv_batch, conv_reps) = if smoke { (8, 3) } else { (32, 5) };
    let (infer_batch, infer_reps) = if smoke { (4, 2) } else { (16, 3) };
    let multi_kernels = 8;

    let mut results = vec![
        conv2d_scenario(BackendKind::Digital, conv_batch, conv_reps, 32)?,
        conv2d_scenario(BackendKind::JtcIdeal, conv_batch, conv_reps, 32)?,
        conv2d_scenario(BackendKind::PhotofourierCg, conv_batch, conv_reps, 32)?,
        conv2d_multikernel_scenario(
            BackendKind::JtcIdeal,
            conv_batch,
            conv_reps,
            32,
            multi_kernels,
        )?,
        inference_scenario(BackendKind::JtcIdeal, infer_batch, infer_reps)?,
    ];
    if !smoke {
        results.push(inference_scenario(
            BackendKind::Digital,
            infer_batch,
            infer_reps,
        )?);
        results.push(inference_scenario(
            BackendKind::PhotofourierCg,
            infer_batch,
            infer_reps,
        )?);
    }

    let stages = if with_stages {
        Some(stage_breakdown(smoke)?)
    } else {
        None
    };

    Ok(PerfReport {
        schema: SCHEMA.to_string(),
        mode: mode.to_string(),
        // The pool size parallel dispatch really uses — honours a
        // `ThreadPoolBuilder` override instead of assuming one worker per
        // available core.
        host_threads: rayon::current_num_threads(),
        // The bin patches in the `--threads` request (0 = no override) and
        // the `--threads-sweep` curves after the suite runs.
        host_threads_configured: 0,
        host_cores: host_cores(),
        results,
        threads: None,
        stages,
    })
}

/// The CI telemetry-overhead budget: an enabled handle may cost at most
/// this fraction of wall time over the disabled path on the smoke
/// inference workload (`perf --overhead-check` gates on it).
pub const OVERHEAD_BUDGET: f64 = 0.03;

/// Result of the telemetry-overhead measurement ([`telemetry_overhead`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadReport {
    /// Best-of wall time of one batched inference, telemetry disabled.
    pub disabled_s: f64,
    /// Best-of wall time of the same batch under an enabled handle
    /// (metrics + stage counters + span ring all live).
    pub enabled_s: f64,
    /// `enabled_s / disabled_s - 1` (negative = within noise).
    pub overhead_frac: f64,
}

/// Measures the wall-time cost of running the batched JTC-ideal inference
/// workload under an *enabled* telemetry handle versus a disabled one —
/// the staged correlation path is where the per-conv stage counters live,
/// so this is the worst-case hot-loop overhead. The two sessions share the
/// process and the measurement interleaves their repetitions (disabled,
/// enabled, disabled, ...), taking best-of on each side, so frequency
/// drift and cache state hit both paths alike.
///
/// # Errors
///
/// Propagates session construction and inference errors.
pub fn telemetry_overhead(smoke: bool) -> Result<OverheadReport, PfError> {
    let (batch, reps) = if smoke { (4, 24) } else { (8, 48) };
    let scenario = backend_scenario(BackendKind::JtcIdeal);
    let plain = Session::from_scenario(scenario.clone())?;
    let traced = Session::builder()
        .scenario(scenario.clone())
        .telemetry(Telemetry::enabled())
        .build()?;
    let images: Vec<Tensor> = (0..batch)
        .map(|i| {
            Tensor::random(
                vec![
                    scenario.functional.input_channels,
                    scenario.functional.input_size,
                    scenario.functional.input_size,
                ],
                0.0,
                1.0,
                2000 + i as u64,
            )
        })
        .collect();
    // Warm both prepared-kernel caches outside the timed region.
    let _ = plain.run_batch(&images[..1])?;
    let _ = traced.run_batch(&images[..1])?;

    let mut disabled_s = f64::INFINITY;
    let mut enabled_s = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        plain.run_batch(&images)?;
        disabled_s = disabled_s.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        traced.run_batch(&images)?;
        enabled_s = enabled_s.min(start.elapsed().as_secs_f64());
    }
    Ok(OverheadReport {
        disabled_s,
        enabled_s,
        overhead_frac: enabled_s / disabled_s.max(1e-12) - 1.0,
    })
}

/// Runs one batched inference per backend under `tel`, each wrapped in a
/// `bench` root span with a `run_batch` child whose interval is attributed
/// across the four JTC stages from the registry's stage-counter deltas
/// (see [`photofourier::serve::staged_span`]) — the workload behind
/// `perf --trace`.
///
/// # Errors
///
/// Propagates session construction and inference errors.
pub fn traced_run(smoke: bool, tel: &Telemetry) -> Result<(), PfError> {
    let batch = if smoke { 4 } else { 8 };
    for kind in BackendKind::ALL {
        let scenario = backend_scenario(kind);
        let session = Session::builder()
            .scenario(scenario.clone())
            .telemetry(tel.clone())
            .build()?;
        let images: Vec<Tensor> = (0..batch)
            .map(|i| {
                Tensor::random(
                    vec![
                        scenario.functional.input_channels,
                        scenario.functional.input_size,
                        scenario.functional.input_size,
                    ],
                    0.0,
                    1.0,
                    3000 + i as u64,
                )
            })
            .collect();
        let _ = session.run_batch(&images[..1])?; // warm outside the spans
        let root = tel.span(kind.name(), "bench");
        photofourier::serve::staged_span(tel, "run_batch", root.id(), || {
            session.run_batch(&images)
        })?;
    }
    photofourier::mirror_scratch_gauges(tel);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_report(host_cores: usize, threads: Option<ThreadScaling>) -> PerfReport {
        PerfReport {
            schema: SCHEMA.to_string(),
            mode: "smoke".to_string(),
            host_threads: host_cores,
            host_threads_configured: 0,
            host_cores,
            results: vec![PerfRecord {
                scenario: "conv2d_batch".to_string(),
                backend: "jtc_ideal".to_string(),
                batch: 8,
                reps: 3,
                images_per_s: 100.0,
                us_per_conv: 10.0,
                convs_per_image: 64,
                seed_images_per_s: 40.0,
                speedup_vs_seed: 2.5,
            }],
            threads,
            stages: None,
        }
    }

    fn point(scenario: &str, threads: usize, speedup: f64) -> ThreadScalingRecord {
        ThreadScalingRecord {
            scenario: scenario.to_string(),
            backend: "jtc_ideal".to_string(),
            threads,
            grain: "image".to_string(),
            images_per_s: 100.0 * speedup,
            speedup_vs_1: speedup,
            efficiency: speedup / threads as f64,
        }
    }

    fn floor(scenario: &str, threads: usize, min: f64) -> ScalingBaselineEntry {
        ScalingBaselineEntry {
            scenario: scenario.to_string(),
            backend: "jtc_ideal".to_string(),
            threads,
            min_speedup_vs_1: min,
        }
    }

    #[test]
    fn sweep_widths_are_positive_sorted_deduped_and_contain_one() {
        assert_eq!(sweep_widths(&[4, 2, 2, 0, 1]), vec![1, 2, 4]);
        assert_eq!(sweep_widths(&[]), vec![1]);
        assert_eq!(sweep_widths(&[8]), vec![1, 8]);
    }

    #[test]
    fn scaling_gate_fails_below_floor_and_on_missing_points() {
        let scaling = ThreadScaling {
            counts: vec![1, 2],
            grain: "auto".to_string(),
            curve: vec![
                point("resnet18_batch_infer", 1, 1.0),
                point("resnet18_batch_infer", 2, 1.2),
            ],
        };
        let report = synthetic_report(4, Some(scaling));
        let baseline = Baseline {
            entries: vec![],
            scaling: Some(vec![
                floor("resnet18_batch_infer", 2, 1.6), // measured 1.2: fail
                floor("conv2d_batch", 2, 1.6),         // never measured: fail
            ]),
        };
        let (failures, skipped) = check_scaling_against_baseline(&report, &baseline);
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures[0].contains("fell below"));
        assert!(failures[1].contains("no measured curve point"));
        assert!(skipped.is_empty());
    }

    #[test]
    fn scaling_gate_is_core_gated_and_passes_honest_curves() {
        let scaling = ThreadScaling {
            counts: vec![1, 2, 4],
            grain: "auto".to_string(),
            curve: vec![
                point("resnet18_batch_infer", 1, 1.0),
                point("resnet18_batch_infer", 2, 1.8),
                point("resnet18_batch_infer", 4, 3.1),
            ],
        };
        // A 1-core host cannot check any multi-thread floor: all skipped.
        let narrow = synthetic_report(1, Some(scaling.clone()));
        let baseline = Baseline {
            entries: vec![],
            scaling: Some(vec![
                floor("resnet18_batch_infer", 2, 1.6),
                floor("resnet18_batch_infer", 4, 2.5),
            ]),
        };
        let (failures, skipped) = check_scaling_against_baseline(&narrow, &baseline);
        assert!(failures.is_empty(), "{failures:?}");
        assert_eq!(skipped.len(), 2);
        assert!(skipped[0].contains("wider runner"));

        // A 4-core host checks both floors; this curve clears them.
        let wide = synthetic_report(4, Some(scaling));
        let (failures, skipped) = check_scaling_against_baseline(&wide, &baseline);
        assert!(failures.is_empty(), "{failures:?}");
        assert!(skipped.is_empty());

        // No sweep ran: one note, no failures.
        let no_sweep = synthetic_report(4, None);
        let (failures, skipped) = check_scaling_against_baseline(&no_sweep, &baseline);
        assert!(failures.is_empty());
        assert_eq!(skipped.len(), 1);
        assert!(skipped[0].contains("--threads-sweep"));

        // A baseline without a scaling section gates nothing.
        let legacy = Baseline {
            entries: vec![],
            scaling: None,
        };
        let (failures, skipped) = check_scaling_against_baseline(&no_sweep, &legacy);
        assert!(failures.is_empty() && skipped.is_empty());
    }

    #[test]
    fn legacy_baseline_files_without_scaling_still_load() {
        let legacy = r#"{"entries":[{"scenario":"conv2d_batch","backend":"jtc_ideal","min_speedup_vs_seed":2.5}]}"#;
        let baseline: Baseline = serde_json::from_str(legacy).unwrap();
        assert!(baseline.scaling.is_none());
        assert_eq!(baseline.entries.len(), 1);
    }

    #[test]
    fn markdown_summary_tabulates_throughput_and_scaling() {
        let scaling = ThreadScaling {
            counts: vec![1, 2],
            grain: "auto".to_string(),
            curve: vec![
                point("resnet18_batch_infer", 1, 1.0),
                point("resnet18_batch_infer", 2, 1.7),
            ],
        };
        let report = synthetic_report(1, Some(scaling));
        let baseline = Baseline {
            entries: vec![BaselineEntry {
                scenario: "conv2d_batch".to_string(),
                backend: "jtc_ideal".to_string(),
                min_speedup_vs_seed: 2.2,
            }],
            scaling: Some(vec![floor("resnet18_batch_infer", 2, 1.6)]),
        };
        let summary = markdown_summary(&report, Some(&baseline));
        // Throughput row with its floor delta (2.5 measured vs 2.2 floor).
        assert!(summary.contains("| conv2d_batch | jtc_ideal | 8 | 100.0 | 2.50 | 2.20 | +0.30 |"));
        // Scaling curve section and the core-gated skip note.
        assert!(summary.contains("### Thread scaling"));
        assert!(summary
            .contains("| resnet18_batch_infer | jtc_ideal | 2 | image | 170.0 | 1.70 | 0.85 |"));
        assert!(summary.contains("skipped:"));
        assert!(!summary.contains("**FAIL**"));
    }

    #[test]
    fn thread_scaling_measures_a_normalised_curve_per_scenario() {
        let scaling = thread_scaling(true, &[2], ParallelGrain::Auto).unwrap();
        assert_eq!(scaling.counts, vec![1, 2]);
        assert_eq!(scaling.grain, "auto");
        // Four curves (3 conv backends + jtc inference), two points each.
        assert_eq!(scaling.curve.len(), 8);
        for record in &scaling.curve {
            assert!(
                record.images_per_s.is_finite() && record.images_per_s > 0.0,
                "{record:?}"
            );
            assert!(
                (record.efficiency - record.speedup_vs_1 / record.threads as f64).abs() < 1e-12,
                "{record:?}"
            );
            if record.threads == 1 {
                assert!((record.speedup_vs_1 - 1.0).abs() < 1e-12, "{record:?}");
            }
            // Stochastic conv2d batches cannot dispatch in parallel.
            if record.backend == "photofourier_cg" && record.scenario == "conv2d_batch" {
                assert_eq!(record.grain, "serial");
            }
        }
    }

    #[test]
    fn host_threads_reports_the_real_pool_size() {
        // With no override installed, the pool size is the core count...
        let auto = rayon::current_num_threads();
        assert!(auto >= 1);
        // ...and an explicit configuration must be what the report records.
        rayon::ThreadPoolBuilder::new()
            .num_threads(2)
            .build_global()
            .unwrap();
        assert_eq!(rayon::current_num_threads(), 2);
        rayon::ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
        assert_eq!(rayon::current_num_threads(), auto);
    }
}
