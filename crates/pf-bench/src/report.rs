//! Minimal fixed-width table formatting for benchmark output.

use std::fmt::Write as _;

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (extra cells are dropped, missing cells padded).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        row.truncate(self.header.len());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (w, cell) in widths.iter().zip(cells) {
                let _ = write!(out, "| {cell:>w$} ");
            }
            out.push_str("|\n");
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a float with a sensible number of significant digits for tables.
pub fn fmt_sig(value: f64) -> String {
    if value == 0.0 {
        "0".to_string()
    } else if value.abs() >= 1000.0 {
        format!("{value:.0}")
    } else if value.abs() >= 10.0 {
        format!("{value:.1}")
    } else if value.abs() >= 0.01 {
        format!("{value:.3}")
    } else {
        format!("{value:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["alpha", "1"]);
        t.row(vec!["b", "123456"]);
        let rendered = t.render();
        assert!(rendered.contains("alpha"));
        assert!(rendered.contains("123456"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        // All lines have the same length.
        let lens: Vec<usize> = rendered.lines().map(|l| l.len()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn row_padding_and_truncation() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
        t.row(vec!["one", "two", "three"]);
        assert!(t.render().contains("only one"));
        assert!(!t.render().contains("three"));
    }

    #[test]
    fn sig_formatting() {
        assert_eq!(fmt_sig(0.0), "0");
        assert_eq!(fmt_sig(12345.6), "12346");
        assert_eq!(fmt_sig(12.34), "12.3");
        assert_eq!(fmt_sig(0.5), "0.500");
        assert_eq!(fmt_sig(0.0001), "1.00e-4");
    }
}
