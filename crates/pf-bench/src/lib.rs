//! Experiment implementations for the PhotoFourier benchmark harness.
//!
//! Every table and figure of the paper's evaluation has a function here that
//! computes its rows/series; the Criterion benches under `benches/` print
//! those results and time the underlying computation. EXPERIMENTS.md records
//! the paper-vs-measured comparison for each one.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod experiments;
pub mod perf;
pub mod report;

pub use experiments::*;
pub use report::Table;
