//! Experiment implementations for the PhotoFourier benchmark harness.
//!
//! Every table and figure of the paper's evaluation has a function here that
//! computes its rows/series; the Criterion benches under `benches/` print
//! those results and time the underlying computation. EXPERIMENTS.md records
//! the paper-vs-measured comparison for each one.
//!
//! The crate also ships three standalone drivers: `--bin perf` (the batched
//! throughput harness behind the CI bench gate, see [`perf`]), `--bin
//! sweep` (the declarative design-space sweep runner documented in
//! `docs/SCENARIOS.md`) and `--bin loadgen` (the serving load generator
//! driving the `pf-serve` micro-batching server, see [`serving`] and
//! `docs/SERVING.md`; its `--route` mode drives the `pf-router`
//! multi-replica tier with trace-driven arrivals instead, see [`routing`],
//! and its `--chaos` mode drives the fault-injected tier and gates on
//! self-healing, see [`chaos`] and [`exitcode`] for the exit taxonomy).
//!
//! # Examples
//!
//! Experiment results render through the fixed-width [`Table`] the benches
//! print:
//!
//! ```
//! use pf_bench::Table;
//!
//! let mut table = Table::new(vec!["# PFCU", "FPS/W"]);
//! table.row(vec!["8", "354.6"]).row(vec!["16", "418.7"]);
//! assert_eq!(table.len(), 2);
//! assert!(table.render().lines().count() >= 4); // header, rule, 2 rows
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod chaos;
pub mod exitcode;
pub mod experiments;
pub mod perf;
pub mod report;
pub mod routing;
pub mod serving;

pub use experiments::*;
pub use report::Table;
