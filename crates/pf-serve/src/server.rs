//! The micro-batching server: admission, batch formation, dispatch,
//! tickets, and deterministic shutdown.

use std::collections::VecDeque;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};
use pf_core::PfError;
use pf_nn::Tensor;

use crate::config::ServeConfig;
use crate::stats::{ServerStats, StatsCollector};

/// The compute side of a [`Server`]: runs one micro-batch of requests.
///
/// `seqs[i]` is request `i`'s stable sequence number, assigned at admission
/// in submission order. Deterministic engines may ignore it; engines with
/// stochastic state (optical sensing noise) must derive each request's
/// noise stream from its sequence number — **not** from its position in the
/// batch — so a request's result does not depend on how the batcher happened
/// to group it.
pub trait InferenceEngine: Send + Sync {
    /// Runs the micro-batch, returning one output per input, in order.
    ///
    /// # Errors
    ///
    /// An error fails every request of the batch (each ticket resolves to a
    /// clone of the error).
    fn infer_batch(&self, inputs: &[Tensor], seqs: &[u64]) -> Result<Vec<Tensor>, PfError>;
}

impl<E: InferenceEngine + ?Sized> InferenceEngine for Arc<E> {
    fn infer_batch(&self, inputs: &[Tensor], seqs: &[u64]) -> Result<Vec<Tensor>, PfError> {
        (**self).infer_batch(inputs, seqs)
    }
}

/// Result slot shared between a [`Ticket`] and the worker that completes it.
#[derive(Debug, Default)]
struct TicketCell {
    result: Mutex<Option<Result<Tensor, PfError>>>,
    ready: Condvar,
}

impl TicketCell {
    fn fulfill(&self, result: Result<Tensor, PfError>) {
        *self.result.lock() = Some(result);
        self.ready.notify_all();
    }
}

/// Handle to one in-flight request, returned by [`Server::submit`].
#[derive(Debug)]
pub struct Ticket {
    seq: u64,
    cell: Arc<TicketCell>,
}

impl Ticket {
    /// The request's admission sequence number (submission order). This is
    /// the seed stochastic engines derive the request's noise stream from,
    /// so recording it makes served results exactly reproducible offline.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Blocks until the request completes and returns its result.
    pub fn wait(self) -> Result<Tensor, PfError> {
        let mut slot = self.cell.result.lock();
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.cell.ready.wait(slot);
        }
    }

    /// Returns the result if the request already completed, without
    /// blocking. At most one call observes `Some` (the result is moved out).
    pub fn try_take(&self) -> Option<Result<Tensor, PfError>> {
        self.cell.result.lock().take()
    }
}

/// One admitted request waiting in the queue.
#[derive(Debug)]
struct Request {
    seq: u64,
    input: Tensor,
    enqueued: Instant,
    cell: Arc<TicketCell>,
}

#[derive(Debug)]
struct QueueState {
    pending: VecDeque<Request>,
    /// Cleared by shutdown: no further admissions, workers drain and exit.
    accepting: bool,
    next_seq: u64,
}

#[derive(Debug)]
struct Shared<E> {
    engine: E,
    config: ServeConfig,
    queue: Mutex<QueueState>,
    /// Signalled on every admission and on shutdown.
    work: Condvar,
    stats: Mutex<StatsCollector>,
}

/// A thread-based micro-batching inference server.
///
/// Worker threads drain the bounded request queue into micro-batches (up to
/// [`ServeConfig::max_batch`] requests, waiting at most
/// [`ServeConfig::batch_timeout`] for a partial batch to fill) and dispatch
/// each batch through the [`InferenceEngine`]. Admission control is a
/// bounded queue: submissions beyond [`ServeConfig::queue_depth`] are
/// rejected with [`PfError::Overloaded`].
///
/// Dropping the server also shuts it down (draining first), but
/// [`Server::shutdown`] is preferred: it returns the final [`ServerStats`].
#[derive(Debug)]
pub struct Server<E: InferenceEngine + 'static> {
    shared: Arc<Shared<E>>,
    workers: Vec<JoinHandle<()>>,
}

impl<E: InferenceEngine + 'static> Server<E> {
    /// Validates `config` and starts the worker threads.
    ///
    /// # Errors
    ///
    /// Returns [`PfError::InvalidScenario`] for an inconsistent config.
    pub fn new(engine: E, config: ServeConfig) -> Result<Self, PfError> {
        config.validate()?;
        let shared = Arc::new(Shared {
            engine,
            config,
            queue: Mutex::new(QueueState {
                pending: VecDeque::new(),
                accepting: true,
                next_seq: 0,
            }),
            work: Condvar::new(),
            stats: Mutex::new(StatsCollector::default()),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pf-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pf-serve worker")
            })
            .collect();
        Ok(Self { shared, workers })
    }

    /// The configuration the server runs with.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.config
    }

    /// A reference to the engine.
    pub fn engine(&self) -> &E {
        &self.shared.engine
    }

    /// Requests currently waiting in the queue (already-dispatched batches
    /// excluded).
    pub fn queue_len(&self) -> usize {
        self.shared.queue.lock().pending.len()
    }

    /// Submits one request, returning its [`Ticket`] immediately.
    ///
    /// # Errors
    ///
    /// Returns [`PfError::Overloaded`] when the queue is full (the request
    /// is counted as rejected), or [`PfError::InvalidScenario`] when the
    /// server is shutting down (not counted: shutdown is not load).
    pub fn submit(&self, input: Tensor) -> Result<Ticket, PfError> {
        let enqueued = Instant::now();
        let mut queue = self.shared.queue.lock();
        if !queue.accepting {
            return Err(PfError::invalid_scenario(
                "submit on a server that is shutting down",
            ));
        }
        if queue.pending.len() >= self.shared.config.queue_depth {
            let queued = queue.pending.len();
            drop(queue);
            self.shared.stats.lock().record_rejected();
            return Err(PfError::Overloaded {
                queued,
                limit: self.shared.config.queue_depth,
            });
        }
        let seq = queue.next_seq;
        queue.next_seq += 1;
        let cell = Arc::new(TicketCell::default());
        queue.pending.push_back(Request {
            seq,
            input,
            enqueued,
            cell: Arc::clone(&cell),
        });
        drop(queue);
        self.shared.stats.lock().record_submitted(enqueued);
        self.shared.work.notify_one();
        Ok(Ticket { seq, cell })
    }

    /// Submits one request and blocks until its result is ready.
    ///
    /// # Errors
    ///
    /// Same admission errors as [`Server::submit`], plus any engine error.
    pub fn submit_blocking(&self, input: Tensor) -> Result<Tensor, PfError> {
        self.submit(input)?.wait()
    }

    /// A snapshot of the accounting so far (may be mid-flight; totals only
    /// settle after [`Server::shutdown`]).
    pub fn stats(&self) -> ServerStats {
        self.shared.stats.lock().snapshot()
    }

    /// Stops admissions, drains every queued request, joins the workers and
    /// returns the final stats. Deterministic: every ticket handed out by
    /// [`Server::submit`] is resolved by the time this returns. (Engine
    /// panics are caught per batch — they fail that batch's tickets and
    /// show up in [`ServerStats::failed`] rather than killing a worker.)
    ///
    /// # Panics
    ///
    /// Panics if a worker thread itself panicked (a server bug, not an
    /// engine failure).
    pub fn shutdown(mut self) -> ServerStats {
        self.begin_shutdown();
        let mut worker_panicked = false;
        for handle in self.workers.drain(..) {
            worker_panicked |= handle.join().is_err();
        }
        assert!(!worker_panicked, "a pf-serve worker thread panicked");
        self.stats()
    }

    fn begin_shutdown(&self) {
        self.shared.queue.lock().accepting = false;
        self.shared.work.notify_all();
    }
}

impl<E: InferenceEngine + 'static> Drop for Server<E> {
    fn drop(&mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            // Swallow worker panics here: propagating from drop would abort.
            let _ = handle.join();
        }
    }
}

/// Takes requests off the queue into `batch` until it holds `max` requests.
fn take_into(batch: &mut Vec<Request>, queue: &mut QueueState, max: usize) {
    while batch.len() < max {
        match queue.pending.pop_front() {
            Some(request) => batch.push(request),
            None => break,
        }
    }
}

fn worker_loop<E: InferenceEngine>(shared: &Shared<E>) {
    let max_batch = shared.config.max_batch;
    loop {
        let mut queue = shared.queue.lock();
        // Sleep until there is work; exit once shut down *and* drained.
        loop {
            if !queue.pending.is_empty() {
                break;
            }
            if !queue.accepting {
                return;
            }
            queue = shared.work.wait(queue);
        }

        let mut batch = Vec::with_capacity(max_batch);
        take_into(&mut batch, &mut queue, max_batch);

        // Batch formation: wait (bounded) for a partial batch to fill.
        // Skipped during drain — shutdown flushes at full speed.
        if batch.len() < max_batch && queue.accepting && !shared.config.batch_timeout.is_zero() {
            let deadline = Instant::now() + shared.config.batch_timeout;
            loop {
                take_into(&mut batch, &mut queue, max_batch);
                if batch.len() >= max_batch || !queue.accepting {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, wait) = shared.work.wait_for(queue, deadline - now);
                queue = guard;
                if wait.timed_out() {
                    take_into(&mut batch, &mut queue, max_batch);
                    break;
                }
            }
        }
        drop(queue);
        dispatch(shared, batch);
    }
}

fn dispatch<E: InferenceEngine>(shared: &Shared<E>, batch: Vec<Request>) {
    if batch.is_empty() {
        return;
    }
    let dispatched = Instant::now();
    let mut inputs = Vec::with_capacity(batch.len());
    let mut seqs = Vec::with_capacity(batch.len());
    let mut enqueues = Vec::with_capacity(batch.len());
    let mut cells = Vec::with_capacity(batch.len());
    for request in batch {
        inputs.push(request.input);
        seqs.push(request.seq);
        enqueues.push(request.enqueued);
        cells.push(request.cell);
    }

    // A panicking engine must not strand the batch's tickets (clients
    // blocked in `Ticket::wait` would sleep forever) nor kill the worker
    // (later submitters would hang just the same). Catch the unwind and
    // fail the batch; the `failed` counter — which the loadgen smoke gate
    // checks — is the panic's visible trace.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        shared.engine.infer_batch(&inputs, &seqs)
    }));
    let completed = Instant::now();

    let outcome = match result {
        Ok(Ok(outputs)) if outputs.len() == cells.len() => Ok(outputs),
        Ok(Ok(outputs)) => Err(PfError::invalid_scenario(format!(
            "engine returned {} result(s) for a batch of {}",
            outputs.len(),
            cells.len()
        ))),
        Ok(Err(e)) => Err(e),
        Err(_panic) => Err(PfError::invalid_scenario(
            "engine panicked while serving this batch",
        )),
    };
    shared
        .stats
        .lock()
        .record_batch(&enqueues, dispatched, completed, outcome.is_ok());
    match outcome {
        Ok(outputs) => {
            for (cell, output) in cells.iter().zip(outputs) {
                cell.fulfill(Ok(output));
            }
        }
        Err(e) => {
            for cell in &cells {
                cell.fulfill(Err(e.clone()));
            }
        }
    }
}
