//! The micro-batching server: admission, batch formation, dispatch,
//! tickets, deadlines and deterministic shutdown.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use pf_core::PfError;
use pf_telemetry::{request_track, Telemetry};

use crate::config::ServeConfig;
use crate::stats::{ServerStats, StatsCollector};

/// Tracing identity of one admitted request, minted where the request
/// enters the serving stack (router admission, or server admission for
/// directly-submitted requests) and carried through the queue so dispatch
/// can stitch one coherent span tree per request.
#[derive(Debug, Clone, Copy)]
pub struct RequestTrace {
    /// Request id ([`Telemetry::next_request_id`]); names the request's
    /// own track in the exported trace.
    pub req: u64,
    /// Span id the request's root span hangs from (e.g. the router's
    /// admission span), or 0 for a root of its own.
    pub parent: u64,
    /// When the request entered the stack (start of its root span — for a
    /// routed request this predates the replica's own enqueue).
    pub admitted: Instant,
}

impl RequestTrace {
    /// Mints a fresh trace rooted at `admitted` (no parent span). Returns
    /// `None` on a disabled handle, so untraced serving carries no baggage.
    pub fn mint(tel: &Telemetry, admitted: Instant) -> Option<Self> {
        tel.is_enabled().then(|| Self {
            req: tel.next_request_id(),
            parent: 0,
            admitted,
        })
    }
}

/// The compute side of a [`Server`]: runs one micro-batch of requests.
///
/// The server is generic over the request payload ([`InferenceEngine::Request`])
/// and result ([`InferenceEngine::Response`]) — the facade serves tensors,
/// a routing tier serves richer payloads (image + model key + replay seed).
///
/// `seqs[i]` is request `i`'s stable sequence number, assigned at admission
/// in submission order. Deterministic engines may ignore it; engines with
/// stochastic state (optical sensing noise) must derive each request's
/// noise stream from its sequence number (or from a seed carried in the
/// payload) — **not** from its position in the batch — so a request's
/// result does not depend on how the batcher happened to group it.
pub trait InferenceEngine: Send + Sync {
    /// Per-request input payload.
    type Request: Send + 'static;
    /// Per-request result.
    type Response: Send + 'static;

    /// Runs the micro-batch, returning one output per input, in order.
    ///
    /// # Errors
    ///
    /// An error fails every request of the batch (each ticket resolves to a
    /// clone of the error).
    fn infer_batch(
        &self,
        inputs: &[Self::Request],
        seqs: &[u64],
    ) -> Result<Vec<Self::Response>, PfError>;

    /// [`InferenceEngine::infer_batch`] with span attribution: `parent` is
    /// the dispatching worker's batch-span id, for engines that emit their
    /// own child spans (per-stage convolution work). Must return results
    /// **bit-identical** to `infer_batch` — tracing observes, never
    /// perturbs. The default ignores the telemetry arguments; the server
    /// only calls this when tracing is enabled.
    fn infer_batch_traced(
        &self,
        inputs: &[Self::Request],
        seqs: &[u64],
        tel: &Telemetry,
        parent: u64,
    ) -> Result<Vec<Self::Response>, PfError> {
        let _ = (tel, parent);
        self.infer_batch(inputs, seqs)
    }
}

impl<E: InferenceEngine + ?Sized> InferenceEngine for Arc<E> {
    type Request = E::Request;
    type Response = E::Response;

    fn infer_batch(
        &self,
        inputs: &[Self::Request],
        seqs: &[u64],
    ) -> Result<Vec<Self::Response>, PfError> {
        (**self).infer_batch(inputs, seqs)
    }

    fn infer_batch_traced(
        &self,
        inputs: &[Self::Request],
        seqs: &[u64],
        tel: &Telemetry,
        parent: u64,
    ) -> Result<Vec<Self::Response>, PfError> {
        (**self).infer_batch_traced(inputs, seqs, tel, parent)
    }
}

/// Result slot shared between a [`Ticket`] and the worker that completes it.
struct TicketCell<R> {
    /// The result, stamped with its completion instant (so latency can be
    /// derived later even if the ticket is waited on long after the
    /// request finished).
    result: Mutex<Option<(Result<R, PfError>, Instant)>>,
    ready: Condvar,
    /// Set by [`Ticket::wait_deadline`] on timeout: the batcher drops the
    /// request at formation time instead of dispatching it.
    cancelled: AtomicBool,
}

impl<R> Default for TicketCell<R> {
    fn default() -> Self {
        Self {
            result: Mutex::new(None),
            ready: Condvar::new(),
            cancelled: AtomicBool::new(false),
        }
    }
}

impl<R> TicketCell<R> {
    fn fulfill(&self, result: Result<R, PfError>, completed: Instant) {
        *self.result.lock() = Some((result, completed));
        self.ready.notify_all();
    }
}

/// Handle to one in-flight request, returned by [`Server::submit`].
pub struct Ticket<R> {
    seq: u64,
    cell: Arc<TicketCell<R>>,
}

impl<R> std::fmt::Debug for Ticket<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").field("seq", &self.seq).finish()
    }
}

impl<R> Ticket<R> {
    /// The request's admission sequence number (submission order). This is
    /// the seed stochastic engines derive the request's noise stream from,
    /// so recording it makes served results exactly reproducible offline.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Blocks until the request completes and returns its result.
    pub fn wait(self) -> Result<R, PfError> {
        self.wait_timed().0
    }

    /// Like [`Ticket::wait`], additionally returning the instant the
    /// request actually completed (not the instant this call observed it) —
    /// the timestamp a routing tier derives true end-to-end latency and
    /// deadline misses from.
    pub fn wait_timed(self) -> (Result<R, PfError>, Instant) {
        let mut slot = self.cell.result.lock();
        loop {
            if let Some(resolved) = slot.take() {
                return resolved;
            }
            slot = self.cell.ready.wait(slot);
        }
    }

    /// Waits up to `timeout` for the result. On timeout the request is
    /// **cancelled**: its queue slot is reclaimed at the next batch
    /// formation (counted as `cancelled` in [`ServerStats`], distinct from
    /// failures) and this returns [`PfError::DeadlineExceeded`]. If the
    /// request was already dispatched when the timeout fired, it still
    /// completes server-side (and counts as served) — the caller has merely
    /// stopped waiting for it.
    ///
    /// # Errors
    ///
    /// The request's own error, or [`PfError::DeadlineExceeded`] with stage
    /// `"abandoned"` on timeout.
    pub fn wait_deadline(self, timeout: Duration) -> Result<R, PfError> {
        self.wait_deadline_timed(timeout).0
    }

    /// Like [`Ticket::wait_deadline`], additionally returning the
    /// completion instant when the result arrived in time (`None` on
    /// timeout — there is no completion to stamp for an abandoned
    /// request).
    pub fn wait_deadline_timed(self, timeout: Duration) -> (Result<R, PfError>, Option<Instant>) {
        let deadline = Instant::now() + timeout;
        let mut slot = self.cell.result.lock();
        loop {
            if let Some((result, completed)) = slot.take() {
                return (result, Some(completed));
            }
            let now = Instant::now();
            if now >= deadline {
                self.cell.cancelled.store(true, Ordering::Release);
                return (Err(PfError::DeadlineExceeded { stage: "abandoned" }), None);
            }
            let (guard, wait) = self.cell.ready.wait_for(slot, deadline - now);
            slot = guard;
            if wait.timed_out() {
                if let Some((result, completed)) = slot.take() {
                    return (result, Some(completed));
                }
                self.cell.cancelled.store(true, Ordering::Release);
                return (Err(PfError::DeadlineExceeded { stage: "abandoned" }), None);
            }
        }
    }

    /// Returns the result if the request already completed, without
    /// blocking. At most one call observes `Some` (the result is moved out).
    pub fn try_take(&self) -> Option<Result<R, PfError>> {
        self.cell.result.lock().take().map(|(result, _)| result)
    }
}

/// One admitted request waiting in the queue.
struct Request<Rq, R> {
    seq: u64,
    input: Rq,
    enqueued: Instant,
    /// Absolute deadline: once past, the batcher resolves the ticket with
    /// [`PfError::DeadlineExceeded`] instead of dispatching the request.
    deadline: Option<Instant>,
    /// Tracing identity (None whenever telemetry is disabled).
    trace: Option<RequestTrace>,
    cell: Arc<TicketCell<R>>,
}

struct QueueState<Rq, R> {
    pending: VecDeque<Request<Rq, R>>,
    /// Cleared by shutdown: no further admissions, workers drain and exit.
    accepting: bool,
    next_seq: u64,
}

struct Shared<E: InferenceEngine> {
    engine: E,
    config: ServeConfig,
    telemetry: Telemetry,
    /// The current batch-formation window in microseconds. Initialised from
    /// [`ServeConfig::batch_timeout`]; a router shrinks it under load
    /// pressure ([`Server::set_batch_window`]).
    window_us: AtomicU64,
    queue: Mutex<QueueState<E::Request, E::Response>>,
    /// Signalled on every admission and on shutdown.
    work: Condvar,
    stats: Mutex<StatsCollector>,
}

impl<E: InferenceEngine> Shared<E> {
    fn window(&self) -> Duration {
        Duration::from_micros(self.window_us.load(Ordering::Relaxed))
    }
}

/// A thread-based micro-batching inference server.
///
/// Worker threads drain the bounded request queue into micro-batches (up to
/// [`ServeConfig::max_batch`] requests, waiting at most the current batch
/// window — initially [`ServeConfig::batch_timeout`] — for a partial batch
/// to fill) and dispatch each batch through the [`InferenceEngine`].
/// Admission control is a bounded queue: submissions beyond
/// [`ServeConfig::queue_depth`] are rejected with [`PfError::Overloaded`].
/// Requests may carry a deadline ([`Server::submit_with_deadline`]): a
/// request whose deadline passes while it is still queued is **never
/// dispatched** — its ticket resolves to [`PfError::DeadlineExceeded`] and
/// it is counted as `expired`.
///
/// Dropping the server also shuts it down (draining first), but
/// [`Server::shutdown`] is preferred: it returns the final [`ServerStats`].
pub struct Server<E: InferenceEngine + 'static> {
    shared: Arc<Shared<E>>,
    workers: Vec<JoinHandle<()>>,
}

impl<E: InferenceEngine + 'static> std::fmt::Debug for Server<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("config", &self.shared.config)
            .field("workers", &self.workers.len())
            .field("queue_len", &self.queue_len())
            .finish_non_exhaustive()
    }
}

impl<E: InferenceEngine + 'static> Server<E> {
    /// Validates `config` and starts the worker threads.
    ///
    /// A `workers` value of `0` auto-sizes the pool against rayon's global
    /// pool (see [`ServeConfig::effective_workers`]).
    ///
    /// # Errors
    ///
    /// Returns [`PfError::InvalidScenario`] for an inconsistent config.
    pub fn new(engine: E, config: ServeConfig) -> Result<Self, PfError> {
        Self::with_telemetry(engine, config, Telemetry::disabled())
    }

    /// Like [`Server::new`] with an observability handle: request/batch
    /// spans are recorded into `telemetry`'s ring and the `serve.*`
    /// counters land in its registry. With a disabled handle this is
    /// exactly [`Server::new`].
    ///
    /// # Errors
    ///
    /// Returns [`PfError::InvalidScenario`] for an inconsistent config.
    pub fn with_telemetry(
        engine: E,
        config: ServeConfig,
        telemetry: Telemetry,
    ) -> Result<Self, PfError> {
        config.validate()?;
        let worker_count = config.effective_workers();
        let stats = StatsCollector::new(&telemetry);
        let shared = Arc::new(Shared {
            engine,
            window_us: AtomicU64::new(config.batch_timeout.as_micros() as u64),
            config,
            telemetry,
            queue: Mutex::new(QueueState {
                pending: VecDeque::new(),
                accepting: true,
                next_seq: 0,
            }),
            work: Condvar::new(),
            stats: Mutex::new(stats),
        });
        let workers = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pf-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pf-serve worker")
            })
            .collect();
        Ok(Self { shared, workers })
    }

    /// The configuration the server runs with.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.config
    }

    /// The observability handle (disabled unless the server was built with
    /// [`Server::with_telemetry`]).
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.telemetry
    }

    /// A reference to the engine.
    pub fn engine(&self) -> &E {
        &self.shared.engine
    }

    /// Requests currently waiting in the queue (already-dispatched batches
    /// excluded).
    pub fn queue_len(&self) -> usize {
        self.shared.queue.lock().pending.len()
    }

    /// The current batch-formation window (initially
    /// [`ServeConfig::batch_timeout`]).
    pub fn batch_window(&self) -> Duration {
        self.shared.window()
    }

    /// Replaces the batch-formation window, taking effect from the next
    /// batch a worker forms. A routing tier shrinks the window towards zero
    /// under queue pressure — trading batch size for latency — and restores
    /// it when pressure subsides. The window is capped at the configured
    /// [`ServeConfig::batch_timeout`] (the window can only shrink relative
    /// to the scenario's setting, never grow beyond it).
    pub fn set_batch_window(&self, window: Duration) {
        let capped = window.min(self.shared.config.batch_timeout);
        self.shared
            .window_us
            .store(capped.as_micros() as u64, Ordering::Relaxed);
    }

    /// Submits one request, returning its [`Ticket`] immediately.
    ///
    /// # Errors
    ///
    /// Returns [`PfError::Overloaded`] when the queue is full (the request
    /// is counted as rejected), or [`PfError::InvalidScenario`] when the
    /// server is shutting down (not counted: shutdown is not load).
    pub fn submit(&self, input: E::Request) -> Result<Ticket<E::Response>, PfError> {
        self.submit_with_deadline(input, None)
    }

    /// Submits one request with an optional absolute deadline.
    ///
    /// A deadlined request that is still queued when its deadline passes is
    /// never dispatched: the batcher resolves its ticket with
    /// [`PfError::DeadlineExceeded`] (stage `"queued"`) and counts it as
    /// `expired`. A request already dispatched before the deadline runs to
    /// completion regardless (the engine is not interrupted mid-batch);
    /// completions after the deadline are the *caller's* deadline misses to
    /// account, from [`Ticket::wait_timed`].
    ///
    /// # Errors
    ///
    /// Same admission errors as [`Server::submit`].
    pub fn submit_with_deadline(
        &self,
        input: E::Request,
        deadline: Option<Instant>,
    ) -> Result<Ticket<E::Response>, PfError> {
        self.try_submit_with_deadline(input, deadline)
            .map_err(|(_, e)| e)
    }

    /// Like [`Server::submit_with_deadline`], but hands the payload back
    /// on failure — so a routing tier can spill a rejected request to
    /// another replica without requiring `Clone` payloads.
    ///
    /// # Errors
    ///
    /// Same admission errors as [`Server::submit`], paired with the
    /// unconsumed payload.
    pub fn try_submit_with_deadline(
        &self,
        input: E::Request,
        deadline: Option<Instant>,
    ) -> Result<Ticket<E::Response>, (E::Request, PfError)> {
        self.try_submit_traced(input, deadline, None)
    }

    /// Like [`Server::try_submit_with_deadline`], carrying an explicit
    /// [`RequestTrace`] — the routing tier mints the request id at *its*
    /// admission and passes it down so one routed request yields one span
    /// tree across both tiers. With `trace: None` the server mints a trace
    /// of its own (when telemetry is enabled).
    ///
    /// # Errors
    ///
    /// Same admission errors as [`Server::submit`], paired with the
    /// unconsumed payload.
    pub fn try_submit_traced(
        &self,
        input: E::Request,
        deadline: Option<Instant>,
        trace: Option<RequestTrace>,
    ) -> Result<Ticket<E::Response>, (E::Request, PfError)> {
        let enqueued = Instant::now();
        let trace = trace.or_else(|| RequestTrace::mint(&self.shared.telemetry, enqueued));
        let mut queue = self.shared.queue.lock();
        if !queue.accepting {
            return Err((
                input,
                PfError::invalid_scenario("submit on a server that is shutting down"),
            ));
        }
        if queue.pending.len() >= self.shared.config.queue_depth {
            let queued = queue.pending.len();
            drop(queue);
            self.shared.stats.lock().record_rejected();
            return Err((
                input,
                PfError::Overloaded {
                    queued,
                    limit: self.shared.config.queue_depth,
                },
            ));
        }
        let seq = queue.next_seq;
        queue.next_seq += 1;
        let cell = Arc::new(TicketCell::default());
        queue.pending.push_back(Request {
            seq,
            input,
            enqueued,
            deadline,
            trace,
            cell: Arc::clone(&cell),
        });
        let depth = queue.pending.len();
        drop(queue);
        self.shared.stats.lock().record_submitted(enqueued, depth);
        self.shared.work.notify_one();
        Ok(Ticket { seq, cell })
    }

    /// Submits one request and blocks until its result is ready.
    ///
    /// # Errors
    ///
    /// Same admission errors as [`Server::submit`], plus any engine error.
    pub fn submit_blocking(&self, input: E::Request) -> Result<E::Response, PfError> {
        self.submit(input)?.wait()
    }

    /// A snapshot of the accounting so far (may be mid-flight; totals only
    /// settle after [`Server::shutdown`]).
    pub fn stats(&self) -> ServerStats {
        self.shared.stats.lock().snapshot()
    }

    /// Stops admissions, drains every queued request, joins the workers and
    /// returns the final stats. Deterministic: every ticket handed out by
    /// [`Server::submit`] is resolved by the time this returns — served,
    /// failed, expired or cancelled. (Engine panics are caught per batch —
    /// they fail that batch's tickets and show up in [`ServerStats::failed`]
    /// rather than killing a worker.)
    ///
    /// # Errors
    ///
    /// Returns [`PfError::WorkerPanicked`] if a worker thread itself
    /// panicked (a server bug, not an engine failure). All workers are
    /// still joined first, so no thread is leaked; the final stats are
    /// unavailable because a dead worker's accounting may be incomplete.
    pub fn shutdown(mut self) -> Result<ServerStats, PfError> {
        self.begin_shutdown();
        let mut panicked = 0usize;
        for handle in self.workers.drain(..) {
            panicked += usize::from(handle.join().is_err());
        }
        if panicked > 0 {
            return Err(PfError::WorkerPanicked { workers: panicked });
        }
        Ok(self.stats())
    }

    fn begin_shutdown(&self) {
        self.shared.queue.lock().accepting = false;
        self.shared.work.notify_all();
    }
}

impl<E: InferenceEngine + 'static> Drop for Server<E> {
    fn drop(&mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            // Swallow worker panics here: propagating from drop would abort.
            let _ = handle.join();
        }
    }
}

/// A request the batcher removed from the queue without dispatching, and
/// why (`"abandoned"` = ticket cancelled, `"queued"` = deadline expired).
type Dropped<R> = (Arc<TicketCell<R>>, &'static str);

/// Takes requests off the queue into `batch` until it holds `max` requests,
/// skipping cancelled and deadline-expired requests into `dropped` (their
/// tickets are resolved by the caller once the queue lock is released —
/// expired requests are **never dispatched**).
fn take_into<Rq, R>(
    batch: &mut Vec<Request<Rq, R>>,
    dropped: &mut Vec<Dropped<R>>,
    queue: &mut QueueState<Rq, R>,
    max: usize,
) {
    while batch.len() < max {
        let Some(request) = queue.pending.pop_front() else {
            break;
        };
        if request.cell.cancelled.load(Ordering::Acquire) {
            dropped.push((request.cell, "abandoned"));
            continue;
        }
        if let Some(deadline) = request.deadline {
            if Instant::now() >= deadline {
                dropped.push((request.cell, "queued"));
                continue;
            }
        }
        batch.push(request);
    }
}

/// Resolves the tickets of requests dropped at batch formation and records
/// them (cancelled vs expired) in the stats.
fn resolve_dropped<E: InferenceEngine>(shared: &Shared<E>, dropped: Vec<Dropped<E::Response>>) {
    if dropped.is_empty() {
        return;
    }
    let now = Instant::now();
    let mut stats = shared.stats.lock();
    for (cell, stage) in dropped {
        match stage {
            "abandoned" => stats.record_cancelled(),
            _ => stats.record_expired(),
        }
        cell.fulfill(Err(PfError::DeadlineExceeded { stage }), now);
    }
}

fn worker_loop<E: InferenceEngine>(shared: &Shared<E>) {
    let max_batch = shared.config.max_batch;
    loop {
        let mut queue = shared.queue.lock();
        // Sleep until there is work; exit once shut down *and* drained.
        loop {
            if !queue.pending.is_empty() {
                break;
            }
            if !queue.accepting {
                return;
            }
            queue = shared.work.wait(queue);
        }

        let mut batch = Vec::with_capacity(max_batch);
        let mut dropped = Vec::new();
        take_into(&mut batch, &mut dropped, &mut queue, max_batch);

        // Batch formation: wait (bounded by the current window) for a
        // partial batch to fill. Skipped during drain — shutdown flushes at
        // full speed — and when the window has been shrunk to zero.
        let window = shared.window();
        if batch.len() < max_batch && queue.accepting && !window.is_zero() {
            let deadline = Instant::now() + window;
            loop {
                take_into(&mut batch, &mut dropped, &mut queue, max_batch);
                if batch.len() >= max_batch || !queue.accepting {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, wait) = shared.work.wait_for(queue, deadline - now);
                queue = guard;
                if wait.timed_out() {
                    take_into(&mut batch, &mut dropped, &mut queue, max_batch);
                    break;
                }
            }
        }
        drop(queue);
        resolve_dropped(shared, dropped);
        dispatch(shared, batch);
    }
}

fn dispatch<E: InferenceEngine>(shared: &Shared<E>, batch: Vec<Request<E::Request, E::Response>>) {
    if batch.is_empty() {
        return;
    }
    let dispatched = Instant::now();
    let mut inputs = Vec::with_capacity(batch.len());
    let mut seqs = Vec::with_capacity(batch.len());
    let mut enqueues = Vec::with_capacity(batch.len());
    let mut cells = Vec::with_capacity(batch.len());
    let mut traces = Vec::with_capacity(batch.len());
    for request in batch {
        inputs.push(request.input);
        seqs.push(request.seq);
        enqueues.push(request.enqueued);
        traces.push(request.trace);
        cells.push(request.cell);
    }

    let tel = &shared.telemetry;
    // Root-span ids are allocated up front so the batch span (and the
    // engine's child spans under it) can reference the first request's
    // tree; the root spans themselves are recorded after completion, once
    // their end instant is known.
    let roots: Vec<u64> = traces
        .iter()
        .map(|t| if t.is_some() { tel.alloc_span_id() } else { 0 })
        .collect();

    // A panicking engine must not strand the batch's tickets (clients
    // blocked in `Ticket::wait` would sleep forever) nor kill the worker
    // (later submitters would hang just the same). Catch the unwind and
    // fail the batch; the `failed` counter — which the loadgen smoke gate
    // checks — is the panic's visible trace.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if tel.is_enabled() {
            let first = traces
                .iter()
                .zip(&roots)
                .find_map(|(t, &root)| t.map(|t| (root, t.req)));
            let batch_span = match first {
                Some((root, req)) => tel.span_with_parent("batch", "serve", root, req),
                None => tel.span("batch", "serve"),
            };
            let parent = batch_span.id();
            shared
                .engine
                .infer_batch_traced(&inputs, &seqs, tel, parent)
        } else {
            shared.engine.infer_batch(&inputs, &seqs)
        }
    }));
    let completed = Instant::now();

    if tel.is_enabled() {
        for ((trace, &root), &enqueued) in traces.iter().zip(&roots).zip(&enqueues) {
            let Some(t) = trace else { continue };
            let track = request_track(t.req);
            tel.record_span(
                root, "request", "serve", track, t.admitted, completed, t.parent, t.req,
            );
            let queue_id = tel.alloc_span_id();
            tel.record_span(
                queue_id, "queue", "serve", track, enqueued, dispatched, root, t.req,
            );
            let exec_id = tel.alloc_span_id();
            tel.record_span(
                exec_id, "exec", "serve", track, dispatched, completed, root, t.req,
            );
        }
    }

    let outcome = match result {
        Ok(Ok(outputs)) if outputs.len() == cells.len() => Ok(outputs),
        Ok(Ok(outputs)) => Err(PfError::invalid_scenario(format!(
            "engine returned {} result(s) for a batch of {}",
            outputs.len(),
            cells.len()
        ))),
        Ok(Err(e)) => Err(e),
        Err(_panic) => Err(PfError::invalid_scenario(
            "engine panicked while serving this batch",
        )),
    };
    shared
        .stats
        .lock()
        .record_batch(&enqueues, dispatched, completed, outcome.is_ok());
    match outcome {
        Ok(outputs) => {
            for (cell, output) in cells.iter().zip(outputs) {
                cell.fulfill(Ok(output), completed);
            }
        }
        Err(e) => {
            for cell in &cells {
                cell.fulfill(Err(e.clone()), completed);
            }
        }
    }
}
