//! Dynamic micro-batching inference server.
//!
//! The paper's JTC pipeline amortizes per-kernel FFT cost across batched,
//! tiled work — a payoff that only materialises when many concurrent
//! requests are formed into batches *under load*. This crate supplies that
//! serving layer: a thread-based server (workers + `parking_lot` condvar
//! queues, no async runtime) that accepts a stream of requests, forms
//! micro-batches, dispatches them through any [`InferenceEngine`], and
//! accounts for every request's latency. The server is generic over the
//! request/response payload ([`InferenceEngine::Request`] /
//! [`InferenceEngine::Response`]), so a routing tier can serve richer
//! payloads than bare tensors.
//!
//! * [`ServeConfig`] — batch size, batch-formation timeout, bounded queue
//!   depth (admission control), worker count (`0` auto-sizes against
//!   rayon's global pool);
//! * [`Server`] — [`Server::submit`] returns a per-request [`Ticket`];
//!   [`Server::submit_with_deadline`] attaches an absolute deadline
//!   (expired requests are never dispatched); [`Ticket::wait_deadline`]
//!   lets a caller abandon a request without leaking its queue slot;
//! * [`ServerStats`] — per-request enqueue/dispatch/complete timestamps
//!   aggregated into p50/p95/p99 latency, the achieved batch-size
//!   histogram, throughput, and rejected / expired / cancelled counts;
//! * overload is explicit: a full queue rejects the request with
//!   [`pf_core::PfError::Overloaded`]; the batch-formation window is
//!   adjustable at runtime ([`Server::set_batch_window`]) so a routing
//!   tier can trade batch size for latency under pressure;
//! * [`Server::shutdown`] drains deterministically — every accepted
//!   request is resolved before it returns.
//!
//! The engine abstraction keeps this crate below the `photofourier` facade:
//! the facade implements [`InferenceEngine`] for its `Session` and
//! re-exports everything here as `photofourier::serve`; `pf-router`
//! builds its replica shards from these servers.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod config;
pub mod server;
pub mod stats;

pub use config::{ScalingHint, ServeConfig};
pub use server::{InferenceEngine, RequestTrace, Server, Ticket};
pub use stats::{BatchBucket, LatencySummary, ServerStats};
