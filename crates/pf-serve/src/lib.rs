//! Dynamic micro-batching inference server.
//!
//! The paper's JTC pipeline amortizes per-kernel FFT cost across batched,
//! tiled work — a payoff that only materialises when many concurrent
//! requests are formed into batches *under load*. This crate supplies that
//! serving layer: a thread-based server (workers + `parking_lot` condvar
//! queues, no async runtime) that accepts a stream of single-image
//! requests, forms micro-batches, dispatches them through any
//! [`InferenceEngine`], and accounts for every request's latency.
//!
//! * [`ServeConfig`] — batch size, batch-formation timeout, bounded queue
//!   depth (admission control), worker count;
//! * [`Server`] — [`Server::submit`] returns a per-request [`Ticket`];
//!   [`Server::submit_blocking`] waits for the result in place;
//! * [`ServerStats`] — per-request enqueue/dispatch/complete timestamps
//!   aggregated into p50/p95/p99 latency, the achieved batch-size
//!   histogram, throughput, and rejected-request counts;
//! * overload is explicit: a full queue rejects the request with
//!   [`pf_core::PfError::Overloaded`];
//! * [`Server::shutdown`] drains deterministically — every accepted
//!   request is completed before it returns.
//!
//! The engine abstraction keeps this crate below the `photofourier` facade:
//! the facade implements [`InferenceEngine`] for its `Session` and
//! re-exports everything here as `photofourier::serve`.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod config;
pub mod server;
pub mod stats;

pub use config::ServeConfig;
pub use server::{InferenceEngine, Server, Ticket};
pub use stats::{BatchBucket, LatencySummary, ServerStats};
