//! Latency accounting.
//!
//! Every request carries three timestamps — enqueue (admission), dispatch
//! (its micro-batch left the queue) and complete (the engine returned) —
//! collected by the server and aggregated here into the summaries a
//! serving benchmark needs: latency percentiles, the achieved batch-size
//! histogram, and throughput.

use std::collections::BTreeMap;
use std::time::Instant;

use pf_telemetry::{Counter, Gauge, Telemetry};
use serde::{Deserialize, Serialize};

/// Aggregate of one per-request duration (milliseconds).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples aggregated.
    pub count: u64,
    /// Median, in milliseconds.
    pub p50_ms: f64,
    /// 95th percentile, in milliseconds.
    pub p95_ms: f64,
    /// 99th percentile, in milliseconds.
    pub p99_ms: f64,
    /// Mean, in milliseconds.
    pub mean_ms: f64,
    /// Maximum, in milliseconds.
    pub max_ms: f64,
}

impl LatencySummary {
    /// Aggregates raw samples (seconds) into a summary. Percentiles use the
    /// nearest-rank definition on the sorted samples, so they are monotone
    /// (`p50 <= p95 <= p99 <= max`) by construction.
    pub fn from_samples_secs(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let ms = 1e3;
        Self {
            count: sorted.len() as u64,
            p50_ms: percentile(&sorted, 50.0) * ms,
            p95_ms: percentile(&sorted, 95.0) * ms,
            p99_ms: percentile(&sorted, 99.0) * ms,
            mean_ms: sorted.iter().sum::<f64>() / sorted.len() as f64 * ms,
            max_ms: sorted[sorted.len() - 1] * ms,
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted non-empty slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// One bar of the achieved batch-size histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchBucket {
    /// Micro-batch size.
    pub size: usize,
    /// How many micro-batches of exactly this size were dispatched.
    pub count: u64,
}

/// Snapshot of a server's accounting since construction.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ServerStats {
    /// Requests offered to admission control (accepted + rejected).
    pub submitted: u64,
    /// Requests completed successfully.
    pub served: u64,
    /// Requests rejected by admission control (queue full).
    pub rejected: u64,
    /// Requests accepted but failed by the engine.
    pub failed: u64,
    /// Requests whose deadline passed while still queued: dropped at batch
    /// formation, never dispatched.
    pub expired: u64,
    /// Requests whose caller abandoned the ticket (`Ticket::wait_deadline`
    /// timed out) before dispatch — a client decision, counted distinctly
    /// from engine failures. `served + rejected + failed + expired +
    /// cancelled == submitted` once the server has drained.
    pub cancelled: u64,
    /// End-to-end request latency (enqueue → complete), served requests.
    pub latency: LatencySummary,
    /// Queueing delay (enqueue → dispatch), served requests.
    pub queue_wait: LatencySummary,
    /// Engine time (dispatch → complete), served requests.
    pub service: LatencySummary,
    /// Achieved micro-batch sizes, ascending by size.
    pub batch_histogram: Vec<BatchBucket>,
    /// Served requests divided by the wall time from the first enqueue to
    /// the last completion. `0` until something completes.
    pub throughput_rps: f64,
    /// Deepest the pending queue ever got (measured at admission, request
    /// included) — how close the server came to its admission limit.
    pub queue_high_water: u64,
}

impl ServerStats {
    /// Mean achieved micro-batch size (`0` before the first dispatch).
    pub fn mean_batch_size(&self) -> f64 {
        let batches: u64 = self.batch_histogram.iter().map(|b| b.count).sum();
        if batches == 0 {
            return 0.0;
        }
        let requests: u64 = self
            .batch_histogram
            .iter()
            .map(|b| b.size as u64 * b.count)
            .sum();
        requests as f64 / batches as f64
    }
}

/// Mutable accumulator behind the server's stats mutex.
///
/// The monotone counts (submitted / served / rejected / …) live in the
/// telemetry registry as `serve.*` counters, so one serving run surfaces
/// them both here (as the [`ServerStats`] view) and in metric snapshots.
/// The latency sample vectors stay local: [`LatencySummary`] is defined by
/// **exact** nearest-rank percentiles over the raw samples, which a
/// fixed-bucket histogram cannot provide.
#[derive(Debug)]
pub(crate) struct StatsCollector {
    submitted: Counter,
    served: Counter,
    rejected: Counter,
    failed: Counter,
    expired: Counter,
    cancelled: Counter,
    queue_high_water: Gauge,
    latency_secs: Vec<f64>,
    queue_wait_secs: Vec<f64>,
    service_secs: Vec<f64>,
    batch_sizes: BTreeMap<usize, u64>,
    first_enqueue: Option<Instant>,
    last_complete: Option<Instant>,
}

impl Default for StatsCollector {
    fn default() -> Self {
        Self::new(&Telemetry::disabled())
    }
}

impl StatsCollector {
    /// Builds a collector whose counters live in `tel`'s registry — or, on
    /// a disabled handle, in a private registry of their own
    /// ([`Telemetry::or_private`]), so the [`ServerStats`] view works
    /// identically either way.
    pub(crate) fn new(tel: &Telemetry) -> Self {
        let tel = tel.or_private();
        Self {
            submitted: tel.counter("serve.submitted"),
            served: tel.counter("serve.served"),
            rejected: tel.counter("serve.rejected"),
            failed: tel.counter("serve.failed"),
            expired: tel.counter("serve.expired"),
            cancelled: tel.counter("serve.cancelled"),
            queue_high_water: tel.gauge("serve.queue_high_water"),
            latency_secs: Vec::new(),
            queue_wait_secs: Vec::new(),
            service_secs: Vec::new(),
            batch_sizes: BTreeMap::new(),
            first_enqueue: None,
            last_complete: None,
        }
    }

    /// Records one admission. `depth` is the pending-queue length with this
    /// request included, feeding the high-water gauge.
    pub(crate) fn record_submitted(&mut self, enqueued: Instant, depth: usize) {
        self.submitted.inc();
        self.queue_high_water.set_max(depth as u64);
        // Min, not first-recorded: concurrent submitters stamp `enqueued`
        // before racing for this lock, so arrival order here can invert
        // timestamp order — and an inflated window start would overstate
        // throughput.
        self.first_enqueue = Some(match self.first_enqueue {
            Some(prev) => prev.min(enqueued),
            None => enqueued,
        });
    }

    pub(crate) fn record_rejected(&mut self) {
        self.submitted.inc();
        self.rejected.inc();
    }

    pub(crate) fn record_expired(&mut self) {
        self.expired.inc();
    }

    pub(crate) fn record_cancelled(&mut self) {
        self.cancelled.inc();
    }

    /// Records one dispatched micro-batch: its size, outcome, and each
    /// request's (enqueue, dispatch, complete) timestamps.
    pub(crate) fn record_batch(
        &mut self,
        enqueues: &[Instant],
        dispatched: Instant,
        completed: Instant,
        succeeded: bool,
    ) {
        *self.batch_sizes.entry(enqueues.len()).or_insert(0) += 1;
        if !succeeded {
            self.failed.add(enqueues.len() as u64);
            return;
        }
        self.served.add(enqueues.len() as u64);
        for &enqueued in enqueues {
            self.latency_secs.push((completed - enqueued).as_secs_f64());
            self.queue_wait_secs
                .push((dispatched - enqueued).as_secs_f64());
            self.service_secs
                .push((completed - dispatched).as_secs_f64());
        }
        self.last_complete = Some(match self.last_complete {
            Some(prev) => prev.max(completed),
            None => completed,
        });
    }

    pub(crate) fn snapshot(&self) -> ServerStats {
        let wall = match (self.first_enqueue, self.last_complete) {
            (Some(first), Some(last)) => (last - first).as_secs_f64(),
            _ => 0.0,
        };
        let served = self.served.value();
        ServerStats {
            submitted: self.submitted.value(),
            served,
            rejected: self.rejected.value(),
            failed: self.failed.value(),
            expired: self.expired.value(),
            cancelled: self.cancelled.value(),
            latency: LatencySummary::from_samples_secs(&self.latency_secs),
            queue_wait: LatencySummary::from_samples_secs(&self.queue_wait_secs),
            service: LatencySummary::from_samples_secs(&self.service_secs),
            batch_histogram: self
                .batch_sizes
                .iter()
                .map(|(&size, &count)| BatchBucket { size, count })
                .collect(),
            throughput_rps: if wall > 0.0 {
                served as f64 / wall
            } else {
                0.0
            },
            queue_high_water: self.queue_high_water.value(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn percentiles_are_monotone_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64 / 1000.0).collect();
        let summary = LatencySummary::from_samples_secs(&samples);
        assert_eq!(summary.count, 100);
        assert_eq!(summary.p50_ms, 50.0);
        assert_eq!(summary.p95_ms, 95.0);
        assert_eq!(summary.p99_ms, 99.0);
        assert_eq!(summary.max_ms, 100.0);
        assert!(summary.p50_ms <= summary.p95_ms && summary.p95_ms <= summary.p99_ms);
    }

    #[test]
    fn single_sample_summary() {
        let summary = LatencySummary::from_samples_secs(&[0.002]);
        assert_eq!(summary.p50_ms, 2.0);
        assert_eq!(summary.p99_ms, 2.0);
        assert_eq!(LatencySummary::from_samples_secs(&[]).count, 0);
    }

    #[test]
    fn collector_accounts_every_request() {
        let mut collector = StatsCollector::default();
        let t0 = Instant::now();
        let enqueues = vec![t0, t0 + Duration::from_millis(1)];
        collector.record_submitted(enqueues[0], 1);
        collector.record_submitted(enqueues[1], 2);
        collector.record_rejected();
        collector.record_submitted(t0 + Duration::from_millis(2), 1);
        collector.record_expired();
        collector.record_submitted(t0 + Duration::from_millis(2), 1);
        collector.record_cancelled();
        collector.record_batch(
            &enqueues,
            t0 + Duration::from_millis(2),
            t0 + Duration::from_millis(5),
            true,
        );
        let stats = collector.snapshot();
        assert_eq!(stats.submitted, 5);
        assert_eq!(stats.served, 2);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.cancelled, 1);
        assert_eq!(
            stats.served + stats.rejected + stats.failed + stats.expired + stats.cancelled,
            stats.submitted
        );
        assert_eq!(
            stats.batch_histogram,
            vec![BatchBucket { size: 2, count: 1 }]
        );
        assert_eq!(stats.mean_batch_size(), 2.0);
        assert!(stats.throughput_rps > 0.0);
        assert!(stats.latency.p99_ms >= stats.latency.p50_ms);
        assert!(stats.latency.max_ms >= stats.queue_wait.max_ms);
        assert_eq!(stats.queue_high_water, 2);
    }

    #[test]
    fn collector_counters_surface_in_a_shared_registry() {
        let tel = Telemetry::enabled();
        let mut collector = StatsCollector::new(&tel);
        let t0 = Instant::now();
        collector.record_submitted(t0, 3);
        collector.record_rejected();
        collector.record_batch(&[t0], t0, t0 + Duration::from_millis(1), true);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("serve.submitted"), 2);
        assert_eq!(snap.counter("serve.served"), 1);
        assert_eq!(snap.counter("serve.rejected"), 1);
        assert_eq!(snap.gauge("serve.queue_high_water"), 3);
        // The ServerStats view reads from the same counters.
        let stats = collector.snapshot();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.queue_high_water, 3);
    }

    #[test]
    fn failed_batches_count_as_failed_not_served() {
        let mut collector = StatsCollector::default();
        let t0 = Instant::now();
        collector.record_submitted(t0, 1);
        collector.record_batch(&[t0], t0, t0, false);
        let stats = collector.snapshot();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.served, 0);
        assert_eq!(stats.latency.count, 0);
    }

    #[test]
    fn stats_serialize() {
        let stats = ServerStats {
            batch_histogram: vec![BatchBucket { size: 4, count: 9 }],
            ..ServerStats::default()
        };
        let json = serde_json::to_string(&stats).unwrap();
        let back: ServerStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
    }
}
