//! Server configuration.

use std::time::Duration;

use pf_core::{PfError, ServingSpec};

/// Configuration of a [`crate::Server`].
///
/// The serde-facing twin of this type is [`pf_core::ServingSpec`] (the
/// `[serving]` section of a scenario file); [`ServeConfig::from_spec`]
/// converts between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Largest micro-batch the batcher dispatches in one engine call.
    pub max_batch: usize,
    /// How long the batcher waits for more requests before dispatching a
    /// partial batch. `Duration::ZERO` dispatches whatever is queued the
    /// moment a worker picks work up — lowest latency, smallest batches.
    pub batch_timeout: Duration,
    /// Bounded queue depth: a request submitted while this many are already
    /// waiting is rejected with [`PfError::Overloaded`]. This is the
    /// server's only admission control — make it explicit in capacity
    /// planning rather than letting the queue grow without bound.
    pub queue_depth: usize,
    /// Number of batcher/dispatch worker threads. Each worker forms and
    /// dispatches its own micro-batches; more workers overlap engine calls
    /// at the cost of competing for the engine's internal parallelism.
    ///
    /// `0` auto-sizes the pool to compose with rayon's global pool rather
    /// than oversubscribe it — see [`ServeConfig::effective_workers`]. An
    /// explicit value is taken as-is (the operator may deliberately
    /// oversubscribe, e.g. when the engine blocks on I/O).
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::from_spec(&ServingSpec::default())
    }
}

impl ServeConfig {
    /// Builds the config from its declarative scenario form. The
    /// `[serving.router]` section, if any, belongs to the routing tier and
    /// is not part of a single server's config.
    pub fn from_spec(spec: &ServingSpec) -> Self {
        Self {
            max_batch: spec.max_batch,
            batch_timeout: Duration::from_micros(spec.batch_timeout_us),
            queue_depth: spec.queue_depth,
            workers: spec.workers,
        }
    }

    /// The declarative scenario form of this config (inverse of
    /// [`ServeConfig::from_spec`], up to sub-microsecond timeout
    /// truncation), with no router section.
    pub fn to_spec(&self) -> ServingSpec {
        ServingSpec {
            max_batch: self.max_batch,
            batch_timeout_us: self.batch_timeout.as_micros() as u64,
            queue_depth: self.queue_depth,
            workers: self.workers,
            router: None,
        }
    }

    /// The worker-thread count a server actually starts.
    ///
    /// An explicit `workers` value is returned unchanged. `workers == 0`
    /// auto-sizes so that the server composes with rayon's global pool
    /// instead of oversubscribing it: each dispatched batch fans out across
    /// rayon's threads, so running `host_threads / rayon_threads` workers
    /// (at least one) keeps `workers x rayon_threads <= host_threads`. With
    /// rayon at its default width this resolves to one worker; it grows
    /// when rayon's pool is deliberately narrowed (e.g. pinned to half the
    /// host) and batch-level parallelism can take up the slack.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        (host / rayon::current_num_threads().max(1)).max(1)
    }

    /// Checks the configuration's internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`PfError::InvalidScenario`] describing the first problem.
    pub fn validate(&self) -> Result<(), PfError> {
        // One source of truth for the constraints: the scenario spec.
        self.to_spec().validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid_and_match_the_spec_defaults() {
        let config = ServeConfig::default();
        config.validate().unwrap();
        assert_eq!(config, ServeConfig::from_spec(&ServingSpec::default()));
        assert_eq!(config.batch_timeout, Duration::from_micros(2_000));
        // to_spec is from_spec's inverse.
        assert_eq!(config.to_spec(), ServingSpec::default());
    }

    #[test]
    fn zero_knobs_are_rejected() {
        for break_it in [
            (|c: &mut ServeConfig| c.max_batch = 0) as fn(&mut ServeConfig),
            |c| c.queue_depth = 0,
        ] {
            let mut config = ServeConfig::default();
            break_it(&mut config);
            assert!(config.validate().is_err());
        }
        // A zero batch timeout is legal: immediate dispatch.
        let config = ServeConfig {
            batch_timeout: Duration::ZERO,
            ..ServeConfig::default()
        };
        config.validate().unwrap();
    }

    #[test]
    fn zero_workers_auto_sizes_against_rayon() {
        let config = ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        };
        // Auto-sizing is valid config, resolves to >= 1, and never
        // oversubscribes: workers x rayon threads <= host threads (unless
        // rayon alone already exceeds the host).
        config.validate().unwrap();
        let workers = config.effective_workers();
        assert!(workers >= 1);
        let host = std::thread::available_parallelism().unwrap().get();
        let rayon_threads = rayon::current_num_threads().max(1);
        if rayon_threads <= host {
            assert!(workers * rayon_threads <= host);
        }

        // An explicit count is never second-guessed.
        let explicit = ServeConfig {
            workers: 7,
            ..ServeConfig::default()
        };
        assert_eq!(explicit.effective_workers(), 7);
    }
}
