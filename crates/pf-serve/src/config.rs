//! Server configuration.

use std::time::Duration;

use pf_core::{PfError, ServingSpec};

/// A measured parallel-scaling data point for the engine behind a server:
/// how much faster one engine call runs on a `pool_threads`-wide rayon pool
/// than on one thread. Produced by a calibration run (the facade's
/// `serve::measured_scaling_hint`) or copied from a committed
/// `BENCH_throughput.json` `threads` curve; consumed by
/// [`ServeConfig::effective_workers`] to size the worker pool from the
/// engine's *measured* parallel benefit instead of assuming every engine
/// call saturates the whole pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingHint {
    /// Rayon pool width the speedup was measured at.
    pub pool_threads: usize,
    /// Measured speedup of one engine call at that width over one thread
    /// (`>= 1.0`; values below 1 are treated as 1 — parallelism that loses
    /// outright consumes one thread's worth of host).
    pub speedup: f64,
}

impl ScalingHint {
    /// How many host threads one engine call effectively occupies: the
    /// measured speedup, clamped to `[1, pool_threads]` and rounded up. An
    /// engine reaching 3.2x on a 4-wide pool occupies 4 threads' worth of
    /// host; one reaching 1.3x occupies 2 — the remaining cores are better
    /// spent on more concurrent batches.
    pub fn effective_width(&self) -> usize {
        let ceiling = self.pool_threads.max(1) as f64;
        self.speedup.clamp(1.0, ceiling).ceil() as usize
    }
}

/// Configuration of a [`crate::Server`].
///
/// The serde-facing twin of this type is [`pf_core::ServingSpec`] (the
/// `[serving]` section of a scenario file); [`ServeConfig::from_spec`]
/// converts between them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Largest micro-batch the batcher dispatches in one engine call.
    pub max_batch: usize,
    /// How long the batcher waits for more requests before dispatching a
    /// partial batch. `Duration::ZERO` dispatches whatever is queued the
    /// moment a worker picks work up — lowest latency, smallest batches.
    pub batch_timeout: Duration,
    /// Bounded queue depth: a request submitted while this many are already
    /// waiting is rejected with [`PfError::Overloaded`]. This is the
    /// server's only admission control — make it explicit in capacity
    /// planning rather than letting the queue grow without bound.
    pub queue_depth: usize,
    /// Number of batcher/dispatch worker threads. Each worker forms and
    /// dispatches its own micro-batches; more workers overlap engine calls
    /// at the cost of competing for the engine's internal parallelism.
    ///
    /// `0` auto-sizes the pool to compose with rayon's global pool rather
    /// than oversubscribe it — see [`ServeConfig::effective_workers`]. An
    /// explicit value is taken as-is (the operator may deliberately
    /// oversubscribe, e.g. when the engine blocks on I/O).
    pub workers: usize,
    /// Measured parallel-scaling hint for the engine, if a calibration ran.
    /// Only consulted by auto-sizing (`workers == 0`); carries no
    /// declarative form — the `[serving]` scenario section describes
    /// intent, a hint describes a measurement — so [`ServeConfig::to_spec`]
    /// drops it and [`ServeConfig::from_spec`] starts without one.
    pub scaling_hint: Option<ScalingHint>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::from_spec(&ServingSpec::default())
    }
}

impl ServeConfig {
    /// Builds the config from its declarative scenario form. The
    /// `[serving.router]` section, if any, belongs to the routing tier and
    /// is not part of a single server's config.
    pub fn from_spec(spec: &ServingSpec) -> Self {
        Self {
            max_batch: spec.max_batch,
            batch_timeout: Duration::from_micros(spec.batch_timeout_us),
            queue_depth: spec.queue_depth,
            workers: spec.workers,
            scaling_hint: None,
        }
    }

    /// Attaches a measured scaling hint (see [`ScalingHint`]).
    pub fn with_scaling_hint(mut self, hint: ScalingHint) -> Self {
        self.scaling_hint = Some(hint);
        self
    }

    /// The declarative scenario form of this config (inverse of
    /// [`ServeConfig::from_spec`], up to sub-microsecond timeout
    /// truncation), with no router section.
    pub fn to_spec(&self) -> ServingSpec {
        ServingSpec {
            max_batch: self.max_batch,
            batch_timeout_us: self.batch_timeout.as_micros() as u64,
            queue_depth: self.queue_depth,
            workers: self.workers,
            router: None,
        }
    }

    /// The worker-thread count a server actually starts.
    ///
    /// An explicit `workers` value is returned unchanged. `workers == 0`
    /// auto-sizes so that the server composes with rayon's pool instead of
    /// oversubscribing it. Without a [`ScalingHint`] that means assuming
    /// each dispatched batch saturates the pool: `host_threads /
    /// rayon_threads` workers (at least one) keeps `workers x rayon_threads
    /// <= host_threads`. With a hint the divisor is the engine's *measured*
    /// [`ScalingHint::effective_width`] — an engine whose batches only
    /// reach, say, 1.3x on the pool occupies ~2 threads' worth of host, so
    /// more workers fit before anything actually contends. The hint-based
    /// sizing is what the scaling curves in `BENCH_throughput.json` feed
    /// (see `docs/PERFORMANCE.md`, "Reading the scaling curves").
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let per_batch_width = match self.scaling_hint {
            Some(hint) => hint.effective_width(),
            None => rayon::current_num_threads(),
        };
        (host / per_batch_width.max(1)).max(1)
    }

    /// Checks the configuration's internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`PfError::InvalidScenario`] describing the first problem.
    pub fn validate(&self) -> Result<(), PfError> {
        // One source of truth for the constraints: the scenario spec.
        self.to_spec().validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid_and_match_the_spec_defaults() {
        let config = ServeConfig::default();
        config.validate().unwrap();
        assert_eq!(config, ServeConfig::from_spec(&ServingSpec::default()));
        assert_eq!(config.batch_timeout, Duration::from_micros(2_000));
        // to_spec is from_spec's inverse.
        assert_eq!(config.to_spec(), ServingSpec::default());
    }

    #[test]
    fn zero_knobs_are_rejected() {
        for break_it in [
            (|c: &mut ServeConfig| c.max_batch = 0) as fn(&mut ServeConfig),
            |c| c.queue_depth = 0,
        ] {
            let mut config = ServeConfig::default();
            break_it(&mut config);
            assert!(config.validate().is_err());
        }
        // A zero batch timeout is legal: immediate dispatch.
        let config = ServeConfig {
            batch_timeout: Duration::ZERO,
            ..ServeConfig::default()
        };
        config.validate().unwrap();
    }

    #[test]
    fn zero_workers_auto_sizes_against_rayon() {
        let config = ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        };
        // Auto-sizing is valid config, resolves to >= 1, and never
        // oversubscribes: workers x rayon threads <= host threads (unless
        // rayon alone already exceeds the host).
        config.validate().unwrap();
        let workers = config.effective_workers();
        assert!(workers >= 1);
        let host = std::thread::available_parallelism().unwrap().get();
        let rayon_threads = rayon::current_num_threads().max(1);
        if rayon_threads <= host {
            assert!(workers * rayon_threads <= host);
        }

        // An explicit count is never second-guessed.
        let explicit = ServeConfig {
            workers: 7,
            ..ServeConfig::default()
        };
        assert_eq!(explicit.effective_workers(), 7);
    }

    #[test]
    fn scaling_hint_effective_width_clamps_and_rounds_up() {
        // 1.3x on a 4-wide pool: the pool only really uses ~2 threads.
        let weak = ScalingHint {
            pool_threads: 4,
            speedup: 1.3,
        };
        assert_eq!(weak.effective_width(), 2);
        // 3.2x: rounds up to the full pool.
        let strong = ScalingHint {
            pool_threads: 4,
            speedup: 3.2,
        };
        assert_eq!(strong.effective_width(), 4);
        // Sub-1x measurements (parallelism lost) still occupy one thread.
        let losing = ScalingHint {
            pool_threads: 4,
            speedup: 0.7,
        };
        assert_eq!(losing.effective_width(), 1);
        // The speedup can never claim more than the pool width.
        let impossible = ScalingHint {
            pool_threads: 2,
            speedup: 9.0,
        };
        assert_eq!(impossible.effective_width(), 2);
    }

    #[test]
    fn scaling_hint_redirects_auto_sizing() {
        let host = std::thread::available_parallelism().unwrap().get();
        // A perfectly-scaling engine on a host-wide pool: one worker.
        let saturating = ServeConfig::default().with_scaling_hint(ScalingHint {
            pool_threads: host,
            speedup: host as f64,
        });
        assert_eq!(saturating.effective_workers(), 1.max(host / host));
        // An engine that gains nothing from its pool: one worker per host
        // thread — batch-level concurrency is the only parallelism left.
        let flat = ServeConfig::default().with_scaling_hint(ScalingHint {
            pool_threads: host,
            speedup: 1.0,
        });
        assert_eq!(flat.effective_workers(), host);
        // Hints never override an explicit worker count.
        let explicit = ServeConfig {
            workers: 3,
            ..ServeConfig::default()
        }
        .with_scaling_hint(ScalingHint {
            pool_threads: 4,
            speedup: 4.0,
        });
        assert_eq!(explicit.effective_workers(), 3);
        // from_spec starts hint-less and to_spec drops the hint (it is a
        // measurement, not declarative intent).
        assert!(ServeConfig::from_spec(&ServingSpec::default())
            .scaling_hint
            .is_none());
        assert_eq!(flat.to_spec(), ServingSpec::default());
    }
}
