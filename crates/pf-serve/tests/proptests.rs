//! Property tests of fault containment: an engine that panics or returns
//! errors — at any batch size, worker count or fault cadence — must never
//! leave a ticket unresolved or kill a worker thread. Every submitted
//! request resolves (served or with a typed error), and shutdown still
//! joins every worker cleanly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use pf_core::PfError;
use pf_serve::{InferenceEngine, ServeConfig, Server};
use proptest::prelude::*;

/// Doubles inputs, but panics on every `panic_every`-th batch and errors
/// on every `error_every`-th (0 disables a fault). The two cadences are
/// checked against a shared batch counter, so any mix of healthy, erroring
/// and panicking batches can occur in one run.
#[derive(Debug)]
struct HostileEngine {
    batches: AtomicU64,
    panic_every: u64,
    error_every: u64,
}

impl InferenceEngine for HostileEngine {
    type Request = f64;
    type Response = f64;

    fn infer_batch(&self, inputs: &[f64], _seqs: &[u64]) -> Result<Vec<f64>, PfError> {
        let n = self.batches.fetch_add(1, Ordering::Relaxed);
        if self.panic_every > 0 && n.is_multiple_of(self.panic_every) {
            panic!("proptest: hostile engine panicking on batch {n}");
        }
        if self.error_every > 0 && n % self.error_every == 1 {
            return Err(PfError::FaultInjected {
                kind: "transient_error",
            });
        }
        Ok(inputs.iter().map(|x| x * 2.0).collect())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hostile_engines_leave_no_ticket_unresolved(
        max_batch in 1usize..=4,
        workers in 1usize..=2,
        requests in 1usize..=24,
        panic_every in 0u64..=3,
        error_every in 0u64..=3,
    ) {
        let server = Server::new(
            HostileEngine {
                batches: AtomicU64::new(0),
                panic_every,
                error_every,
            },
            ServeConfig {
                max_batch,
                batch_timeout: Duration::ZERO,
                queue_depth: 64,
                workers,
                scaling_hint: None,
            },
        ).unwrap();

        let tickets: Vec<_> = (0..requests)
            .map(|i| server.submit(i as f64).unwrap())
            .collect();

        // Every ticket resolves: a served double, or a typed error from
        // the failed batch (engine panics are caught per batch and
        // surfaced as errors, never as hangs).
        let mut served = 0u64;
        for (i, ticket) in tickets.into_iter().enumerate() {
            match ticket.wait() {
                Ok(v) => {
                    prop_assert_eq!(v, i as f64 * 2.0);
                    served += 1;
                }
                Err(PfError::FaultInjected { .. }) | Err(PfError::InvalidScenario { .. }) => {}
                Err(e) => prop_assert!(false, "unexpected error: {}", e),
            }
        }

        // Injected engine faults never take a worker thread down, so
        // shutdown joins everything and the accounting closes.
        let stats = server.shutdown().unwrap();
        prop_assert_eq!(stats.submitted, requests as u64);
        prop_assert_eq!(stats.served, served);
        prop_assert_eq!(stats.served + stats.failed, requests as u64);
    }
}
