//! Behavioural tests of the micro-batching server against mock engines.
//!
//! The mocks make the asynchronous parts deterministic: a *gated* engine
//! blocks inside `infer_batch` until the test grants it a permit, so the
//! test controls exactly which requests are queued while a batch is in
//! flight (overload, batch-formation, deadline-expiry and histogram
//! assertions all hinge on that). Payloads are plain `f64`s — the server is
//! generic, and scalar mocks keep the invariants in plain sight.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use pf_core::PfError;
use pf_serve::{InferenceEngine, ServeConfig, Server};

/// Doubles every input; records the seqs it was handed.
#[derive(Debug, Default)]
struct EchoEngine {
    seen_seqs: Mutex<Vec<u64>>,
    calls: AtomicUsize,
}

impl InferenceEngine for EchoEngine {
    type Request = f64;
    type Response = f64;

    fn infer_batch(&self, inputs: &[f64], seqs: &[u64]) -> Result<Vec<f64>, PfError> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.seen_seqs.lock().extend_from_slice(seqs);
        Ok(inputs.iter().map(|x| x * 2.0).collect())
    }
}

/// Blocks inside `infer_batch` until the test grants a permit; signals the
/// test (with the batch size) the moment a batch arrives.
#[derive(Debug)]
struct GatedEngine {
    entered: Mutex<mpsc::Sender<usize>>,
    permits: Mutex<usize>,
    released: Condvar,
    seen_seqs: Mutex<Vec<u64>>,
}

impl GatedEngine {
    fn new() -> (Arc<Self>, mpsc::Receiver<usize>) {
        let (tx, rx) = mpsc::channel();
        (
            Arc::new(Self {
                entered: Mutex::new(tx),
                permits: Mutex::new(0),
                released: Condvar::new(),
                seen_seqs: Mutex::new(Vec::new()),
            }),
            rx,
        )
    }

    fn grant(&self, permits: usize) {
        *self.permits.lock() += permits;
        self.released.notify_all();
    }
}

impl InferenceEngine for GatedEngine {
    type Request = f64;
    type Response = f64;

    fn infer_batch(&self, inputs: &[f64], seqs: &[u64]) -> Result<Vec<f64>, PfError> {
        self.entered.lock().send(inputs.len()).expect("test alive");
        let mut permits = self.permits.lock();
        while *permits == 0 {
            permits = self.released.wait(permits);
        }
        *permits -= 1;
        drop(permits);
        self.seen_seqs.lock().extend_from_slice(seqs);
        Ok(inputs.to_vec())
    }
}

/// Always errors.
#[derive(Debug)]
struct FailingEngine;

impl InferenceEngine for FailingEngine {
    type Request = f64;
    type Response = f64;

    fn infer_batch(&self, _inputs: &[f64], _seqs: &[u64]) -> Result<Vec<f64>, PfError> {
        Err(PfError::invalid_scenario("engine down"))
    }
}

/// Panics on the first batch, then echoes.
#[derive(Debug, Default)]
struct PanicOnceEngine {
    panicked: AtomicUsize,
}

impl InferenceEngine for PanicOnceEngine {
    type Request = f64;
    type Response = f64;

    fn infer_batch(&self, inputs: &[f64], _seqs: &[u64]) -> Result<Vec<f64>, PfError> {
        if self.panicked.fetch_add(1, Ordering::Relaxed) == 0 {
            panic!("engine blew up");
        }
        Ok(inputs.to_vec())
    }
}

fn quick_config() -> ServeConfig {
    ServeConfig {
        max_batch: 4,
        batch_timeout: Duration::from_micros(500),
        queue_depth: 64,
        workers: 1,
        scaling_hint: None,
    }
}

fn five_way(stats: &pf_serve::ServerStats) -> u64 {
    stats.served + stats.rejected + stats.failed + stats.expired + stats.cancelled
}

#[test]
fn submit_blocking_round_trips() {
    let server = Server::new(EchoEngine::default(), quick_config()).unwrap();
    let out = server.submit_blocking(21.0).unwrap();
    assert_eq!(out, 42.0);
    let stats = server.shutdown().unwrap();
    assert_eq!(stats.submitted, 1);
    assert_eq!(stats.served, 1);
    assert_eq!(stats.rejected, 0);
}

#[test]
fn every_ticket_resolves_and_seqs_are_submission_order() {
    let server = Server::new(EchoEngine::default(), quick_config()).unwrap();
    let tickets: Vec<_> = (0..20).map(|i| server.submit(i as f64).unwrap()).collect();
    for (i, ticket) in tickets.iter().enumerate() {
        assert_eq!(ticket.seq(), i as u64);
    }
    for (i, ticket) in tickets.into_iter().enumerate() {
        assert_eq!(ticket.wait().unwrap(), i as f64 * 2.0);
    }
    let stats = server.shutdown().unwrap();
    assert_eq!(stats.served, 20);
    assert_eq!(five_way(&stats), stats.submitted);
}

#[test]
fn engine_sees_every_seq_exactly_once() {
    let engine = Arc::new(EchoEngine::default());
    let server = Server::new(Arc::clone(&engine), quick_config()).unwrap();
    let tickets: Vec<_> = (0..16).map(|i| server.submit(i as f64).unwrap()).collect();
    for ticket in tickets {
        ticket.wait().unwrap();
    }
    server.shutdown().unwrap();
    let mut seqs = engine.seen_seqs.lock().clone();
    seqs.sort_unstable();
    assert_eq!(seqs, (0..16).collect::<Vec<u64>>());
}

#[test]
fn overload_is_deterministic_and_explicit() {
    let (engine, entered) = GatedEngine::new();
    let config = ServeConfig {
        max_batch: 1,
        batch_timeout: Duration::ZERO,
        queue_depth: 2,
        workers: 1,
        scaling_hint: None,
    };
    let server = Server::new(Arc::clone(&engine), config).unwrap();

    // First request is picked up by the worker and blocks in the engine...
    let t1 = server.submit(1.0).unwrap();
    assert_eq!(entered.recv().unwrap(), 1);
    // ...so these two fill the queue exactly to its depth...
    let t2 = server.submit(2.0).unwrap();
    let t3 = server.submit(3.0).unwrap();
    assert_eq!(server.queue_len(), 2);
    // ...and the next admission must be rejected.
    match server.submit(4.0) {
        Err(PfError::Overloaded { queued, limit }) => {
            assert_eq!(queued, 2);
            assert_eq!(limit, 2);
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }

    engine.grant(3);
    assert_eq!(entered.recv().unwrap(), 1);
    assert_eq!(entered.recv().unwrap(), 1);
    assert_eq!(t1.wait().unwrap(), 1.0);
    assert_eq!(t2.wait().unwrap(), 2.0);
    assert_eq!(t3.wait().unwrap(), 3.0);

    let stats = server.shutdown().unwrap();
    assert_eq!(stats.submitted, 4);
    assert_eq!(stats.served, 3);
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.failed, 0);
    assert_eq!(five_way(&stats), stats.submitted);
}

#[test]
fn batcher_forms_micro_batches_up_to_max_batch() {
    let (engine, entered) = GatedEngine::new();
    let config = ServeConfig {
        max_batch: 4,
        batch_timeout: Duration::from_millis(5),
        queue_depth: 64,
        workers: 1,
        scaling_hint: None,
    };
    let server = Server::new(Arc::clone(&engine), config).unwrap();

    // Lone request: dispatched as a batch of 1 once its formation window
    // lapses; the engine then blocks, so everything submitted next queues up.
    let t0 = server.submit(0.0).unwrap();
    assert_eq!(entered.recv().unwrap(), 1);
    let tickets: Vec<_> = (1..=8).map(|i| server.submit(i as f64).unwrap()).collect();

    // Release batch 1, then the two full batches of 4.
    engine.grant(3);
    assert_eq!(entered.recv().unwrap(), 4);
    assert_eq!(entered.recv().unwrap(), 4);
    t0.wait().unwrap();
    for ticket in tickets {
        ticket.wait().unwrap();
    }

    let stats = server.shutdown().unwrap();
    assert_eq!(stats.served, 9);
    let histogram: Vec<(usize, u64)> = stats
        .batch_histogram
        .iter()
        .map(|b| (b.size, b.count))
        .collect();
    assert_eq!(histogram, vec![(1, 1), (4, 2)]);
    assert!(stats.mean_batch_size() > 1.0);
    assert!(stats.latency.p99_ms >= stats.latency.p50_ms);
}

#[test]
fn shutdown_drains_every_accepted_request() {
    let server = Server::new(EchoEngine::default(), quick_config()).unwrap();
    let tickets: Vec<_> = (0..50).map(|i| server.submit(i as f64).unwrap()).collect();
    let stats = server.shutdown().unwrap();
    assert_eq!(stats.served, 50);
    // Every ticket is already resolved — no blocking possible here.
    for (i, ticket) in tickets.into_iter().enumerate() {
        let result = ticket.try_take().expect("resolved by shutdown");
        assert_eq!(result.unwrap(), i as f64 * 2.0);
    }
}

#[test]
fn mid_flight_snapshot_settles_at_shutdown() {
    let server = Server::new(EchoEngine::default(), quick_config()).unwrap();
    let _ = server.submit_blocking(1.0).unwrap();
    let snapshot = server.stats();
    assert_eq!(snapshot.submitted, 1);
    assert_eq!(snapshot.served, 1);
    let stats = server.shutdown().unwrap();
    assert_eq!(stats, snapshot, "nothing submitted in between");
}

#[test]
fn engine_errors_fail_the_batch_but_keep_accounting() {
    let server = Server::new(FailingEngine, quick_config()).unwrap();
    let t = server.submit(1.0).unwrap();
    assert!(t.wait().is_err());
    let stats = server.shutdown().unwrap();
    assert_eq!(stats.submitted, 1);
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.served, 0);
    assert_eq!(five_way(&stats), stats.submitted);
}

#[test]
fn engine_panics_fail_the_batch_without_stranding_anyone() {
    let server = Server::new(PanicOnceEngine::default(), quick_config()).unwrap();
    // First request hits the panicking batch: its ticket must still
    // resolve (to an error), not hang.
    let err = server.submit_blocking(1.0).unwrap_err();
    assert!(err.to_string().contains("panicked"), "{err}");
    // The worker survived: the server keeps serving.
    assert_eq!(server.submit_blocking(2.0).unwrap(), 2.0);
    let stats = server.shutdown().unwrap();
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.served, 1);
    assert_eq!(five_way(&stats), stats.submitted);
}

#[test]
fn multiple_workers_serve_concurrently() {
    let engine = Arc::new(EchoEngine::default());
    let config = ServeConfig {
        workers: 3,
        ..quick_config()
    };
    let server = Server::new(Arc::clone(&engine), config).unwrap();
    std::thread::scope(|scope| {
        for w in 0..3 {
            let server = &server;
            scope.spawn(move || {
                for i in 0..10 {
                    let v = (w * 100 + i) as f64;
                    assert_eq!(server.submit_blocking(v).unwrap(), v * 2.0);
                }
            });
        }
    });
    let stats = server.shutdown().unwrap();
    assert_eq!(stats.served, 30);
    assert_eq!(stats.rejected, 0);
    let mut seqs = engine.seen_seqs.lock().clone();
    seqs.sort_unstable();
    assert_eq!(seqs, (0..30).collect::<Vec<u64>>());
}

#[test]
fn non_tensor_payloads_are_first_class() {
    /// The server is generic: a request can carry routing metadata.
    #[derive(Debug)]
    struct KeyedEngine;
    impl InferenceEngine for KeyedEngine {
        type Request = (u64, String);
        type Response = String;

        fn infer_batch(
            &self,
            inputs: &[(u64, String)],
            _seqs: &[u64],
        ) -> Result<Vec<String>, PfError> {
            Ok(inputs.iter().map(|(k, s)| format!("{k}:{s}")).collect())
        }
    }

    let server = Server::new(KeyedEngine, quick_config()).unwrap();
    let out = server.submit_blocking((7, "img".into())).unwrap();
    assert_eq!(out, "7:img");
    server.shutdown().unwrap();
}

#[test]
fn expired_requests_are_never_dispatched() {
    let (engine, entered) = GatedEngine::new();
    let config = ServeConfig {
        max_batch: 1,
        batch_timeout: Duration::ZERO,
        queue_depth: 16,
        workers: 1,
        scaling_hint: None,
    };
    let server = Server::new(Arc::clone(&engine), config).unwrap();

    // Occupy the worker so the deadlined request stays queued...
    let blocker = server.submit(1.0).unwrap();
    assert_eq!(entered.recv().unwrap(), 1);
    // ...with a deadline that is already in the past.
    let doomed = server
        .submit_with_deadline(2.0, Some(Instant::now() - Duration::from_millis(1)))
        .unwrap();
    let live = server.submit(3.0).unwrap();

    engine.grant(3);
    match doomed.wait() {
        Err(PfError::DeadlineExceeded { stage }) => assert_eq!(stage, "queued"),
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert_eq!(blocker.wait().unwrap(), 1.0);
    assert_eq!(live.wait().unwrap(), 3.0);

    let stats = server.shutdown().unwrap();
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.served, 2);
    assert_eq!(stats.failed, 0);
    assert_eq!(five_way(&stats), stats.submitted);
    // The engine saw seqs 0 and 2 only — the expired request (seq 1) was
    // dropped at batch formation, not dispatched.
    let mut seqs = engine.seen_seqs.lock().clone();
    seqs.sort_unstable();
    assert_eq!(seqs, vec![0, 2]);
}

#[test]
fn wait_deadline_returns_in_time_when_result_is_ready() {
    let server = Server::new(EchoEngine::default(), quick_config()).unwrap();
    let ticket = server.submit(5.0).unwrap();
    let out = ticket.wait_deadline(Duration::from_secs(10)).unwrap();
    assert_eq!(out, 10.0);
    let stats = server.shutdown().unwrap();
    assert_eq!(stats.served, 1);
    assert_eq!(stats.cancelled, 0);
}

#[test]
fn abandoned_tickets_are_cancelled_not_failed() {
    let (engine, entered) = GatedEngine::new();
    let config = ServeConfig {
        max_batch: 1,
        batch_timeout: Duration::ZERO,
        queue_depth: 16,
        workers: 1,
        scaling_hint: None,
    };
    let server = Server::new(Arc::clone(&engine), config).unwrap();

    // Occupy the worker, then abandon a queued request.
    let blocker = server.submit(1.0).unwrap();
    assert_eq!(entered.recv().unwrap(), 1);
    let abandoned = server.submit(2.0).unwrap();
    match abandoned.wait_deadline(Duration::from_millis(5)) {
        Err(PfError::DeadlineExceeded { stage }) => assert_eq!(stage, "abandoned"),
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }

    engine.grant(2);
    assert_eq!(blocker.wait().unwrap(), 1.0);
    let stats = server.shutdown().unwrap();
    assert_eq!(stats.cancelled, 1, "slot reclaimed, counted as cancelled");
    assert_eq!(stats.failed, 0, "a client timeout is not an engine failure");
    assert_eq!(stats.served, 1);
    assert_eq!(five_way(&stats), stats.submitted);
    // The abandoned request (seq 1) never reached the engine.
    let mut seqs = engine.seen_seqs.lock().clone();
    seqs.sort_unstable();
    assert_eq!(seqs, vec![0]);
}

#[test]
fn wait_timed_reports_the_completion_instant() {
    let server = Server::new(EchoEngine::default(), quick_config()).unwrap();
    let before = Instant::now();
    let ticket = server.submit(1.0).unwrap();
    // Give the request time to complete *before* we wait, then check the
    // stamped instant reflects completion, not observation.
    std::thread::sleep(Duration::from_millis(20));
    let observed = Instant::now();
    let (result, completed) = ticket.wait_timed();
    assert_eq!(result.unwrap(), 2.0);
    assert!(completed >= before);
    assert!(
        completed <= observed,
        "completion was stamped when the engine finished, not when wait_timed ran"
    );
    server.shutdown().unwrap();
}

#[test]
fn batch_window_is_adjustable_and_capped() {
    let server = Server::new(EchoEngine::default(), quick_config()).unwrap();
    assert_eq!(server.batch_window(), quick_config().batch_timeout);
    server.set_batch_window(Duration::ZERO);
    assert_eq!(server.batch_window(), Duration::ZERO);
    // Requests still serve with a zero window (immediate dispatch).
    assert_eq!(server.submit_blocking(4.0).unwrap(), 8.0);
    // The window can only shrink relative to the configured timeout.
    server.set_batch_window(Duration::from_secs(60));
    assert_eq!(server.batch_window(), quick_config().batch_timeout);
    server.shutdown().unwrap();
}

#[test]
fn auto_sized_workers_still_serve() {
    let config = ServeConfig {
        workers: 0,
        ..quick_config()
    };
    let server = Server::new(EchoEngine::default(), config).unwrap();
    assert_eq!(server.submit_blocking(3.0).unwrap(), 6.0);
    let stats = server.shutdown().unwrap();
    assert_eq!(stats.served, 1);
}
