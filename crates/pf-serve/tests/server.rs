//! Behavioural tests of the micro-batching server against mock engines.
//!
//! The mocks make the asynchronous parts deterministic: a *gated* engine
//! blocks inside `infer_batch` until the test grants it a permit, so the
//! test controls exactly which requests are queued while a batch is in
//! flight (overload, batch-formation and histogram assertions all hinge on
//! that).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use pf_core::PfError;
use pf_nn::Tensor;
use pf_serve::{InferenceEngine, ServeConfig, Server};

fn scalar(v: f64) -> Tensor {
    Tensor::new(vec![1], vec![v]).unwrap()
}

/// Doubles every input; records the seqs it was handed.
#[derive(Debug, Default)]
struct EchoEngine {
    seen_seqs: Mutex<Vec<u64>>,
    calls: AtomicUsize,
}

impl InferenceEngine for EchoEngine {
    fn infer_batch(&self, inputs: &[Tensor], seqs: &[u64]) -> Result<Vec<Tensor>, PfError> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.seen_seqs.lock().extend_from_slice(seqs);
        Ok(inputs.iter().map(|t| t.map(|x| x * 2.0)).collect())
    }
}

/// Blocks inside `infer_batch` until the test grants a permit; signals the
/// test (with the batch size) the moment a batch arrives.
#[derive(Debug)]
struct GatedEngine {
    entered: Mutex<mpsc::Sender<usize>>,
    permits: Mutex<usize>,
    released: Condvar,
}

impl GatedEngine {
    fn new() -> (Arc<Self>, mpsc::Receiver<usize>) {
        let (tx, rx) = mpsc::channel();
        (
            Arc::new(Self {
                entered: Mutex::new(tx),
                permits: Mutex::new(0),
                released: Condvar::new(),
            }),
            rx,
        )
    }

    fn grant(&self, permits: usize) {
        *self.permits.lock() += permits;
        self.released.notify_all();
    }
}

impl InferenceEngine for GatedEngine {
    fn infer_batch(&self, inputs: &[Tensor], _seqs: &[u64]) -> Result<Vec<Tensor>, PfError> {
        self.entered.lock().send(inputs.len()).expect("test alive");
        let mut permits = self.permits.lock();
        while *permits == 0 {
            permits = self.released.wait(permits);
        }
        *permits -= 1;
        drop(permits);
        Ok(inputs.to_vec())
    }
}

/// Always errors.
#[derive(Debug)]
struct FailingEngine;

impl InferenceEngine for FailingEngine {
    fn infer_batch(&self, _inputs: &[Tensor], _seqs: &[u64]) -> Result<Vec<Tensor>, PfError> {
        Err(PfError::invalid_scenario("engine down"))
    }
}

/// Panics on the first batch, then echoes.
#[derive(Debug, Default)]
struct PanicOnceEngine {
    panicked: AtomicUsize,
}

impl InferenceEngine for PanicOnceEngine {
    fn infer_batch(&self, inputs: &[Tensor], _seqs: &[u64]) -> Result<Vec<Tensor>, PfError> {
        if self.panicked.fetch_add(1, Ordering::Relaxed) == 0 {
            panic!("engine blew up");
        }
        Ok(inputs.to_vec())
    }
}

fn quick_config() -> ServeConfig {
    ServeConfig {
        max_batch: 4,
        batch_timeout: Duration::from_micros(500),
        queue_depth: 64,
        workers: 1,
    }
}

#[test]
fn submit_blocking_round_trips() {
    let server = Server::new(EchoEngine::default(), quick_config()).unwrap();
    let out = server.submit_blocking(scalar(21.0)).unwrap();
    assert_eq!(out, scalar(42.0));
    let stats = server.shutdown();
    assert_eq!(stats.submitted, 1);
    assert_eq!(stats.served, 1);
    assert_eq!(stats.rejected, 0);
}

#[test]
fn every_ticket_resolves_and_seqs_are_submission_order() {
    let server = Server::new(EchoEngine::default(), quick_config()).unwrap();
    let tickets: Vec<_> = (0..20)
        .map(|i| server.submit(scalar(i as f64)).unwrap())
        .collect();
    for (i, ticket) in tickets.iter().enumerate() {
        assert_eq!(ticket.seq(), i as u64);
    }
    for (i, ticket) in tickets.into_iter().enumerate() {
        assert_eq!(ticket.wait().unwrap(), scalar(i as f64 * 2.0));
    }
    let stats = server.shutdown();
    assert_eq!(stats.served, 20);
    assert_eq!(
        stats.served + stats.rejected + stats.failed,
        stats.submitted
    );
}

#[test]
fn engine_sees_every_seq_exactly_once() {
    let engine = Arc::new(EchoEngine::default());
    let server = Server::new(Arc::clone(&engine), quick_config()).unwrap();
    let tickets: Vec<_> = (0..16)
        .map(|i| server.submit(scalar(i as f64)).unwrap())
        .collect();
    for ticket in tickets {
        ticket.wait().unwrap();
    }
    server.shutdown();
    let mut seqs = engine.seen_seqs.lock().clone();
    seqs.sort_unstable();
    assert_eq!(seqs, (0..16).collect::<Vec<u64>>());
}

#[test]
fn overload_is_deterministic_and_explicit() {
    let (engine, entered) = GatedEngine::new();
    let config = ServeConfig {
        max_batch: 1,
        batch_timeout: Duration::ZERO,
        queue_depth: 2,
        workers: 1,
    };
    let server = Server::new(Arc::clone(&engine), config).unwrap();

    // First request is picked up by the worker and blocks in the engine...
    let t1 = server.submit(scalar(1.0)).unwrap();
    assert_eq!(entered.recv().unwrap(), 1);
    // ...so these two fill the queue exactly to its depth...
    let t2 = server.submit(scalar(2.0)).unwrap();
    let t3 = server.submit(scalar(3.0)).unwrap();
    assert_eq!(server.queue_len(), 2);
    // ...and the next admission must be rejected.
    match server.submit(scalar(4.0)) {
        Err(PfError::Overloaded { queued, limit }) => {
            assert_eq!(queued, 2);
            assert_eq!(limit, 2);
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }

    engine.grant(3);
    assert_eq!(entered.recv().unwrap(), 1);
    assert_eq!(entered.recv().unwrap(), 1);
    assert_eq!(t1.wait().unwrap(), scalar(1.0));
    assert_eq!(t2.wait().unwrap(), scalar(2.0));
    assert_eq!(t3.wait().unwrap(), scalar(3.0));

    let stats = server.shutdown();
    assert_eq!(stats.submitted, 4);
    assert_eq!(stats.served, 3);
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.failed, 0);
    assert_eq!(
        stats.served + stats.rejected + stats.failed,
        stats.submitted
    );
}

#[test]
fn batcher_forms_micro_batches_up_to_max_batch() {
    let (engine, entered) = GatedEngine::new();
    let config = ServeConfig {
        max_batch: 4,
        batch_timeout: Duration::from_millis(5),
        queue_depth: 64,
        workers: 1,
    };
    let server = Server::new(Arc::clone(&engine), config).unwrap();

    // Lone request: dispatched as a batch of 1 once its formation window
    // lapses; the engine then blocks, so everything submitted next queues up.
    let t0 = server.submit(scalar(0.0)).unwrap();
    assert_eq!(entered.recv().unwrap(), 1);
    let tickets: Vec<_> = (1..=8)
        .map(|i| server.submit(scalar(i as f64)).unwrap())
        .collect();

    // Release batch 1, then the two full batches of 4.
    engine.grant(3);
    assert_eq!(entered.recv().unwrap(), 4);
    assert_eq!(entered.recv().unwrap(), 4);
    t0.wait().unwrap();
    for ticket in tickets {
        ticket.wait().unwrap();
    }

    let stats = server.shutdown();
    assert_eq!(stats.served, 9);
    let histogram: Vec<(usize, u64)> = stats
        .batch_histogram
        .iter()
        .map(|b| (b.size, b.count))
        .collect();
    assert_eq!(histogram, vec![(1, 1), (4, 2)]);
    assert!(stats.mean_batch_size() > 1.0);
    assert!(stats.latency.p99_ms >= stats.latency.p50_ms);
}

#[test]
fn shutdown_drains_every_accepted_request() {
    let server = Server::new(EchoEngine::default(), quick_config()).unwrap();
    let tickets: Vec<_> = (0..50)
        .map(|i| server.submit(scalar(i as f64)).unwrap())
        .collect();
    let stats = server.shutdown();
    assert_eq!(stats.served, 50);
    // Every ticket is already resolved — no blocking possible here.
    for (i, ticket) in tickets.into_iter().enumerate() {
        let result = ticket.try_take().expect("resolved by shutdown");
        assert_eq!(result.unwrap(), scalar(i as f64 * 2.0));
    }
}

#[test]
fn mid_flight_snapshot_settles_at_shutdown() {
    let server = Server::new(EchoEngine::default(), quick_config()).unwrap();
    let _ = server.submit_blocking(scalar(1.0)).unwrap();
    let snapshot = server.stats();
    assert_eq!(snapshot.submitted, 1);
    assert_eq!(snapshot.served, 1);
    let stats = server.shutdown();
    assert_eq!(stats, snapshot, "nothing submitted in between");
}

#[test]
fn engine_errors_fail_the_batch_but_keep_accounting() {
    let server = Server::new(FailingEngine, quick_config()).unwrap();
    let t = server.submit(scalar(1.0)).unwrap();
    assert!(t.wait().is_err());
    let stats = server.shutdown();
    assert_eq!(stats.submitted, 1);
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.served, 0);
    assert_eq!(
        stats.served + stats.rejected + stats.failed,
        stats.submitted
    );
}

#[test]
fn engine_panics_fail_the_batch_without_stranding_anyone() {
    let server = Server::new(PanicOnceEngine::default(), quick_config()).unwrap();
    // First request hits the panicking batch: its ticket must still
    // resolve (to an error), not hang.
    let err = server.submit_blocking(scalar(1.0)).unwrap_err();
    assert!(err.to_string().contains("panicked"), "{err}");
    // The worker survived: the server keeps serving.
    assert_eq!(server.submit_blocking(scalar(2.0)).unwrap(), scalar(2.0));
    let stats = server.shutdown();
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.served, 1);
    assert_eq!(
        stats.served + stats.rejected + stats.failed,
        stats.submitted
    );
}

#[test]
fn multiple_workers_serve_concurrently() {
    let engine = Arc::new(EchoEngine::default());
    let config = ServeConfig {
        workers: 3,
        ..quick_config()
    };
    let server = Server::new(Arc::clone(&engine), config).unwrap();
    std::thread::scope(|scope| {
        for w in 0..3 {
            let server = &server;
            scope.spawn(move || {
                for i in 0..10 {
                    let v = (w * 100 + i) as f64;
                    assert_eq!(server.submit_blocking(scalar(v)).unwrap(), scalar(v * 2.0));
                }
            });
        }
    });
    let stats = server.shutdown();
    assert_eq!(stats.served, 30);
    assert_eq!(stats.rejected, 0);
    let mut seqs = engine.seen_seqs.lock().clone();
    seqs.sort_unstable();
    assert_eq!(seqs, (0..30).collect::<Vec<u64>>());
}
