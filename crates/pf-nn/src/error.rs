//! Error type for the neural-network substrate.

use std::error::Error;
use std::fmt;

/// Errors returned by tensor and layer operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// Tensor shape does not match what the operation expects.
    ShapeMismatch {
        /// Expected shape description.
        expected: String,
        /// Found shape description.
        found: String,
    },
    /// A layer or model parameter is invalid.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Requirement description.
        requirement: String,
    },
    /// An error from the tiling layer.
    Tiling(pf_tiling::TilingError),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
            NnError::InvalidParameter { name, requirement } => {
                write!(f, "invalid parameter {name}: {requirement}")
            }
            NnError::Tiling(e) => write!(f, "tiling error: {e}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tiling(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pf_tiling::TilingError> for NnError {
    fn from(e: pf_tiling::TilingError) -> Self {
        NnError::Tiling(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = NnError::ShapeMismatch {
            expected: "3x32x32".into(),
            found: "1x28x28".into(),
        };
        assert!(e.to_string().contains("shape mismatch"));
        assert!(Error::source(&e).is_none());
        let e = NnError::from(pf_tiling::TilingError::EmptyOperand { what: "input" });
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
