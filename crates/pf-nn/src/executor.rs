//! Convolution-layer executors.
//!
//! [`ReferenceExecutor`] is the exact digital reference (what a GPU would
//! compute). [`TiledExecutor`] runs every convolution through the row-tiling
//! algorithm on a pluggable 1D backend and reproduces the full PhotoFourier
//! numeric pipeline:
//!
//! * optional 8-bit quantisation of weights and activations,
//! * pseudo-negative weight splitting (negative weights become a second
//!   all-positive filter whose result is subtracted digitally, Section VI-A),
//! * channel-wise accumulation with a configurable temporal-accumulation
//!   depth and partial-sum ADC (Section V-C), which is the knob Figure 7
//!   sweeps.

use pf_dsp::conv::{correlate2d, Matrix, PaddingMode};
use pf_photonics::adc::Adc;
use pf_tiling::{Conv1dEngine, EdgeHandling, ParallelGrain, TiledConvolver};
use serde::{Deserialize, Serialize};

use crate::error::NnError;
use crate::layers::Conv2d;
use crate::quant::{quantize_tensor, QuantConfig};
use crate::tensor::Tensor;

/// Anything that can execute a convolution layer on a `(C, H, W)` activation
/// tensor.
pub trait Conv2dExecutor: std::fmt::Debug {
    /// Runs the layer and returns the `(out_channels, H', W')` activations.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if the input shape does not match the layer.
    fn forward(&self, input: &Tensor, layer: &Conv2d) -> Result<Tensor, NnError>;
}

/// Exact digital reference executor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReferenceExecutor;

impl Conv2dExecutor for ReferenceExecutor {
    fn forward(&self, input: &Tensor, layer: &Conv2d) -> Result<Tensor, NnError> {
        check_input(input, layer)?;
        let mode = if layer.padded {
            PaddingMode::Same
        } else {
            PaddingMode::Valid
        };
        let mut channels = Vec::with_capacity(layer.out_channels());
        for o in 0..layer.out_channels() {
            let mut acc: Option<Matrix> = None;
            for i in 0..layer.in_channels() {
                let partial =
                    correlate2d(&input.channel(i), &layer.weights.filter_plane(o, i), mode);
                acc = Some(match acc {
                    None => partial,
                    Some(mut a) => {
                        for r in 0..a.rows() {
                            for c in 0..a.cols() {
                                a.set(r, c, a.get(r, c) + partial.get(r, c));
                            }
                        }
                        a
                    }
                });
            }
            let mut plane = acc.expect("layer has at least one input channel");
            if layer.bias[o] != 0.0 {
                for r in 0..plane.rows() {
                    for c in 0..plane.cols() {
                        plane.set(r, c, plane.get(r, c) + layer.bias[o]);
                    }
                }
            }
            channels.push(subsample(&plane, layer.stride));
        }
        Tensor::from_channels(&channels)
    }
}

/// Configuration of the PhotoFourier numeric pipeline applied by
/// [`TiledExecutor`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Quantisation applied to weights before execution.
    pub weight_quant: QuantConfig,
    /// Quantisation applied to input activations before execution.
    pub activation_quant: QuantConfig,
    /// Temporal accumulation depth: number of input channels whose partial
    /// sums are accumulated in the analog domain before one ADC read-out.
    /// `1` models the no-temporal-accumulation baseline.
    pub temporal_depth: usize,
    /// Partial-sum ADC resolution; `None` disables partial-sum quantisation
    /// entirely (the `fp psum` reference of Figure 7).
    pub psum_adc_bits: Option<u32>,
    /// Whether negative weights are split into positive/negative filter pairs
    /// executed separately (pseudo-negative method).
    pub pseudo_negative: bool,
    /// How `same`-mode horizontal edges are handled by row tiling.
    pub edge_handling: EdgeHandling,
}

impl PipelineConfig {
    /// Full-precision pipeline: no quantisation, no pseudo-negative overhead.
    pub fn ideal() -> Self {
        Self {
            weight_quant: QuantConfig::disabled(),
            activation_quant: QuantConfig::disabled(),
            temporal_depth: 1,
            psum_adc_bits: None,
            pseudo_negative: false,
            edge_handling: EdgeHandling::Wraparound,
        }
    }

    /// The PhotoFourier default: 8-bit weights/activations, 8-bit partial-sum
    /// ADC, temporal accumulation depth 16, pseudo-negative weights.
    pub fn photofourier_default() -> Self {
        Self {
            weight_quant: QuantConfig::int8(),
            activation_quant: QuantConfig::int8(),
            temporal_depth: pf_photonics::params::TEMPORAL_ACCUMULATION_DEPTH,
            psum_adc_bits: Some(8),
            pseudo_negative: true,
            edge_handling: EdgeHandling::Wraparound,
        }
    }

    /// Same as [`PipelineConfig::photofourier_default`] but with the given
    /// temporal accumulation depth (Figure 7 sweep).
    pub fn with_temporal_depth(depth: usize) -> Self {
        Self {
            temporal_depth: depth.max(1),
            ..Self::photofourier_default()
        }
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self::photofourier_default()
    }
}

/// Row-tiled executor running on a 1D convolution backend.
#[derive(Debug)]
pub struct TiledExecutor<E> {
    convolver: TiledConvolver<E>,
    config: PipelineConfig,
}

impl<E: Clone> Clone for TiledExecutor<E> {
    /// Clones share the prepared-kernel cache of the inner
    /// [`TiledConvolver`], so a caller can hold one executor per
    /// [`ParallelGrain`] without preparing every kernel spectrum twice.
    fn clone(&self) -> Self {
        Self {
            convolver: self.convolver.clone(),
            config: self.config,
        }
    }
}

impl<E: Conv1dEngine> TiledExecutor<E> {
    /// How many output channels are convolved per multi-kernel call. Caps
    /// the buffered partial planes at `OUT_CHANNEL_CHUNK × in_channels`
    /// while still amortising each input tile's signal transform over up
    /// to `2 × OUT_CHANNEL_CHUNK` kernels.
    const OUT_CHANNEL_CHUNK: usize = 16;

    /// Creates an executor around a 1D backend with capacity `n_conv`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Tiling`] if the capacity is invalid for the
    /// backend, or [`NnError::InvalidParameter`] if the temporal depth is 0.
    pub fn new(engine: E, n_conv: usize, config: PipelineConfig) -> Result<Self, NnError> {
        if config.temporal_depth == 0 {
            return Err(NnError::InvalidParameter {
                name: "temporal_depth",
                requirement: "must be at least 1".to_string(),
            });
        }
        // Tile-level parallelism stays off inside the executor by default:
        // callers parallelise at the per-image grain (`Session::run_batch`),
        // and the executor's many small convolutions would only fight that
        // for threads. Kernel-spectrum preparation is still cached and
        // shared. Callers owning the whole pool (small batches on wide
        // hosts) opt into tile dispatch with [`TiledExecutor::with_grain`].
        Ok(Self {
            convolver: TiledConvolver::new(engine, n_conv)?.with_grain(ParallelGrain::Image),
            config,
        })
    }

    /// Sets the parallelism grain of the inner convolver —
    /// [`ParallelGrain::Image`] (the default here) keeps tiles serial for
    /// callers that parallelise per image; [`ParallelGrain::Tile`] fans
    /// each layer's tile batch across the pool for callers that drive
    /// images serially. Bit-identical either way.
    pub fn with_grain(mut self, grain: ParallelGrain) -> Self {
        self.convolver = self.convolver.with_grain(grain);
        self
    }

    /// The parallelism grain of the inner convolver.
    pub fn grain(&self) -> ParallelGrain {
        self.convolver.grain()
    }

    /// Attaches a telemetry handle to the inner convolver, so every
    /// convolution this executor drives records stage timings and tiling
    /// counters into that registry. A disabled handle (the default) keeps
    /// the untraced hot path.
    pub fn with_telemetry(mut self, telemetry: pf_telemetry::Telemetry) -> Self {
        self.convolver.set_telemetry(telemetry);
        self
    }

    /// In-place form of [`TiledExecutor::with_telemetry`].
    pub fn set_telemetry(&mut self, telemetry: pf_telemetry::Telemetry) {
        self.convolver.set_telemetry(telemetry);
    }

    /// The attached telemetry handle.
    pub fn telemetry(&self) -> &pf_telemetry::Telemetry {
        self.convolver.telemetry()
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    fn conv_planes(
        &self,
        input: &Matrix,
        kernels: &[Matrix],
        padded: bool,
    ) -> Result<Vec<Matrix>, NnError> {
        let out = if padded {
            self.convolver
                .correlate2d_same_multi(input, kernels, self.config.edge_handling)?
        } else {
            self.convolver.correlate2d_valid_multi(input, kernels)?
        };
        Ok(out)
    }
}

impl<E: Conv1dEngine> Conv2dExecutor for TiledExecutor<E> {
    fn forward(&self, input: &Tensor, layer: &Conv2d) -> Result<Tensor, NnError> {
        check_input(input, layer)?;
        let weights = quantize_tensor(&layer.weights, self.config.weight_quant);
        let activations = quantize_tensor(input, self.config.activation_quant);

        let psum_adc = self
            .config
            .psum_adc_bits
            .map(|bits| Adc::new(bits, 0.625, 0.93).expect("valid ADC resolution"));

        let oc = layer.out_channels();
        let ic = layer.in_channels();

        // Grouped by *input channel*: every output channel's kernel for one
        // input channel (two per channel with pseudo-negative splitting)
        // runs through one multi-kernel convolution, so each input tile is
        // built — and, on the JTC backends, Fourier-transformed — once for
        // the whole kernel stack instead of once per output channel. The
        // tiling layer additionally sees the channel's whole tile batch at
        // once, so those signal transforms run through one batched planar
        // pass (`PreparedConv1d::prepare_signal_batch`) rather than
        // per-tile FFT calls.
        //
        // Output channels are processed in chunks so the buffered partial
        // planes stay O(chunk × in_channels) instead of O(out × in): the
        // partial-sum ADC full scale needs every partial of an output
        // channel before accumulation can start, so the per-(o, i) planes
        // of one chunk must be materialised together. A chunk still
        // amortises each tile's signal transform over up to
        // `2 × OUT_CHANNEL_CHUNK` kernels, which captures almost all of the
        // sharing win with bounded memory on wide layers.
        //
        // `partials[o_rel * ic + i]` holds the (o, i) partial plane; the
        // accumulation consumes them in exactly the per-output-channel
        // order of the kernel-grouped execution, so the result is
        // bit-identical to it.
        let mut out_channels = Vec::with_capacity(oc);
        for chunk_start in (0..oc).step_by(Self::OUT_CHANNEL_CHUNK) {
            let chunk = (chunk_start..oc.min(chunk_start + Self::OUT_CHANNEL_CHUNK))
                .collect::<Vec<usize>>();
            let mut partials: Vec<Option<Matrix>> = (0..chunk.len() * ic).map(|_| None).collect();
            for i in 0..ic {
                let mut kernels = Vec::with_capacity(if self.config.pseudo_negative {
                    2 * chunk.len()
                } else {
                    chunk.len()
                });
                for &o in &chunk {
                    let kernel = weights.filter_plane(o, i);
                    if self.config.pseudo_negative {
                        let (pos, neg) = split_pseudo_negative(&kernel);
                        kernels.push(pos);
                        kernels.push(neg);
                    } else {
                        kernels.push(kernel);
                    }
                }
                let planes = self.conv_planes(&activations.channel(i), &kernels, layer.padded)?;
                if self.config.pseudo_negative {
                    for o_rel in 0..chunk.len() {
                        partials[o_rel * ic + i] =
                            Some(subtract(&planes[2 * o_rel], &planes[2 * o_rel + 1]));
                    }
                } else {
                    for (o_rel, plane) in planes.into_iter().enumerate() {
                        partials[o_rel * ic + i] = Some(plane);
                    }
                }
            }

            for (o_rel, &o) in chunk.iter().enumerate() {
                // Accumulate the per-input-channel partial planes in groups
                // of `temporal_depth`: within a group the sum stays analog
                // (full precision); at the group boundary the ADC quantises
                // once; groups are summed digitally (the two-level
                // accumulation of Section V-F).
                let channel_partials: Vec<Matrix> = (0..ic)
                    .map(|i| partials[o_rel * ic + i].take().expect("partial computed"))
                    .collect();
                let mut plane = accumulate_partials(
                    &channel_partials,
                    self.config.temporal_depth,
                    psum_adc.as_ref(),
                );
                if layer.bias[o] != 0.0 {
                    for r in 0..plane.rows() {
                        for c in 0..plane.cols() {
                            plane.set(r, c, plane.get(r, c) + layer.bias[o]);
                        }
                    }
                }
                out_channels.push(subsample(&plane, layer.stride));
            }
        }
        Tensor::from_channels(&out_channels)
    }
}

fn check_input(input: &Tensor, layer: &Conv2d) -> Result<(), NnError> {
    if input.shape().len() != 3 {
        return Err(NnError::ShapeMismatch {
            expected: "(channels, height, width)".to_string(),
            found: format!("{:?}", input.shape()),
        });
    }
    if input.shape()[0] != layer.in_channels() {
        return Err(NnError::ShapeMismatch {
            expected: format!("{} input channels", layer.in_channels()),
            found: format!("{} input channels", input.shape()[0]),
        });
    }
    Ok(())
}

/// Accumulates per-channel partial-sum planes with temporal accumulation of
/// the given depth and an optional partial-sum ADC.
///
/// The ADC full scale is a hardware design constant sized for the deepest
/// supported group (16 channels, the capacitor capacity of the PhotoFourier
/// photodetectors), independent of the depth actually used — shallow depths
/// therefore waste dynamic range on every read-out, which is precisely why
/// Figure 7 shows accuracy improving with depth.
fn accumulate_partials(partials: &[Matrix], depth: usize, adc: Option<&Adc>) -> Matrix {
    let depth = depth.max(1);
    let max_partial = partials
        .iter()
        .flat_map(|p| p.data().iter())
        .fold(0.0f64, |m, &v| m.max(v.abs()));
    let full_scale =
        (max_partial * pf_photonics::params::TEMPORAL_ACCUMULATION_DEPTH as f64).max(f64::EPSILON);

    let mut digital_acc: Option<Matrix> = None;
    let mut analog_acc: Option<Matrix> = None;
    let mut in_group = 0usize;
    for (i, partial) in partials.iter().enumerate() {
        analog_acc = Some(match analog_acc {
            None => partial.clone(),
            Some(a) => add(&a, partial),
        });
        in_group += 1;
        let last = i + 1 == partials.len();
        if in_group == depth || last {
            let mut group = analog_acc.take().expect("group has at least one channel");
            if let Some(adc) = adc {
                let quantised = adc.quantize_slice(group.data(), full_scale);
                group = Matrix::new(group.rows(), group.cols(), quantised)
                    .expect("quantised data keeps its shape");
            }
            digital_acc = Some(match digital_acc {
                None => group,
                Some(a) => add(&a, &group),
            });
            in_group = 0;
        }
    }
    digital_acc.expect("at least one partial plane")
}

/// Splits a filter into its positive part and the magnitude of its negative
/// part so that `filter = positive - negative` (the pseudo-negative method).
pub fn split_pseudo_negative(kernel: &Matrix) -> (Matrix, Matrix) {
    let pos: Vec<f64> = kernel.data().iter().map(|&v| v.max(0.0)).collect();
    let neg: Vec<f64> = kernel.data().iter().map(|&v| (-v).max(0.0)).collect();
    (
        Matrix::new(kernel.rows(), kernel.cols(), pos).expect("same shape"),
        Matrix::new(kernel.rows(), kernel.cols(), neg).expect("same shape"),
    )
}

fn add(a: &Matrix, b: &Matrix) -> Matrix {
    let data: Vec<f64> = a.data().iter().zip(b.data()).map(|(x, y)| x + y).collect();
    Matrix::new(a.rows(), a.cols(), data).expect("same shape")
}

fn subtract(a: &Matrix, b: &Matrix) -> Matrix {
    let data: Vec<f64> = a.data().iter().zip(b.data()).map(|(x, y)| x - y).collect();
    Matrix::new(a.rows(), a.cols(), data).expect("same shape")
}

/// Subsamples a unit-stride output plane to the requested stride, which is
/// how PhotoFourier executes strided convolutions (compute at stride 1,
/// discard, Section VI-E).
fn subsample(plane: &Matrix, stride: usize) -> Matrix {
    if stride <= 1 {
        return plane.clone();
    }
    let rows = plane.rows().div_ceil(stride);
    let cols = plane.cols().div_ceil(stride);
    let mut out = Matrix::zeros(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            out.set(r, c, plane.get(r * stride, c * stride));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_dsp::util::{max_abs_diff, relative_l2_error};
    use pf_tiling::DigitalEngine;

    fn small_layer(padded: bool, stride: usize, seed: u64) -> Conv2d {
        Conv2d::random(3, 4, 3, stride, padded, 0.5, seed).unwrap()
    }

    fn small_input(seed: u64) -> Tensor {
        Tensor::random(vec![3, 12, 12], -1.0, 1.0, seed)
    }

    #[test]
    fn reference_executor_shapes() {
        let layer = small_layer(true, 1, 1);
        let out = ReferenceExecutor.forward(&small_input(2), &layer).unwrap();
        assert_eq!(out.shape(), &[4, 12, 12]);
        let layer = small_layer(false, 1, 3);
        let out = ReferenceExecutor.forward(&small_input(4), &layer).unwrap();
        assert_eq!(out.shape(), &[4, 10, 10]);
        let layer = small_layer(true, 2, 5);
        let out = ReferenceExecutor.forward(&small_input(6), &layer).unwrap();
        assert_eq!(out.shape(), &[4, 6, 6]);
    }

    #[test]
    fn reference_rejects_bad_input() {
        let layer = small_layer(true, 1, 7);
        let bad = Tensor::random(vec![2, 12, 12], -1.0, 1.0, 8);
        assert!(ReferenceExecutor.forward(&bad, &layer).is_err());
        let bad = Tensor::random(vec![3, 12], -1.0, 1.0, 8);
        assert!(ReferenceExecutor.forward(&bad, &layer).is_err());
    }

    #[test]
    fn tiled_ideal_matches_reference_valid() {
        let layer = small_layer(false, 1, 11);
        let input = small_input(12);
        let reference = ReferenceExecutor.forward(&input, &layer).unwrap();
        let tiled = TiledExecutor::new(DigitalEngine, 256, PipelineConfig::ideal())
            .unwrap()
            .forward(&input, &layer)
            .unwrap();
        assert_eq!(tiled.shape(), reference.shape());
        assert!(max_abs_diff(tiled.data(), reference.data()) < 1e-9);
    }

    #[test]
    fn tiled_ideal_matches_reference_same_interior() {
        let layer = small_layer(true, 1, 21);
        let input = small_input(22);
        let reference = ReferenceExecutor.forward(&input, &layer).unwrap();
        let mut cfg = PipelineConfig::ideal();
        cfg.edge_handling = EdgeHandling::ZeroPad;
        let tiled = TiledExecutor::new(DigitalEngine, 256, cfg)
            .unwrap()
            .forward(&input, &layer)
            .unwrap();
        assert!(max_abs_diff(tiled.data(), reference.data()) < 1e-9);
    }

    #[test]
    fn wide_layers_straddle_the_output_channel_chunk() {
        // More output channels than OUT_CHANNEL_CHUNK: the chunked
        // multi-kernel grouping must keep every channel in its place.
        let layer = Conv2d::random(3, 20, 3, 1, true, 0.4, 71).unwrap();
        let input = small_input(72);
        let reference = ReferenceExecutor.forward(&input, &layer).unwrap();
        let mut cfg = PipelineConfig::ideal();
        cfg.edge_handling = EdgeHandling::ZeroPad;
        let tiled = TiledExecutor::new(DigitalEngine, 256, cfg)
            .unwrap()
            .forward(&input, &layer)
            .unwrap();
        assert_eq!(tiled.shape(), reference.shape());
        assert!(max_abs_diff(tiled.data(), reference.data()) < 1e-9);
        // Pseudo-negative splitting doubles the kernels per chunk; the
        // pairing must survive chunking too.
        cfg.pseudo_negative = true;
        let tiled_pn = TiledExecutor::new(DigitalEngine, 256, cfg)
            .unwrap()
            .forward(&input, &layer)
            .unwrap();
        assert!(max_abs_diff(tiled_pn.data(), reference.data()) < 1e-9);
    }

    #[test]
    fn pseudo_negative_is_numerically_identical_when_ideal() {
        let layer = small_layer(false, 1, 31);
        let input = small_input(32);
        let mut cfg = PipelineConfig::ideal();
        cfg.pseudo_negative = true;
        let with_pn = TiledExecutor::new(DigitalEngine, 256, cfg)
            .unwrap()
            .forward(&input, &layer)
            .unwrap();
        let without = TiledExecutor::new(DigitalEngine, 256, PipelineConfig::ideal())
            .unwrap()
            .forward(&input, &layer)
            .unwrap();
        assert!(max_abs_diff(with_pn.data(), without.data()) < 1e-9);
    }

    #[test]
    fn split_pseudo_negative_reconstructs_filter() {
        let kernel = Matrix::new(2, 2, vec![1.0, -2.0, 0.0, 3.0]).unwrap();
        let (p, n) = split_pseudo_negative(&kernel);
        assert!(p.data().iter().all(|&v| v >= 0.0));
        assert!(n.data().iter().all(|&v| v >= 0.0));
        for i in 0..4 {
            assert_eq!(p.data()[i] - n.data()[i], kernel.data()[i]);
        }
    }

    #[test]
    fn quantized_pipeline_is_close_to_reference() {
        let layer = Conv2d::random(8, 2, 3, 1, false, 0.3, 41).unwrap();
        let input = Tensor::random(vec![8, 10, 10], -1.0, 1.0, 42);
        let reference = ReferenceExecutor.forward(&input, &layer).unwrap();
        let tiled = TiledExecutor::new(DigitalEngine, 128, PipelineConfig::photofourier_default())
            .unwrap()
            .forward(&input, &layer)
            .unwrap();
        let err = relative_l2_error(tiled.data(), reference.data());
        assert!(err > 0.0);
        assert!(err < 0.1, "8-bit pipeline error too large: {err}");
    }

    #[test]
    fn deeper_temporal_accumulation_reduces_error() {
        // Many input channels so partial-sum quantisation matters.
        let layer = Conv2d::random(32, 1, 3, 1, false, 0.3, 51).unwrap();
        let input = Tensor::random(vec![32, 8, 8], -1.0, 1.0, 52);
        let reference = ReferenceExecutor.forward(&input, &layer).unwrap();

        let mut errors = Vec::new();
        for depth in [1usize, 4, 16] {
            let tiled = TiledExecutor::new(
                DigitalEngine,
                128,
                PipelineConfig::with_temporal_depth(depth),
            )
            .unwrap()
            .forward(&input, &layer)
            .unwrap();
            errors.push(relative_l2_error(tiled.data(), reference.data()));
        }
        assert!(
            errors[0] > errors[2],
            "depth-16 error {} should be below depth-1 error {}",
            errors[2],
            errors[0]
        );
    }

    #[test]
    fn executor_rejects_zero_depth() {
        let mut cfg = PipelineConfig::ideal();
        cfg.temporal_depth = 0;
        assert!(TiledExecutor::new(DigitalEngine, 64, cfg).is_err());
    }

    #[test]
    fn strided_subsampling_matches_reference() {
        let layer = small_layer(true, 2, 61);
        let input = small_input(62);
        let reference = ReferenceExecutor.forward(&input, &layer).unwrap();
        let mut cfg = PipelineConfig::ideal();
        cfg.edge_handling = EdgeHandling::ZeroPad;
        let tiled = TiledExecutor::new(DigitalEngine, 256, cfg)
            .unwrap()
            .forward(&input, &layer)
            .unwrap();
        assert_eq!(tiled.shape(), reference.shape());
        assert!(max_abs_diff(tiled.data(), reference.data()) < 1e-9);
    }
}
