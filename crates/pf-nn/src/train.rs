//! Linear-probe training.
//!
//! The accuracy experiments freeze the convolutional feature extractor (the
//! part that runs on PhotoFourier) and train a softmax linear classifier on
//! the reference features. Accuracy is then re-measured with features
//! produced by the photonic / quantised pipeline — the resulting drop plays
//! the role of the paper's "accuracy drop" metric (Table I, Figure 7).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::error::NnError;
use crate::layers::Linear;

/// Training hyper-parameters for the linear probe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// L2 weight decay.
    pub weight_decay: f64,
    /// Shuffling / initialisation seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 30,
            learning_rate: 0.05,
            weight_decay: 1e-4,
            seed: 0,
        }
    }
}

/// Numerically stable softmax.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&x| (x - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

/// Cross-entropy loss of a softmax distribution against a target class.
///
/// # Panics
///
/// Panics if `target` is out of range.
pub fn cross_entropy(probabilities: &[f64], target: usize) -> f64 {
    assert!(target < probabilities.len(), "target class out of range");
    -(probabilities[target].max(1e-12)).ln()
}

/// Trains a softmax linear classifier on feature vectors with plain SGD.
///
/// # Errors
///
/// Returns [`NnError::InvalidParameter`] if the inputs are empty or
/// inconsistent.
pub fn train_linear_probe(
    features: &[Vec<f64>],
    labels: &[usize],
    num_classes: usize,
    config: TrainConfig,
) -> Result<Linear, NnError> {
    if features.is_empty() || features.len() != labels.len() {
        return Err(NnError::InvalidParameter {
            name: "features/labels",
            requirement: "must be non-empty and of equal length".to_string(),
        });
    }
    if num_classes < 2 {
        return Err(NnError::InvalidParameter {
            name: "num_classes",
            requirement: "need at least two classes".to_string(),
        });
    }
    let dim = features[0].len();
    if features.iter().any(|f| f.len() != dim) {
        return Err(NnError::InvalidParameter {
            name: "features",
            requirement: "all feature vectors must have the same length".to_string(),
        });
    }
    if labels.iter().any(|&l| l >= num_classes) {
        return Err(NnError::InvalidParameter {
            name: "labels",
            requirement: format!("labels must be < {num_classes}"),
        });
    }

    // Normalise features to zero mean / unit scale for stable SGD.
    let (mean, scale) = feature_statistics(features);
    let normalised: Vec<Vec<f64>> = features
        .iter()
        .map(|f| normalize(f, &mean, scale))
        .collect();

    let mut probe = Linear::random(dim, num_classes, 0.01, config.seed)?;
    let mut order: Vec<usize> = (0..normalised.len()).collect();
    let mut rng = StdRng::seed_from_u64(config.seed);

    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        for &idx in &order {
            let x = &normalised[idx];
            let y = labels[idx];
            let logits = probe.forward(x)?;
            let probs = softmax(&logits);
            // Gradient of cross-entropy w.r.t. logits: p - onehot(y).
            for (class, &prob) in probs.iter().enumerate() {
                let grad = prob - if class == y { 1.0 } else { 0.0 };
                let row_start = class * dim;
                // Matrix stores row-major (out_features x in_features).
                let mut row: Vec<f64> = probe.weights.row(class).to_vec();
                for (j, w) in row.iter_mut().enumerate() {
                    *w -= config.learning_rate * (grad * x[j] + config.weight_decay * *w);
                }
                for (j, w) in row.iter().enumerate() {
                    probe.weights.set(class, j, *w);
                }
                probe.bias[class] -= config.learning_rate * grad;
                let _ = row_start;
            }
        }
    }

    // Bake the normalisation into the trained probe so evaluation can use
    // raw features: w'x_norm = w'(x - mean)/scale. Every weight is
    // overwritten below, so the random initialisation scale is irrelevant.
    let mut folded = Linear::random(dim, num_classes, 1e-6, config.seed)?;
    for class in 0..num_classes {
        let mut bias = probe.bias[class];
        for (j, &m) in mean.iter().enumerate() {
            let w = probe.weights.get(class, j) / scale;
            folded.weights.set(class, j, w);
            bias -= w * m;
        }
        folded.bias[class] = bias;
    }
    Ok(folded)
}

/// Classification accuracy of a linear probe on raw feature vectors.
///
/// # Errors
///
/// Returns [`NnError::InvalidParameter`] if the inputs are empty or
/// inconsistent, and propagates shape errors from the probe.
pub fn accuracy(probe: &Linear, features: &[Vec<f64>], labels: &[usize]) -> Result<f64, NnError> {
    if features.is_empty() || features.len() != labels.len() {
        return Err(NnError::InvalidParameter {
            name: "features/labels",
            requirement: "must be non-empty and of equal length".to_string(),
        });
    }
    let mut correct = 0usize;
    for (f, &y) in features.iter().zip(labels) {
        let logits = probe.forward(f)?;
        let pred = logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
            .map(|(i, _)| i)
            .expect("at least one class");
        if pred == y {
            correct += 1;
        }
    }
    Ok(correct as f64 / features.len() as f64)
}

fn feature_statistics(features: &[Vec<f64>]) -> (Vec<f64>, f64) {
    let dim = features[0].len();
    let mut mean = vec![0.0; dim];
    for f in features {
        for (m, &v) in mean.iter_mut().zip(f) {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= features.len() as f64;
    }
    let mut var = 0.0;
    for f in features {
        for (m, &v) in mean.iter().zip(f) {
            var += (v - m) * (v - m);
        }
    }
    var /= (features.len() * dim) as f64;
    (mean, var.sqrt().max(1e-9))
}

fn normalize(f: &[f64], mean: &[f64], scale: f64) -> Vec<f64> {
    f.iter().zip(mean).map(|(v, m)| (v - m) / scale).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn softmax_properties() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // Stable for large logits.
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cross_entropy_behaviour() {
        assert!(cross_entropy(&[0.9, 0.1], 0) < cross_entropy(&[0.6, 0.4], 0));
        assert!(cross_entropy(&[1e-15, 1.0], 0).is_finite());
    }

    #[test]
    #[should_panic(expected = "target class out of range")]
    fn cross_entropy_rejects_bad_target() {
        let _ = cross_entropy(&[1.0], 3);
    }

    #[test]
    fn probe_learns_separable_data() {
        // Two Gaussian clusters in 8 dimensions.
        let mut rng = StdRng::seed_from_u64(5);
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..200 {
            let class = i % 2;
            let center = if class == 0 { 1.0 } else { -1.0 };
            features.push((0..8).map(|_| center + rng.gen_range(-0.5..0.5)).collect());
            labels.push(class);
        }
        let probe = train_linear_probe(&features, &labels, 2, TrainConfig::default()).unwrap();
        let acc = accuracy(&probe, &features, &labels).unwrap();
        assert!(acc > 0.95, "probe failed to learn separable data: {acc}");
    }

    #[test]
    fn probe_validation_errors() {
        assert!(train_linear_probe(&[], &[], 2, TrainConfig::default()).is_err());
        let f = vec![vec![1.0, 2.0]];
        assert!(train_linear_probe(&f, &[0, 1], 2, TrainConfig::default()).is_err());
        assert!(train_linear_probe(&f, &[0], 1, TrainConfig::default()).is_err());
        assert!(train_linear_probe(&f, &[5], 2, TrainConfig::default()).is_err());
        let mixed = vec![vec![1.0, 2.0], vec![1.0]];
        assert!(train_linear_probe(&mixed, &[0, 1], 2, TrainConfig::default()).is_err());
    }

    #[test]
    fn accuracy_validation() {
        let probe = Linear::random(2, 2, 0.1, 0).unwrap();
        assert!(accuracy(&probe, &[], &[]).is_err());
        let f = vec![vec![1.0, 2.0]];
        assert!(accuracy(&probe, &f, &[0, 1]).is_err());
        assert!(accuracy(&probe, &f, &[0]).is_ok());
    }

    #[test]
    fn training_is_deterministic() {
        let features = vec![
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![0.0, 0.0],
        ];
        let labels = vec![0, 1, 0, 1];
        let a = train_linear_probe(&features, &labels, 2, TrainConfig::default()).unwrap();
        let b = train_linear_probe(&features, &labels, 2, TrainConfig::default()).unwrap();
        assert_eq!(a, b);
    }
}
