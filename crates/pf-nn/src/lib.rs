//! Neural-network substrate for the PhotoFourier reproduction.
//!
//! The paper evaluates PhotoFourier on standard CNNs (AlexNet, VGG-16, the
//! ResNet family, a pruned ResNet-s and CrossLight's 4-layer CIFAR-10
//! network). Rather than depending on an external ML framework, this crate
//! provides the minimal substrate those experiments need:
//!
//! * [`tensor::Tensor`] — a small dense tensor type (channels × height ×
//!   width activations, OIHW weights);
//! * [`layers`] — convolution / pooling / activation / linear layers plus the
//!   [`layers::ConvLayerSpec`] shape descriptions that the architecture
//!   simulator consumes;
//! * [`models`] — the layer inventories of every network used in the paper's
//!   evaluation;
//! * [`executor`] — runs convolution layers through either the exact digital
//!   reference or the row-tiled (optionally photonic) path, including
//!   pseudo-negative weight splitting and channel-wise temporal
//!   accumulation;
//! * [`quant`] — symmetric fixed-point quantisation of weights/activations;
//! * [`fidelity`] — per-layer numerical-fidelity comparison between the
//!   reference and tiled pipelines (the reproduction's stand-in for the
//!   ImageNet accuracy-drop numbers of Table I, see DESIGN.md);
//! * [`dataset`] / [`train`] — a synthetic image-classification task and a
//!   linear-probe trainer used to obtain end-to-end accuracy trends
//!   (Figure 7's accuracy-vs-accumulation-depth experiment).
//!
//! # Examples
//!
//! A convolution layer run through the exact digital reference executor:
//!
//! ```
//! use pf_nn::executor::{Conv2dExecutor, ReferenceExecutor};
//! use pf_nn::layers::Conv2d;
//! use pf_nn::Tensor;
//!
//! // 1 input channel, 4 filters, 3x3 kernel, stride 1, `same` padding.
//! let layer = Conv2d::random(1, 4, 3, 1, true, 0.5, 7)?;
//! let image = Tensor::random(vec![1, 8, 8], 0.0, 1.0, 42);
//! let out = ReferenceExecutor.forward(&image, &layer)?;
//! assert_eq!(out.shape(), &[4, 8, 8]); // `same` padding keeps H and W
//! # Ok::<(), pf_nn::NnError>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod dataset;
pub mod error;
pub mod executor;
pub mod fidelity;
pub mod layers;
pub mod models;
pub mod quant;
pub mod tensor;
pub mod train;

pub use error::NnError;
pub use tensor::Tensor;
