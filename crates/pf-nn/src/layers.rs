//! Layer descriptions and runtime layers.
//!
//! Two views of a network coexist:
//!
//! * [`ConvLayerSpec`] — a pure *shape* description (channels, kernel,
//!   stride, input resolution). The architecture simulator in `pf-arch`
//!   schedules and costs these without touching data; the model zoo in
//!   [`crate::models`] is expressed as lists of them.
//! * Runtime layers ([`Conv2d`], [`Linear`], [`relu`], [`max_pool2d`],
//!   [`avg_pool2d`]) — carry weights and compute activations, used by the
//!   fidelity and accuracy experiments.

use pf_dsp::conv::Matrix;
use serde::{Deserialize, Serialize};

use crate::error::NnError;
use crate::tensor::Tensor;

/// Shape description of one convolution layer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvLayerSpec {
    /// Layer name, e.g. `"conv3_2"`.
    pub name: String,
    /// Input channels.
    pub in_channels: usize,
    /// Output channels (number of filters).
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride (PhotoFourier executes strided convolutions at stride 1 and
    /// discards outputs, Section VI-E).
    pub stride: usize,
    /// Input feature-map height = width (all evaluated CNNs use square
    /// activations).
    pub input_size: usize,
    /// Whether `same` zero-padding is applied (true for nearly every modern
    /// CNN layer).
    pub padded: bool,
}

impl ConvLayerSpec {
    /// Creates a layer spec.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] if any dimension is zero or the
    /// kernel exceeds the input size.
    pub fn new(
        name: impl Into<String>,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        input_size: usize,
        padded: bool,
    ) -> Result<Self, NnError> {
        let spec = Self {
            name: name.into(),
            in_channels,
            out_channels,
            kernel,
            stride,
            input_size,
            padded,
        };
        spec.validate()?;
        Ok(spec)
    }

    fn validate(&self) -> Result<(), NnError> {
        if self.in_channels == 0
            || self.out_channels == 0
            || self.kernel == 0
            || self.stride == 0
            || self.input_size == 0
        {
            return Err(NnError::InvalidParameter {
                name: "conv layer dimensions",
                requirement: "all dimensions must be non-zero".to_string(),
            });
        }
        if self.kernel > self.input_size {
            return Err(NnError::InvalidParameter {
                name: "kernel",
                requirement: format!(
                    "kernel ({}) must not exceed input size ({})",
                    self.kernel, self.input_size
                ),
            });
        }
        Ok(())
    }

    /// Output feature-map size (height = width).
    pub fn output_size(&self) -> usize {
        if self.padded {
            self.input_size.div_ceil(self.stride)
        } else {
            (self.input_size - self.kernel) / self.stride + 1
        }
    }

    /// Number of multiply-accumulate operations in this layer.
    pub fn macs(&self) -> u64 {
        let out = self.output_size() as u64;
        out * out
            * self.out_channels as u64
            * self.in_channels as u64
            * (self.kernel * self.kernel) as u64
    }

    /// Number of weight parameters.
    pub fn weight_count(&self) -> u64 {
        self.out_channels as u64 * self.in_channels as u64 * (self.kernel * self.kernel) as u64
    }

    /// Number of input activation values.
    pub fn input_activations(&self) -> u64 {
        self.in_channels as u64 * (self.input_size * self.input_size) as u64
    }

    /// Number of output activation values.
    pub fn output_activations(&self) -> u64 {
        let out = self.output_size() as u64;
        self.out_channels as u64 * out * out
    }
}

/// A runtime 2D convolution layer (cross-correlation, `same` padding
/// optional, unit stride handled natively; larger strides subsample the
/// unit-stride result as the PFCU does).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conv2d {
    /// Weights with shape `(out_channels, in_channels, k, k)`.
    pub weights: Tensor,
    /// Per-output-channel bias.
    pub bias: Vec<f64>,
    /// Stride.
    pub stride: usize,
    /// `same` padding when true, `valid` otherwise.
    pub padded: bool,
}

impl Conv2d {
    /// Creates a convolution layer with random weights in `[-scale, scale]`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] for zero-sized dimensions.
    pub fn random(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padded: bool,
        scale: f64,
        seed: u64,
    ) -> Result<Self, NnError> {
        if in_channels == 0 || out_channels == 0 || kernel == 0 || stride == 0 {
            return Err(NnError::InvalidParameter {
                name: "conv dimensions",
                requirement: "must be non-zero".to_string(),
            });
        }
        let weights = Tensor::random(
            vec![out_channels, in_channels, kernel, kernel],
            -scale,
            scale,
            seed,
        );
        Ok(Self {
            weights,
            bias: vec![0.0; out_channels],
            stride,
            padded,
        })
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.weights.shape()[0]
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.weights.shape()[1]
    }

    /// Kernel size.
    pub fn kernel(&self) -> usize {
        self.weights.shape()[2]
    }

    /// Shape spec for this layer given an input resolution.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] if the kernel exceeds
    /// `input_size`.
    pub fn spec(&self, name: &str, input_size: usize) -> Result<ConvLayerSpec, NnError> {
        ConvLayerSpec::new(
            name,
            self.in_channels(),
            self.out_channels(),
            self.kernel(),
            self.stride,
            input_size,
            self.padded,
        )
    }
}

/// A fully connected layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    /// Weight matrix `(out_features, in_features)`.
    pub weights: Matrix,
    /// Bias per output feature.
    pub bias: Vec<f64>,
}

impl Linear {
    /// Creates a linear layer with random weights in `[-scale, scale]`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] for zero-sized dimensions.
    pub fn random(
        in_features: usize,
        out_features: usize,
        scale: f64,
        seed: u64,
    ) -> Result<Self, NnError> {
        if in_features == 0 || out_features == 0 {
            return Err(NnError::InvalidParameter {
                name: "linear dimensions",
                requirement: "must be non-zero".to_string(),
            });
        }
        let t = Tensor::random(vec![out_features, in_features], -scale, scale, seed);
        let weights = Matrix::new(out_features, in_features, t.to_vec())
            .expect("tensor data has matching length");
        Ok(Self {
            weights,
            bias: vec![0.0; out_features],
        })
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.weights.cols()
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.weights.rows()
    }

    /// Applies the layer to a flat feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the input length differs from
    /// `in_features`.
    pub fn forward(&self, input: &[f64]) -> Result<Vec<f64>, NnError> {
        if input.len() != self.in_features() {
            return Err(NnError::ShapeMismatch {
                expected: format!("{} features", self.in_features()),
                found: format!("{} features", input.len()),
            });
        }
        Ok((0..self.out_features())
            .map(|o| {
                self.weights
                    .row(o)
                    .iter()
                    .zip(input)
                    .map(|(w, x)| w * x)
                    .sum::<f64>()
                    + self.bias[o]
            })
            .collect())
    }
}

/// Rectified linear unit applied element-wise.
pub fn relu(input: &Tensor) -> Tensor {
    input.map(|x| x.max(0.0))
}

/// 2D max pooling with a square window and equal stride.
///
/// # Panics
///
/// Panics if the input is not 3D or the window is zero.
pub fn max_pool2d(input: &Tensor, window: usize) -> Tensor {
    pool2d(input, window, |vals| {
        vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
    })
}

/// 2D average pooling with a square window and equal stride.
///
/// # Panics
///
/// Panics if the input is not 3D or the window is zero.
pub fn avg_pool2d(input: &Tensor, window: usize) -> Tensor {
    pool2d(input, window, |vals| {
        vals.iter().sum::<f64>() / vals.len() as f64
    })
}

/// Global average pooling: reduces each channel to a single value.
///
/// # Panics
///
/// Panics if the input is not 3D.
pub fn global_avg_pool(input: &Tensor) -> Vec<f64> {
    assert_eq!(
        input.shape().len(),
        3,
        "global_avg_pool requires a 3D tensor"
    );
    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    (0..c)
        .map(|ch| {
            let m = input.channel(ch);
            m.data().iter().sum::<f64>() / (h * w) as f64
        })
        .collect()
}

fn pool2d(input: &Tensor, window: usize, reduce: impl Fn(&[f64]) -> f64) -> Tensor {
    assert_eq!(input.shape().len(), 3, "pooling requires a 3D tensor");
    assert!(window > 0, "pooling window must be positive");
    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let oh = h / window;
    let ow = w / window;
    let mut out = Tensor::zeros(vec![c, oh.max(1), ow.max(1)]);
    let mut buf = Vec::with_capacity(window * window);
    for ch in 0..c {
        for or in 0..oh.max(1) {
            for oc in 0..ow.max(1) {
                buf.clear();
                for dr in 0..window.min(h) {
                    for dc in 0..window.min(w) {
                        let r = (or * window + dr).min(h - 1);
                        let cidx = (oc * window + dc).min(w - 1);
                        buf.push(input.get3(ch, r, cidx));
                    }
                }
                out.set3(ch, or, oc, reduce(&buf));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_spec_validation_and_shapes() {
        assert!(ConvLayerSpec::new("bad", 0, 8, 3, 1, 32, true).is_err());
        assert!(ConvLayerSpec::new("bad", 8, 8, 33, 1, 32, true).is_err());
        let spec = ConvLayerSpec::new("conv1", 3, 64, 3, 1, 224, true).unwrap();
        assert_eq!(spec.output_size(), 224);
        assert_eq!(spec.weight_count(), 3 * 64 * 9);
        assert_eq!(spec.macs(), 224 * 224 * 3 * 64 * 9);
        assert_eq!(spec.input_activations(), 3 * 224 * 224);
        assert_eq!(spec.output_activations(), 64 * 224 * 224);
    }

    #[test]
    fn strided_and_unpadded_output_sizes() {
        // AlexNet conv1: 11x11 stride 4 on 224 (padded) -> 56.
        let spec = ConvLayerSpec::new("alex1", 3, 64, 11, 4, 224, true).unwrap();
        assert_eq!(spec.output_size(), 56);
        // Unpadded valid: (32 - 3)/1 + 1 = 30.
        let spec = ConvLayerSpec::new("v", 1, 1, 3, 1, 32, false).unwrap();
        assert_eq!(spec.output_size(), 30);
        // Unpadded strided: (32 - 4)/2 + 1 = 15.
        let spec = ConvLayerSpec::new("v", 1, 1, 4, 2, 32, false).unwrap();
        assert_eq!(spec.output_size(), 15);
    }

    #[test]
    fn conv2d_construction() {
        assert!(Conv2d::random(0, 4, 3, 1, true, 0.1, 0).is_err());
        let conv = Conv2d::random(3, 8, 3, 1, true, 0.1, 1).unwrap();
        assert_eq!(conv.in_channels(), 3);
        assert_eq!(conv.out_channels(), 8);
        assert_eq!(conv.kernel(), 3);
        let spec = conv.spec("c", 32).unwrap();
        assert_eq!(spec.out_channels, 8);
        assert_eq!(spec.input_size, 32);
    }

    #[test]
    fn linear_forward() {
        let mut layer = Linear::random(3, 2, 0.5, 3).unwrap();
        layer.weights = Matrix::new(2, 3, vec![1.0, 0.0, -1.0, 0.5, 0.5, 0.5]).unwrap();
        layer.bias = vec![1.0, 0.0];
        let out = layer.forward(&[2.0, 4.0, 6.0]).unwrap();
        assert_eq!(out, vec![2.0 - 6.0 + 1.0, 1.0 + 2.0 + 3.0]);
        assert!(layer.forward(&[1.0]).is_err());
        assert!(Linear::random(0, 2, 0.5, 3).is_err());
    }

    #[test]
    fn relu_clamps_negatives() {
        let t = Tensor::new(vec![1, 2, 2], vec![1.0, -1.0, 0.0, -3.0]).unwrap();
        assert_eq!(relu(&t).data(), &[1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn max_and_avg_pooling() {
        let t = Tensor::new(
            vec![1, 4, 4],
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
        )
        .unwrap();
        let mp = max_pool2d(&t, 2);
        assert_eq!(mp.shape(), &[1, 2, 2]);
        assert_eq!(mp.data(), &[6.0, 8.0, 14.0, 16.0]);
        let ap = avg_pool2d(&t, 2);
        assert_eq!(ap.data(), &[3.5, 5.5, 11.5, 13.5]);
    }

    #[test]
    fn global_average_pooling() {
        let t = Tensor::new(vec![2, 2, 2], vec![1.0, 1.0, 1.0, 1.0, 2.0, 4.0, 6.0, 8.0]).unwrap();
        assert_eq!(global_avg_pool(&t), vec![1.0, 5.0]);
    }
}
