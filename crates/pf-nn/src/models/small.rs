//! A small runnable CNN used for the end-to-end accuracy experiments.
//!
//! The reproduction cannot ship ImageNet weights, so accuracy trends (the
//! Table I accuracy-drop numbers and the Figure 7 accuracy-vs-depth sweep)
//! are measured on this small network over the synthetic dataset of
//! [`crate::dataset`]: a fixed random convolutional feature extractor runs
//! through the *exact same numeric pipeline* as the big networks (reference
//! 2D convolution vs row-tiled execution with quantisation, noise and
//! temporal accumulation), and a linear probe trained on the reference
//! features measures how much classification accuracy each non-ideality
//! costs. See DESIGN.md for the substitution rationale.

use crate::error::NnError;
use crate::executor::Conv2dExecutor;
use crate::layers::{max_pool2d, relu, Conv2d};
use crate::tensor::Tensor;

/// A two-convolution-layer feature extractor with fixed (seeded) random
/// weights.
#[derive(Debug, Clone, PartialEq)]
pub struct SmallCnn {
    conv1: Conv2d,
    conv2: Conv2d,
    input_channels: usize,
    input_size: usize,
}

impl SmallCnn {
    /// Creates the extractor for `input_channels`×`input_size`×`input_size`
    /// images.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] if the input size is not a
    /// multiple of 4 (two 2× poolings) or any dimension is zero.
    pub fn new(input_channels: usize, input_size: usize, seed: u64) -> Result<Self, NnError> {
        if input_channels == 0 || input_size == 0 || !input_size.is_multiple_of(4) {
            return Err(NnError::InvalidParameter {
                name: "input_size",
                requirement: "must be a non-zero multiple of 4".to_string(),
            });
        }
        Ok(Self {
            conv1: Conv2d::random(input_channels, 8, 3, 1, true, 0.5, seed)?,
            conv2: Conv2d::random(8, 16, 3, 1, true, 0.35, seed.wrapping_add(1))?,
            input_channels,
            input_size,
        })
    }

    /// Number of features produced by [`SmallCnn::features`].
    pub fn feature_len(&self) -> usize {
        16 * (self.input_size / 4) * (self.input_size / 4)
    }

    /// The first convolution layer (exposed for fidelity studies).
    pub fn conv1(&self) -> &Conv2d {
        &self.conv1
    }

    /// The second convolution layer.
    pub fn conv2(&self) -> &Conv2d {
        &self.conv2
    }

    /// Extracts the flattened feature vector of one image using the supplied
    /// convolution executor.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the image does not have the
    /// configured shape, or propagates executor errors.
    pub fn features(
        &self,
        image: &Tensor,
        executor: &dyn Conv2dExecutor,
    ) -> Result<Vec<f64>, NnError> {
        if image.shape() != [self.input_channels, self.input_size, self.input_size] {
            return Err(NnError::ShapeMismatch {
                expected: format!(
                    "[{}, {}, {}]",
                    self.input_channels, self.input_size, self.input_size
                ),
                found: format!("{:?}", image.shape()),
            });
        }
        let x = executor.forward(image, &self.conv1)?;
        let x = max_pool2d(&relu(&x), 2);
        let x = executor.forward(&x, &self.conv2)?;
        let x = max_pool2d(&relu(&x), 2);
        Ok(x.to_vec())
    }

    /// Extracts features for a whole batch of images.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SmallCnn::features`].
    pub fn features_batch(
        &self,
        images: &[Tensor],
        executor: &dyn Conv2dExecutor,
    ) -> Result<Vec<Vec<f64>>, NnError> {
        images
            .iter()
            .map(|img| self.features(img, executor))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::ReferenceExecutor;

    #[test]
    fn construction_validation() {
        assert!(SmallCnn::new(0, 16, 1).is_err());
        assert!(SmallCnn::new(1, 15, 1).is_err());
        assert!(SmallCnn::new(1, 16, 1).is_ok());
    }

    #[test]
    fn feature_dimensions() {
        let cnn = SmallCnn::new(1, 16, 7).unwrap();
        assert_eq!(cnn.feature_len(), 16 * 4 * 4);
        let image = Tensor::random(vec![1, 16, 16], 0.0, 1.0, 3);
        let feats = cnn.features(&image, &ReferenceExecutor).unwrap();
        assert_eq!(feats.len(), cnn.feature_len());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SmallCnn::new(1, 16, 7).unwrap();
        let b = SmallCnn::new(1, 16, 7).unwrap();
        assert_eq!(a, b);
        let image = Tensor::random(vec![1, 16, 16], 0.0, 1.0, 3);
        let fa = a.features(&image, &ReferenceExecutor).unwrap();
        let fb = b.features(&image, &ReferenceExecutor).unwrap();
        assert_eq!(fa, fb);
    }

    #[test]
    fn rejects_wrong_image_shape() {
        let cnn = SmallCnn::new(1, 16, 7).unwrap();
        let bad = Tensor::random(vec![3, 16, 16], 0.0, 1.0, 3);
        assert!(cnn.features(&bad, &ReferenceExecutor).is_err());
    }

    #[test]
    fn batch_features() {
        let cnn = SmallCnn::new(1, 16, 9).unwrap();
        let images: Vec<Tensor> = (0..3)
            .map(|i| Tensor::random(vec![1, 16, 16], 0.0, 1.0, i))
            .collect();
        let feats = cnn.features_batch(&images, &ReferenceExecutor).unwrap();
        assert_eq!(feats.len(), 3);
        assert!(feats.iter().all(|f| f.len() == cnn.feature_len()));
    }
}
