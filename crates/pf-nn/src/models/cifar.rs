//! CIFAR-10-scale networks: ResNet-s (the pruned ResNet used by the
//! temporal-accumulation accuracy study of Figure 7, taken from the MLPerf
//! Tiny suite) and the 4-layer CNN used by the CrossLight comparison.

use crate::layers::ConvLayerSpec;
use crate::models::NetworkSpec;

fn conv(
    name: &str,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    input_size: usize,
) -> ConvLayerSpec {
    ConvLayerSpec::new(
        name,
        in_channels,
        out_channels,
        kernel,
        stride,
        input_size,
        true,
    )
    .expect("static layer definitions are valid")
}

/// ResNet-s: the compressed CIFAR-10 ResNet (MLPerf Tiny image
/// classification model, a ResNet-8) that the paper uses to study temporal
/// accumulation because compressed networks are more quantisation-sensitive
/// (Section V-C1).
pub fn resnet_s() -> NetworkSpec {
    NetworkSpec {
        name: "ResNet-s".to_string(),
        input_size: 32,
        num_classes: 10,
        conv_layers: vec![
            conv("conv1", 3, 16, 3, 1, 32),
            // Stage 1: 16 channels at 32x32.
            conv("block1_conv1", 16, 16, 3, 1, 32),
            conv("block1_conv2", 16, 16, 3, 1, 32),
            // Stage 2: 32 channels at 16x16 with a strided entry.
            conv("block2_conv1", 16, 32, 3, 2, 32),
            conv("block2_conv2", 32, 32, 3, 1, 16),
            conv("block2_downsample", 16, 32, 1, 2, 32),
            // Stage 3: 64 channels at 8x8.
            conv("block3_conv1", 32, 64, 3, 2, 16),
            conv("block3_conv2", 64, 64, 3, 1, 8),
            conv("block3_downsample", 32, 64, 1, 2, 16),
        ],
    }
}

/// The 4-layer CIFAR-10 CNN used by CrossLight (Sunny et al., DAC 2021),
/// which the paper re-uses for its energy-per-inference comparison
/// (Section VI-E: 4.76 µJ vs 427 µJ).
pub fn crosslight_cnn() -> NetworkSpec {
    NetworkSpec {
        name: "CrossLight-CNN".to_string(),
        input_size: 32,
        num_classes: 10,
        conv_layers: vec![
            conv("conv1", 3, 32, 3, 1, 32),
            conv("conv2", 32, 32, 3, 1, 32),
            conv("conv3", 32, 64, 3, 1, 16),
            conv("conv4", 64, 64, 3, 1, 16),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet_s_inventory() {
        let net = resnet_s();
        assert_eq!(net.input_size, 32);
        assert_eq!(net.num_classes, 10);
        assert_eq!(net.num_conv_layers(), 9);
        // A compressed network: comfortably below 100 MMACs.
        assert!(net.total_macs() < 100_000_000);
        // Channel counts stay small.
        assert!(net.conv_layers.iter().all(|l| l.out_channels <= 64));
    }

    #[test]
    fn crosslight_inventory() {
        let net = crosslight_cnn();
        assert_eq!(net.num_conv_layers(), 4);
        assert!(net.conv_layers.iter().all(|l| l.kernel == 3));
        assert_eq!(net.conv_layers[0].in_channels, 3);
        assert_eq!(net.conv_layers[3].out_channels, 64);
    }

    #[test]
    fn cifar_networks_are_much_smaller_than_imagenet() {
        let vgg = crate::models::imagenet::vgg16();
        assert!(resnet_s().total_macs() * 100 < vgg.total_macs());
        assert!(crosslight_cnn().total_macs() * 100 < vgg.total_macs());
    }
}
