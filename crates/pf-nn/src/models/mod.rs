//! The CNN model zoo used in the paper's evaluation.
//!
//! Each network is described as the ordered list of its convolution layers
//! ([`crate::layers::ConvLayerSpec`]); the paper only accelerates and
//! benchmarks convolution layers since they contribute more than 99% of the
//! MACs (Section VI-A). Fully-connected layers and poolings are therefore
//! not part of the performance model, but the runnable
//! [`small::SmallCnn`] includes them for the end-to-end accuracy experiments.

pub mod cifar;
pub mod imagenet;
pub mod small;

use serde::{Deserialize, Serialize};

use crate::layers::ConvLayerSpec;

/// A network described by its convolution layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Network name, e.g. "VGG-16".
    pub name: String,
    /// Input image resolution (height = width).
    pub input_size: usize,
    /// Number of classifier outputs.
    pub num_classes: usize,
    /// Convolution layers, in execution order.
    pub conv_layers: Vec<ConvLayerSpec>,
}

impl NetworkSpec {
    /// Total multiply-accumulate count over all convolution layers.
    pub fn total_macs(&self) -> u64 {
        self.conv_layers.iter().map(|l| l.macs()).sum()
    }

    /// Total number of convolution weights.
    pub fn total_weights(&self) -> u64 {
        self.conv_layers.iter().map(|l| l.weight_count()).sum()
    }

    /// Largest single-layer activation footprint in values (input or
    /// output), which sizes the activation SRAM (Section V-A requires 2×
    /// this for ping-pong buffering).
    pub fn max_activation_values(&self) -> u64 {
        self.conv_layers
            .iter()
            .map(|l| l.input_activations().max(l.output_activations()))
            .max()
            .unwrap_or(0)
    }

    /// Largest single-layer weight footprint in values, which sizes the
    /// weight SRAM.
    pub fn max_layer_weights(&self) -> u64 {
        self.conv_layers
            .iter()
            .map(|l| l.weight_count())
            .max()
            .unwrap_or(0)
    }

    /// Number of convolution layers.
    pub fn num_conv_layers(&self) -> usize {
        self.conv_layers.len()
    }
}

/// All five ImageNet-scale CNNs the paper benchmarks in Table III and
/// Section VI (AlexNet, VGG-16, ResNet-18/34/50).
pub fn paper_benchmark_suite() -> Vec<NetworkSpec> {
    vec![
        imagenet::alexnet(),
        imagenet::vgg16(),
        imagenet::resnet18(),
        imagenet::resnet34(),
        imagenet::resnet50(),
    ]
}

/// The three networks used for the prior-work comparison of Figure 13.
pub fn comparison_suite() -> Vec<NetworkSpec> {
    vec![imagenet::alexnet(), imagenet::vgg16(), imagenet::resnet18()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_contents() {
        let suite = paper_benchmark_suite();
        assert_eq!(suite.len(), 5);
        let names: Vec<&str> = suite.iter().map(|n| n.name.as_str()).collect();
        assert!(names.contains(&"AlexNet"));
        assert!(names.contains(&"VGG-16"));
        assert!(names.contains(&"ResNet-50"));
        assert_eq!(comparison_suite().len(), 3);
    }

    #[test]
    fn aggregate_statistics_are_positive() {
        for net in paper_benchmark_suite() {
            assert!(net.total_macs() > 0, "{} has zero MACs", net.name);
            assert!(net.total_weights() > 0);
            assert!(net.max_activation_values() > 0);
            assert!(net.num_conv_layers() > 0);
        }
    }
}
