//! ImageNet-scale networks: AlexNet, VGG-16 and the ResNet family.
//!
//! Layer shapes follow the standard torchvision definitions the paper's
//! PyTorch evaluation uses. Only convolution layers are listed (see the
//! module documentation of [`crate::models`]).

use crate::layers::ConvLayerSpec;
use crate::models::NetworkSpec;

fn conv(
    name: &str,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    input_size: usize,
) -> ConvLayerSpec {
    ConvLayerSpec::new(
        name,
        in_channels,
        out_channels,
        kernel,
        stride,
        input_size,
        true,
    )
    .expect("static layer definitions are valid")
}

/// AlexNet (Krizhevsky et al., 2012): five convolution layers, the first
/// with an 11×11 stride-4 kernel that makes PhotoFourier comparatively
/// inefficient (Section VI-E).
pub fn alexnet() -> NetworkSpec {
    NetworkSpec {
        name: "AlexNet".to_string(),
        input_size: 224,
        num_classes: 1000,
        conv_layers: vec![
            conv("conv1", 3, 64, 11, 4, 224),
            conv("conv2", 64, 192, 5, 1, 27),
            conv("conv3", 192, 384, 3, 1, 13),
            conv("conv4", 384, 256, 3, 1, 13),
            conv("conv5", 256, 256, 3, 1, 13),
        ],
    }
}

/// VGG-16 (Simonyan & Zisserman, 2014): thirteen 3×3 convolution layers.
pub fn vgg16() -> NetworkSpec {
    let mut layers = Vec::new();
    let blocks: [(usize, usize, usize, usize); 5] = [
        // (in_channels at block start, out_channels, convs in block, input size)
        (3, 64, 2, 224),
        (64, 128, 2, 112),
        (128, 256, 3, 56),
        (256, 512, 3, 28),
        (512, 512, 3, 14),
    ];
    for (b, (in_c, out_c, count, size)) in blocks.iter().enumerate() {
        for i in 0..*count {
            let ic = if i == 0 { *in_c } else { *out_c };
            layers.push(conv(
                &format!("conv{}_{}", b + 1, i + 1),
                ic,
                *out_c,
                3,
                1,
                *size,
            ));
        }
    }
    NetworkSpec {
        name: "VGG-16".to_string(),
        input_size: 224,
        num_classes: 1000,
        conv_layers: layers,
    }
}

/// Builds a basic-block ResNet (18 or 34 layers) for 224×224 inputs.
fn resnet_basic(name: &str, blocks_per_stage: [usize; 4]) -> NetworkSpec {
    let mut layers = Vec::new();
    layers.push(conv("conv1", 3, 64, 7, 2, 224));

    let stage_channels = [64usize, 128, 256, 512];
    let stage_inputs = [56usize, 56, 28, 14]; // feature-map size entering each stage
    let mut in_c = 64;
    for (s, &num_blocks) in blocks_per_stage.iter().enumerate() {
        let out_c = stage_channels[s];
        let mut size = stage_inputs[s];
        for b in 0..num_blocks {
            let stride = if s > 0 && b == 0 { 2 } else { 1 };
            layers.push(conv(
                &format!("layer{}_{}_conv1", s + 1, b + 1),
                in_c,
                out_c,
                3,
                stride,
                size,
            ));
            let post = size.div_ceil(stride);
            layers.push(conv(
                &format!("layer{}_{}_conv2", s + 1, b + 1),
                out_c,
                out_c,
                3,
                1,
                post,
            ));
            if stride != 1 || in_c != out_c {
                layers.push(conv(
                    &format!("layer{}_{}_downsample", s + 1, b + 1),
                    in_c,
                    out_c,
                    1,
                    stride,
                    size,
                ));
            }
            in_c = out_c;
            size = post;
        }
    }
    NetworkSpec {
        name: name.to_string(),
        input_size: 224,
        num_classes: 1000,
        conv_layers: layers,
    }
}

/// Builds a bottleneck-block ResNet (50 layers) for 224×224 inputs.
fn resnet_bottleneck(name: &str, blocks_per_stage: [usize; 4]) -> NetworkSpec {
    let mut layers = Vec::new();
    layers.push(conv("conv1", 3, 64, 7, 2, 224));

    let stage_mid = [64usize, 128, 256, 512];
    let stage_inputs = [56usize, 56, 28, 14];
    let expansion = 4;
    let mut in_c = 64;
    for (s, &num_blocks) in blocks_per_stage.iter().enumerate() {
        let mid = stage_mid[s];
        let out_c = mid * expansion;
        let mut size = stage_inputs[s];
        for b in 0..num_blocks {
            let stride = if s > 0 && b == 0 { 2 } else { 1 };
            layers.push(conv(
                &format!("layer{}_{}_conv1", s + 1, b + 1),
                in_c,
                mid,
                1,
                1,
                size,
            ));
            layers.push(conv(
                &format!("layer{}_{}_conv2", s + 1, b + 1),
                mid,
                mid,
                3,
                stride,
                size,
            ));
            let post = size.div_ceil(stride);
            layers.push(conv(
                &format!("layer{}_{}_conv3", s + 1, b + 1),
                mid,
                out_c,
                1,
                1,
                post,
            ));
            if stride != 1 || in_c != out_c {
                layers.push(conv(
                    &format!("layer{}_{}_downsample", s + 1, b + 1),
                    in_c,
                    out_c,
                    1,
                    stride,
                    size,
                ));
            }
            in_c = out_c;
            size = post;
        }
    }
    NetworkSpec {
        name: name.to_string(),
        input_size: 224,
        num_classes: 1000,
        conv_layers: layers,
    }
}

/// ResNet-18 (He et al., 2016).
pub fn resnet18() -> NetworkSpec {
    resnet_basic("ResNet-18", [2, 2, 2, 2])
}

/// ResNet-34.
pub fn resnet34() -> NetworkSpec {
    resnet_basic("ResNet-34", [3, 4, 6, 3])
}

/// ResNet-50 (bottleneck blocks).
pub fn resnet50() -> NetworkSpec {
    resnet_bottleneck("ResNet-50", [3, 4, 6, 3])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_shape_inventory() {
        let net = alexnet();
        assert_eq!(net.num_conv_layers(), 5);
        assert_eq!(net.conv_layers[0].kernel, 11);
        assert_eq!(net.conv_layers[0].stride, 4);
        // Around 0.66 GMACs in the conv layers of AlexNet.
        let gmacs = net.total_macs() as f64 / 1e9;
        assert!((0.4..1.2).contains(&gmacs), "AlexNet GMACs {gmacs}");
    }

    #[test]
    fn vgg16_shape_inventory() {
        let net = vgg16();
        assert_eq!(net.num_conv_layers(), 13);
        assert!(net
            .conv_layers
            .iter()
            .all(|l| l.kernel == 3 && l.stride == 1));
        // VGG-16 convolution MACs ~ 15.3 GMACs.
        let gmacs = net.total_macs() as f64 / 1e9;
        assert!((14.0..17.0).contains(&gmacs), "VGG-16 GMACs {gmacs}");
        // ~14.7 M conv weights.
        let mw = net.total_weights() as f64 / 1e6;
        assert!((13.0..16.0).contains(&mw), "VGG-16 conv weights {mw} M");
    }

    #[test]
    fn resnet18_shape_inventory() {
        let net = resnet18();
        // 1 stem + 2 convs * 8 blocks + 3 downsamples = 20 conv layers.
        assert_eq!(net.num_conv_layers(), 20);
        let gmacs = net.total_macs() as f64 / 1e9;
        assert!((1.5..2.2).contains(&gmacs), "ResNet-18 GMACs {gmacs}");
        // ~11 M conv weights.
        let mw = net.total_weights() as f64 / 1e6;
        assert!((10.0..12.5).contains(&mw), "ResNet-18 conv weights {mw} M");
    }

    #[test]
    fn resnet34_shape_inventory() {
        let net = resnet34();
        // 1 stem + 2*16 + 3 downsamples = 36.
        assert_eq!(net.num_conv_layers(), 36);
        let gmacs = net.total_macs() as f64 / 1e9;
        assert!((3.2..4.2).contains(&gmacs), "ResNet-34 GMACs {gmacs}");
        // The paper notes ResNet-34 has 18 conv layers with inputs <= 14x14.
        let small_inputs = net
            .conv_layers
            .iter()
            .filter(|l| l.input_size <= 14)
            .count();
        assert!(
            (16..=20).contains(&small_inputs),
            "ResNet-34 late layers {small_inputs}"
        );
    }

    #[test]
    fn resnet50_shape_inventory() {
        let net = resnet50();
        // 1 stem + 3*16 + 4 downsamples = 53.
        assert_eq!(net.num_conv_layers(), 53);
        let gmacs = net.total_macs() as f64 / 1e9;
        assert!((3.5..4.5).contains(&gmacs), "ResNet-50 GMACs {gmacs}");
    }

    #[test]
    fn feature_map_sizes_are_consistent() {
        // Every layer's output feeds a later layer of matching input size at
        // least once (coarse sanity check on the hand-written inventories).
        for net in [alexnet(), vgg16(), resnet18(), resnet34(), resnet50()] {
            for layer in &net.conv_layers {
                assert!(layer.output_size() > 0, "{}: {}", net.name, layer.name);
                assert!(layer.input_size <= 224);
            }
        }
    }
}
