//! A small dense tensor type.
//!
//! Activations are stored as `(channels, height, width)` and convolution
//! weights as `(out_channels, in_channels, kernel_h, kernel_w)`, both in
//! row-major order. The type deliberately stays minimal: PhotoFourier's
//! experiments need indexing, channel views, a handful of element-wise
//! operations and conversions to/from the `pf_dsp` matrix type.

use pf_dsp::conv::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::error::NnError;

/// Dense row-major tensor of `f64` values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f64>,
}

impl Tensor {
    /// Creates a tensor from a shape and data.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the data length does not equal
    /// the product of the shape, or [`NnError::InvalidParameter`] for an
    /// empty shape.
    pub fn new(shape: Vec<usize>, data: Vec<f64>) -> Result<Self, NnError> {
        if shape.is_empty() {
            return Err(NnError::InvalidParameter {
                name: "shape",
                requirement: "must have at least one dimension".to_string(),
            });
        }
        let numel: usize = shape.iter().product();
        if numel != data.len() {
            return Err(NnError::ShapeMismatch {
                expected: format!("{numel} elements for shape {shape:?}"),
                found: format!("{} elements", data.len()),
            });
        }
        Ok(Self { shape, data })
    }

    /// Creates a zero-filled tensor.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty.
    pub fn zeros(shape: Vec<usize>) -> Self {
        assert!(!shape.is_empty(), "shape must not be empty");
        let numel = shape.iter().product();
        Self {
            shape,
            data: vec![0.0; numel],
        }
    }

    /// Creates a tensor of uniformly distributed random values in
    /// `[low, high)` using a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or `low >= high`.
    pub fn random(shape: Vec<usize>, low: f64, high: f64, seed: u64) -> Self {
        assert!(!shape.is_empty(), "shape must not be empty");
        assert!(low < high, "low must be less than high");
        let mut rng = StdRng::seed_from_u64(seed);
        let numel = shape.iter().product();
        let data = (0..numel).map(|_| rng.gen_range(low..high)).collect();
        Self { shape, data }
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the underlying data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element access for a 3D `(c, h, w)` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 3-dimensional or an index is out of
    /// bounds.
    pub fn get3(&self, c: usize, h: usize, w: usize) -> f64 {
        assert_eq!(self.shape.len(), 3, "get3 requires a 3D tensor");
        let (ch, hh, ww) = (self.shape[0], self.shape[1], self.shape[2]);
        assert!(c < ch && h < hh && w < ww, "index out of bounds");
        self.data[(c * hh + h) * ww + w]
    }

    /// Mutable element access for a 3D `(c, h, w)` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 3-dimensional or an index is out of
    /// bounds.
    pub fn set3(&mut self, c: usize, h: usize, w: usize, v: f64) {
        assert_eq!(self.shape.len(), 3, "set3 requires a 3D tensor");
        let (ch, hh, ww) = (self.shape[0], self.shape[1], self.shape[2]);
        assert!(c < ch && h < hh && w < ww, "index out of bounds");
        self.data[(c * hh + h) * ww + w] = v;
    }

    /// Element access for a 4D `(o, i, h, w)` tensor (convolution weights).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 4-dimensional or an index is out of
    /// bounds.
    pub fn get4(&self, o: usize, i: usize, h: usize, w: usize) -> f64 {
        assert_eq!(self.shape.len(), 4, "get4 requires a 4D tensor");
        let (oo, ii, hh, ww) = (self.shape[0], self.shape[1], self.shape[2], self.shape[3]);
        assert!(o < oo && i < ii && h < hh && w < ww, "index out of bounds");
        self.data[((o * ii + i) * hh + h) * ww + w]
    }

    /// Extracts channel `c` of a 3D tensor as a [`Matrix`].
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 3-dimensional or `c` is out of bounds.
    pub fn channel(&self, c: usize) -> Matrix {
        assert_eq!(self.shape.len(), 3, "channel() requires a 3D tensor");
        let (ch, h, w) = (self.shape[0], self.shape[1], self.shape[2]);
        assert!(c < ch, "channel index out of bounds");
        let start = c * h * w;
        Matrix::new(h, w, self.data[start..start + h * w].to_vec())
            .expect("channel slice has the right length")
    }

    /// Extracts the `(kernel_h, kernel_w)` filter plane for output channel
    /// `o`, input channel `i` of a 4D weight tensor as a [`Matrix`].
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 4-dimensional or an index is out of
    /// bounds.
    pub fn filter_plane(&self, o: usize, i: usize) -> Matrix {
        assert_eq!(self.shape.len(), 4, "filter_plane() requires a 4D tensor");
        let (oo, ii, kh, kw) = (self.shape[0], self.shape[1], self.shape[2], self.shape[3]);
        assert!(o < oo && i < ii, "filter index out of bounds");
        let start = (o * ii + i) * kh * kw;
        Matrix::new(kh, kw, self.data[start..start + kh * kw].to_vec())
            .expect("filter slice has the right length")
    }

    /// Builds a 3D tensor from a list of per-channel matrices.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the matrices do not all share
    /// the same shape, or [`NnError::InvalidParameter`] if the list is empty.
    pub fn from_channels(channels: &[Matrix]) -> Result<Self, NnError> {
        let first = channels.first().ok_or(NnError::InvalidParameter {
            name: "channels",
            requirement: "must contain at least one matrix".to_string(),
        })?;
        let (h, w) = (first.rows(), first.cols());
        let mut data = Vec::with_capacity(channels.len() * h * w);
        for m in channels {
            if m.rows() != h || m.cols() != w {
                return Err(NnError::ShapeMismatch {
                    expected: format!("{h}x{w}"),
                    found: format!("{}x{}", m.rows(), m.cols()),
                });
            }
            data.extend_from_slice(m.data());
        }
        Ok(Self {
            shape: vec![channels.len(), h, w],
            data,
        })
    }

    /// Applies a function element-wise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Self {
        Self {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Self, NnError> {
        if self.shape != other.shape {
            return Err(NnError::ShapeMismatch {
                expected: format!("{:?}", self.shape),
                found: format!("{:?}", other.shape),
            });
        }
        Ok(Self {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
        })
    }

    /// Maximum absolute value (zero for an all-zero tensor).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }

    /// Flattens to a 1D vector (clones the data).
    pub fn to_vec(&self) -> Vec<f64> {
        self.data.clone()
    }

    /// Reshapes the tensor without moving data.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the element count changes.
    pub fn reshape(mut self, shape: Vec<usize>) -> Result<Self, NnError> {
        let numel: usize = shape.iter().product();
        if numel != self.data.len() {
            return Err(NnError::ShapeMismatch {
                expected: format!("{} elements", self.data.len()),
                found: format!("{numel} elements for shape {shape:?}"),
            });
        }
        self.shape = shape;
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_validation() {
        assert!(Tensor::new(vec![], vec![]).is_err());
        assert!(Tensor::new(vec![2, 2], vec![1.0]).is_err());
        let t = Tensor::new(vec![2, 3], (0..6).map(|x| x as f64).collect()).unwrap();
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.numel(), 6);
    }

    #[test]
    fn zeros_and_random() {
        let z = Tensor::zeros(vec![2, 4]);
        assert!(z.data().iter().all(|&v| v == 0.0));
        let r1 = Tensor::random(vec![3, 3], -1.0, 1.0, 42);
        let r2 = Tensor::random(vec![3, 3], -1.0, 1.0, 42);
        assert_eq!(r1, r2);
        let r3 = Tensor::random(vec![3, 3], -1.0, 1.0, 43);
        assert_ne!(r1, r3);
        assert!(r1.data().iter().all(|&v| (-1.0..1.0).contains(&v)));
    }

    #[test]
    fn indexing_3d_and_4d() {
        let mut t = Tensor::zeros(vec![2, 3, 4]);
        t.set3(1, 2, 3, 7.0);
        assert_eq!(t.get3(1, 2, 3), 7.0);
        assert_eq!(t.get3(0, 0, 0), 0.0);

        let w = Tensor::new(vec![2, 2, 2, 2], (0..16).map(|x| x as f64).collect()).unwrap();
        assert_eq!(w.get4(0, 0, 0, 0), 0.0);
        assert_eq!(w.get4(1, 1, 1, 1), 15.0);
        assert_eq!(w.get4(1, 0, 1, 0), 10.0);
    }

    #[test]
    #[should_panic(expected = "requires a 3D tensor")]
    fn get3_on_2d_panics() {
        let t = Tensor::zeros(vec![2, 2]);
        let _ = t.get3(0, 0, 0);
    }

    #[test]
    fn channel_and_filter_views() {
        let t = Tensor::new(vec![2, 2, 3], (0..12).map(|x| x as f64).collect()).unwrap();
        let c1 = t.channel(1);
        assert_eq!(c1.rows(), 2);
        assert_eq!(c1.cols(), 3);
        assert_eq!(c1.data(), &[6.0, 7.0, 8.0, 9.0, 10.0, 11.0]);

        let w = Tensor::new(vec![2, 3, 2, 2], (0..24).map(|x| x as f64).collect()).unwrap();
        let f = w.filter_plane(1, 2);
        assert_eq!(f.data(), &[20.0, 21.0, 22.0, 23.0]);
    }

    #[test]
    fn from_channels_roundtrip() {
        let t = Tensor::random(vec![3, 4, 5], -1.0, 1.0, 7);
        let channels: Vec<Matrix> = (0..3).map(|c| t.channel(c)).collect();
        let rebuilt = Tensor::from_channels(&channels).unwrap();
        assert_eq!(rebuilt, t);
        assert!(Tensor::from_channels(&[]).is_err());
        let mismatched = vec![Matrix::zeros(2, 2), Matrix::zeros(3, 3)];
        assert!(Tensor::from_channels(&mismatched).is_err());
    }

    #[test]
    fn map_add_maxabs() {
        let a = Tensor::new(vec![2, 2], vec![1.0, -2.0, 3.0, -4.0]).unwrap();
        let relu = a.map(|x| x.max(0.0));
        assert_eq!(relu.data(), &[1.0, 0.0, 3.0, 0.0]);
        let b = Tensor::new(vec![2, 2], vec![1.0; 4]).unwrap();
        let sum = a.add(&b).unwrap();
        assert_eq!(sum.data(), &[2.0, -1.0, 4.0, -3.0]);
        assert_eq!(a.max_abs(), 4.0);
        let c = Tensor::zeros(vec![3, 3]);
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn reshape() {
        let t = Tensor::new(vec![2, 6], (0..12).map(|x| x as f64).collect()).unwrap();
        let r = t.clone().reshape(vec![3, 4]).unwrap();
        assert_eq!(r.shape(), &[3, 4]);
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(vec![5, 5]).is_err());
    }
}
