//! Synthetic image-classification dataset.
//!
//! The reproduction has no access to ImageNet or CIFAR-10, so accuracy
//! experiments run on a deterministic synthetic task: each class is a smooth
//! random prototype pattern and samples are noisy, slightly shifted copies of
//! their class prototype. The task is easy enough that a linear probe on CNN
//! features reaches high accuracy with exact arithmetic, which makes the
//! *drop* caused by quantisation / noise / tiling clearly measurable — the
//! same quantity the paper's Table I and Figure 7 report.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::error::NnError;
use crate::tensor::Tensor;

/// Configuration of the synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Number of classes.
    pub num_classes: usize,
    /// Image side length (images are single-channel squares).
    pub image_size: usize,
    /// Per-pixel Gaussian noise added to each sample.
    pub noise_sigma: f64,
    /// Maximum circular shift (pixels) applied to each sample.
    pub max_shift: usize,
    /// Random seed controlling prototypes and samples.
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        Self {
            num_classes: 4,
            image_size: 16,
            noise_sigma: 0.15,
            max_shift: 2,
            seed: 7,
        }
    }
}

/// A labelled set of synthetic images.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Images, each `(1, size, size)`.
    pub images: Vec<Tensor>,
    /// Class label per image.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }
}

/// Generator producing train/test splits from a [`DatasetConfig`].
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    config: DatasetConfig,
    prototypes: Vec<Tensor>,
}

impl SyntheticDataset {
    /// Creates the generator (and its class prototypes).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] if there are fewer than two
    /// classes or the image size is zero.
    pub fn new(config: DatasetConfig) -> Result<Self, NnError> {
        if config.num_classes < 2 {
            return Err(NnError::InvalidParameter {
                name: "num_classes",
                requirement: "need at least two classes".to_string(),
            });
        }
        if config.image_size == 0 {
            return Err(NnError::InvalidParameter {
                name: "image_size",
                requirement: "must be non-zero".to_string(),
            });
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let prototypes = (0..config.num_classes)
            .map(|_| smooth_pattern(config.image_size, &mut rng))
            .collect();
        Ok(Self { config, prototypes })
    }

    /// The configuration used by this generator.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// The class prototypes.
    pub fn prototypes(&self) -> &[Tensor] {
        &self.prototypes
    }

    /// Generates `per_class` samples per class with the given split seed.
    pub fn generate(&self, per_class: usize, split_seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ split_seed.wrapping_mul(0x9E3779B9));
        let mut images = Vec::with_capacity(per_class * self.config.num_classes);
        let mut labels = Vec::with_capacity(per_class * self.config.num_classes);
        for class in 0..self.config.num_classes {
            for _ in 0..per_class {
                images.push(self.sample(class, &mut rng));
                labels.push(class);
            }
        }
        Dataset {
            images,
            labels,
            num_classes: self.config.num_classes,
        }
    }

    fn sample(&self, class: usize, rng: &mut StdRng) -> Tensor {
        let size = self.config.image_size;
        let proto = &self.prototypes[class];
        let dx = if self.config.max_shift > 0 {
            rng.gen_range(0..=self.config.max_shift * 2) as isize - self.config.max_shift as isize
        } else {
            0
        };
        let dy = if self.config.max_shift > 0 {
            rng.gen_range(0..=self.config.max_shift * 2) as isize - self.config.max_shift as isize
        } else {
            0
        };
        let mut out = Tensor::zeros(vec![1, size, size]);
        for r in 0..size {
            for c in 0..size {
                let sr = (r as isize + dy).rem_euclid(size as isize) as usize;
                let sc = (c as isize + dx).rem_euclid(size as isize) as usize;
                let noise = gaussian(rng) * self.config.noise_sigma;
                out.set3(0, r, c, proto.get3(0, sr, sc) + noise);
            }
        }
        out
    }
}

/// Generates a smooth positive pattern as a sum of a few random sinusoids.
fn smooth_pattern(size: usize, rng: &mut StdRng) -> Tensor {
    let mut out = Tensor::zeros(vec![1, size, size]);
    let components: Vec<(f64, f64, f64, f64)> = (0..4)
        .map(|_| {
            (
                rng.gen_range(0.5..2.5),                   // fx
                rng.gen_range(0.5..2.5),                   // fy
                rng.gen_range(0.0..std::f64::consts::TAU), // phase
                rng.gen_range(0.3..1.0),                   // amplitude
            )
        })
        .collect();
    for r in 0..size {
        for c in 0..size {
            let mut v = 0.0;
            for &(fx, fy, phase, amp) in &components {
                v += amp
                    * ((fx * r as f64 / size as f64 + fy * c as f64 / size as f64)
                        * std::f64::consts::TAU
                        + phase)
                        .sin();
            }
            out.set3(0, r, c, v * 0.5 + 1.0); // keep patterns mostly positive
        }
    }
    out
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        let cfg = DatasetConfig {
            num_classes: 1,
            ..Default::default()
        };
        assert!(SyntheticDataset::new(cfg).is_err());
        let cfg = DatasetConfig {
            image_size: 0,
            ..Default::default()
        };
        assert!(SyntheticDataset::new(cfg).is_err());
        assert!(SyntheticDataset::new(DatasetConfig::default()).is_ok());
    }

    #[test]
    fn generation_is_deterministic() {
        let gen = SyntheticDataset::new(DatasetConfig::default()).unwrap();
        let a = gen.generate(5, 1);
        let b = gen.generate(5, 1);
        assert_eq!(a, b);
        let c = gen.generate(5, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn dataset_shape_and_labels() {
        let cfg = DatasetConfig {
            num_classes: 3,
            ..Default::default()
        };
        let gen = SyntheticDataset::new(cfg).unwrap();
        let data = gen.generate(4, 0);
        assert_eq!(data.len(), 12);
        assert!(!data.is_empty());
        assert_eq!(data.num_classes, 3);
        assert_eq!(data.images[0].shape(), &[1, 16, 16]);
        // Labels are grouped per class, 4 each.
        for class in 0..3 {
            assert_eq!(data.labels.iter().filter(|&&l| l == class).count(), 4);
        }
    }

    #[test]
    fn classes_are_distinguishable() {
        // Prototypes of different classes should differ much more than the
        // injected noise, otherwise the accuracy experiments are meaningless.
        let gen = SyntheticDataset::new(DatasetConfig::default()).unwrap();
        let protos = gen.prototypes();
        for i in 0..protos.len() {
            for j in (i + 1)..protos.len() {
                let diff: f64 = protos[i]
                    .data()
                    .iter()
                    .zip(protos[j].data())
                    .map(|(a, b)| (a - b).abs())
                    .sum::<f64>()
                    / protos[i].numel() as f64;
                assert!(diff > 0.1, "prototypes {i} and {j} nearly identical");
            }
        }
    }

    #[test]
    fn samples_stay_near_prototype() {
        let cfg = DatasetConfig {
            noise_sigma: 0.05,
            max_shift: 0,
            ..Default::default()
        };
        let gen = SyntheticDataset::new(cfg).unwrap();
        let data = gen.generate(2, 3);
        for (img, &label) in data.images.iter().zip(&data.labels) {
            let proto = &gen.prototypes()[label];
            let mse: f64 = img
                .data()
                .iter()
                .zip(proto.data())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                / img.numel() as f64;
            assert!(mse < 0.05, "sample strayed too far from prototype: {mse}");
        }
    }
}
