//! Per-layer numerical fidelity of the row-tiled / photonic pipeline.
//!
//! The paper's Table I reports the ImageNet accuracy drop of row tiling on
//! AlexNet, VGG-16 and ResNet-18. Without ImageNet weights the reproduction
//! measures the quantity that *causes* that drop: the numerical error each
//! convolution layer accumulates when executed through row tiling (plus
//! quantisation / noise / temporal accumulation) instead of exact 2D
//! convolution. The per-layer relative error and SNR reported here, combined
//! with the end-to-end accuracy proxy in the benches, stand in for Table I
//! (see DESIGN.md and EXPERIMENTS.md).

use pf_tiling::Conv1dEngine;
use serde::{Deserialize, Serialize};

use crate::error::NnError;
use crate::executor::{Conv2dExecutor, PipelineConfig, ReferenceExecutor, TiledExecutor};
use crate::layers::{Conv2d, ConvLayerSpec};
use crate::models::NetworkSpec;
use crate::tensor::Tensor;

/// Fidelity metrics of one convolution layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerFidelity {
    /// Layer name.
    pub layer: String,
    /// Relative L2 error of the tiled output against the reference.
    pub relative_error: f64,
    /// Output SNR in dB.
    pub snr_db: f64,
    /// Maximum absolute error.
    pub max_abs_error: f64,
    /// Input resolution actually evaluated (may be capped for speed).
    pub evaluated_input_size: usize,
    /// Input channels actually evaluated.
    pub evaluated_in_channels: usize,
}

/// Aggregated fidelity of a whole network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FidelityReport {
    /// Network name.
    pub network: String,
    /// Per-layer metrics.
    pub layers: Vec<LayerFidelity>,
}

impl FidelityReport {
    /// Mean relative error across layers.
    pub fn mean_relative_error(&self) -> f64 {
        if self.layers.is_empty() {
            return 0.0;
        }
        self.layers.iter().map(|l| l.relative_error).sum::<f64>() / self.layers.len() as f64
    }

    /// Worst (minimum) per-layer SNR in dB.
    pub fn min_snr_db(&self) -> f64 {
        self.layers
            .iter()
            .map(|l| l.snr_db)
            .fold(f64::INFINITY, f64::min)
    }

    /// Worst (maximum) per-layer relative error.
    pub fn max_relative_error(&self) -> f64 {
        self.layers
            .iter()
            .map(|l| l.relative_error)
            .fold(0.0, f64::max)
    }
}

/// How layers are down-sampled for fidelity evaluation (full ImageNet layer
/// shapes would take minutes in a pure-Rust f64 reference convolution; the
/// error statistics converge with a handful of channels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FidelityConfig {
    /// Cap on the evaluated input resolution.
    pub max_input_size: usize,
    /// Cap on the evaluated input channels.
    pub max_in_channels: usize,
    /// Cap on the evaluated output channels.
    pub max_out_channels: usize,
    /// Random seed for weights and activations.
    pub seed: u64,
}

impl Default for FidelityConfig {
    fn default() -> Self {
        Self {
            max_input_size: 32,
            max_in_channels: 16,
            max_out_channels: 4,
            seed: 0,
        }
    }
}

/// Evaluates the fidelity of one layer shape under the given pipeline,
/// running the tiled executor against the exact reference on random data.
///
/// # Errors
///
/// Propagates tiling/shape errors from the executors.
pub fn evaluate_layer<E: Conv1dEngine>(
    spec: &ConvLayerSpec,
    engine: E,
    n_conv: usize,
    pipeline: PipelineConfig,
    config: &FidelityConfig,
) -> Result<LayerFidelity, NnError> {
    // Cap the resolution for speed, but never shrink below three kernel
    // spans: otherwise the border region (where the wraparound edge effect
    // lives) would dominate the sampled layer far more than it does at the
    // real resolution.
    let input_size = spec
        .input_size
        .min(config.max_input_size)
        .max(spec.kernel * 3)
        .min(spec.input_size);
    let in_channels = spec.in_channels.min(config.max_in_channels).max(1);
    let out_channels = spec.out_channels.min(config.max_out_channels).max(1);

    let layer = Conv2d::random(
        in_channels,
        out_channels,
        spec.kernel,
        spec.stride,
        spec.padded,
        0.5,
        config.seed ^ hash_name(&spec.name),
    )?;
    let input = Tensor::random(
        vec![in_channels, input_size, input_size],
        0.0,
        1.0,
        config.seed.wrapping_add(1) ^ hash_name(&spec.name),
    );

    let reference = ReferenceExecutor.forward(&input, &layer)?;
    let tiled = TiledExecutor::new(engine, n_conv, pipeline)?.forward(&input, &layer)?;

    let relative_error = pf_dsp::util::relative_l2_error(tiled.data(), reference.data());
    let snr_db = pf_dsp::util::snr_db(tiled.data(), reference.data());
    let max_abs_error = pf_dsp::util::max_abs_diff(tiled.data(), reference.data());

    Ok(LayerFidelity {
        layer: spec.name.clone(),
        relative_error,
        snr_db,
        max_abs_error,
        evaluated_input_size: input_size,
        evaluated_in_channels: in_channels,
    })
}

/// Evaluates every convolution layer of a network with a fresh engine per
/// layer produced by `make_engine` (engines may be stateful, e.g. noise
/// RNGs).
///
/// # Errors
///
/// Propagates errors from [`evaluate_layer`].
pub fn evaluate_network<E, F>(
    network: &NetworkSpec,
    mut make_engine: F,
    n_conv: usize,
    pipeline: PipelineConfig,
    config: &FidelityConfig,
) -> Result<FidelityReport, NnError>
where
    E: Conv1dEngine,
    F: FnMut() -> E,
{
    let mut layers = Vec::with_capacity(network.conv_layers.len());
    for spec in &network.conv_layers {
        layers.push(evaluate_layer(
            spec,
            make_engine(),
            n_conv,
            pipeline,
            config,
        )?);
    }
    Ok(FidelityReport {
        network: network.name.clone(),
        layers,
    })
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::cifar::resnet_s;
    use pf_tiling::{DigitalEngine, EdgeHandling};

    #[test]
    fn ideal_pipeline_on_valid_layers_is_exact() {
        let spec = ConvLayerSpec::new("t", 8, 4, 3, 1, 16, false).unwrap();
        let mut pipeline = PipelineConfig::ideal();
        pipeline.edge_handling = EdgeHandling::ZeroPad;
        let fidelity = evaluate_layer(
            &spec,
            DigitalEngine,
            256,
            pipeline,
            &FidelityConfig::default(),
        )
        .unwrap();
        assert!(fidelity.relative_error < 1e-10);
        assert!(fidelity.snr_db > 100.0);
    }

    #[test]
    fn quantized_pipeline_reports_finite_error() {
        // Unpadded layer: quantisation is the only error source.
        let spec = ConvLayerSpec::new("t", 16, 4, 3, 1, 16, false).unwrap();
        let fidelity = evaluate_layer(
            &spec,
            DigitalEngine,
            256,
            PipelineConfig::photofourier_default(),
            &FidelityConfig::default(),
        )
        .unwrap();
        assert!(fidelity.relative_error > 0.0);
        assert!(fidelity.relative_error < 0.1);
        assert!(fidelity.snr_db > 15.0);

        // Padded layer adds the (small) wraparound edge effect.
        let spec = ConvLayerSpec::new("t", 16, 4, 3, 1, 32, true).unwrap();
        let padded = evaluate_layer(
            &spec,
            DigitalEngine,
            256,
            PipelineConfig::photofourier_default(),
            &FidelityConfig::default(),
        )
        .unwrap();
        assert!(padded.relative_error > 0.0);
        assert!(padded.relative_error < 0.3);
    }

    #[test]
    fn evaluation_respects_caps() {
        let spec = ConvLayerSpec::new("big", 512, 512, 3, 1, 224, true).unwrap();
        let config = FidelityConfig {
            max_input_size: 16,
            max_in_channels: 4,
            max_out_channels: 2,
            seed: 1,
        };
        let fidelity =
            evaluate_layer(&spec, DigitalEngine, 256, PipelineConfig::ideal(), &config).unwrap();
        assert_eq!(fidelity.evaluated_input_size, 16);
        assert_eq!(fidelity.evaluated_in_channels, 4);
    }

    #[test]
    fn network_report_aggregates() {
        let net = resnet_s();
        let config = FidelityConfig {
            max_input_size: 16,
            max_in_channels: 4,
            max_out_channels: 2,
            seed: 3,
        };
        let report = evaluate_network(
            &net,
            || DigitalEngine,
            256,
            PipelineConfig::photofourier_default(),
            &config,
        )
        .unwrap();
        assert_eq!(report.layers.len(), net.num_conv_layers());
        assert!(report.mean_relative_error() > 0.0);
        // At the capped 16x16 evaluation resolution the wraparound edge
        // effect covers a larger share of each plane than at the real
        // 32x32, so the bound is looser than the sub-0.2 full-size regime.
        assert!(report.mean_relative_error() < 0.25);
        assert!(report.min_snr_db() > 5.0);
        assert!(report.max_relative_error() >= report.mean_relative_error());
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = ConvLayerSpec::new("d", 8, 2, 3, 1, 16, true).unwrap();
        let cfg = FidelityConfig::default();
        let a = evaluate_layer(
            &spec,
            DigitalEngine,
            128,
            PipelineConfig::photofourier_default(),
            &cfg,
        )
        .unwrap();
        let b = evaluate_layer(
            &spec,
            DigitalEngine,
            128,
            PipelineConfig::photofourier_default(),
            &cfg,
        )
        .unwrap();
        assert_eq!(a, b);
    }
}
