//! Symmetric fixed-point quantisation of weights, activations and partial
//! sums.
//!
//! PhotoFourier operates at 8-bit precision by default (Table IV); the
//! accuracy experiments quantify what that costs and how temporal
//! accumulation buys it back.

use serde::{Deserialize, Serialize};

use crate::tensor::Tensor;

/// Quantisation settings for one tensor class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantConfig {
    /// Number of bits (including sign).
    pub bits: u32,
    /// Whether quantisation is enabled at all.
    pub enabled: bool,
}

impl QuantConfig {
    /// 8-bit quantisation, the paper's default.
    pub fn int8() -> Self {
        Self {
            bits: 8,
            enabled: true,
        }
    }

    /// Quantisation disabled (full precision).
    pub fn disabled() -> Self {
        Self {
            bits: 32,
            enabled: false,
        }
    }
}

impl Default for QuantConfig {
    fn default() -> Self {
        Self::int8()
    }
}

/// Quantises a single value symmetrically to `bits` levels over
/// `[-max_abs, max_abs]`.
///
/// Returns the value unchanged if `max_abs` is zero.
///
/// # Panics
///
/// Panics if `bits` is zero or greater than 31.
pub fn quantize_symmetric(value: f64, max_abs: f64, bits: u32) -> f64 {
    assert!(bits > 0 && bits < 32, "bits must be in 1..=31");
    if max_abs == 0.0 {
        return value;
    }
    let levels = ((1u64 << (bits - 1)) - 1) as f64;
    let clipped = value.clamp(-max_abs, max_abs);
    (clipped / max_abs * levels).round() / levels * max_abs
}

/// Quantises a slice with a shared scale (its own maximum absolute value).
///
/// # Panics
///
/// Panics under the same conditions as [`quantize_symmetric`].
pub fn quantize_slice(values: &[f64], bits: u32) -> Vec<f64> {
    let max_abs = values.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    values
        .iter()
        .map(|&v| quantize_symmetric(v, max_abs, bits))
        .collect()
}

/// Quantises a tensor with a single per-tensor scale.
///
/// # Panics
///
/// Panics under the same conditions as [`quantize_symmetric`].
pub fn quantize_tensor(tensor: &Tensor, config: QuantConfig) -> Tensor {
    if !config.enabled {
        return tensor.clone();
    }
    let max_abs = tensor.max_abs();
    tensor.map(|v| quantize_symmetric(v, max_abs, config.bits))
}

/// Worst-case relative quantisation step for a given bit width.
pub fn quantization_step(bits: u32) -> f64 {
    1.0 / ((1u64 << (bits - 1)) - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_quantization_bounds() {
        let q = quantize_symmetric(0.5, 1.0, 8);
        assert!((q - 0.5).abs() <= quantization_step(8));
        assert_eq!(quantize_symmetric(2.0, 1.0, 8), 1.0);
        assert_eq!(quantize_symmetric(-2.0, 1.0, 8), -1.0);
        assert_eq!(quantize_symmetric(0.3, 0.0, 8), 0.3);
    }

    #[test]
    fn quantization_is_idempotent() {
        for &v in &[0.017, -0.93, 0.44, 1.0, -1.0] {
            let q1 = quantize_symmetric(v, 1.0, 8);
            let q2 = quantize_symmetric(q1, 1.0, 8);
            assert!((q1 - q2).abs() < 1e-15);
        }
    }

    #[test]
    #[should_panic(expected = "bits must be in 1..=31")]
    fn zero_bits_rejected() {
        let _ = quantize_symmetric(1.0, 1.0, 0);
    }

    #[test]
    fn slice_quantization_uses_shared_scale() {
        let values = [0.1, -0.2, 0.4];
        let q = quantize_slice(&values, 8);
        for (a, b) in values.iter().zip(&q) {
            assert!((a - b).abs() <= 0.4 * quantization_step(8) + 1e-12);
        }
        // The extreme value is representable exactly.
        assert!((q[2] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn tensor_quantization_and_disable() {
        let t = Tensor::random(vec![2, 8, 8], -3.0, 3.0, 5);
        let q = quantize_tensor(&t, QuantConfig::int8());
        let max_err = t
            .data()
            .iter()
            .zip(q.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err <= t.max_abs() * quantization_step(8) + 1e-12);
        assert!(max_err > 0.0);
        let same = quantize_tensor(&t, QuantConfig::disabled());
        assert_eq!(same, t);
    }

    #[test]
    fn more_bits_less_error() {
        let t = Tensor::random(vec![1, 16, 16], -1.0, 1.0, 9);
        let err = |bits| {
            let q = quantize_tensor(
                &t,
                QuantConfig {
                    bits,
                    enabled: true,
                },
            );
            t.data()
                .iter()
                .zip(q.data())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
        };
        assert!(err(4) > err(8));
        assert!(err(8) > err(12));
    }

    #[test]
    fn config_constructors() {
        assert_eq!(QuantConfig::default(), QuantConfig::int8());
        assert!(!QuantConfig::disabled().enabled);
        assert_eq!(QuantConfig::int8().bits, 8);
    }
}
