//! Property-based tests for the neural-network substrate: executor
//! equivalence, quantisation error bounds and model-zoo consistency.

use pf_dsp::util::{max_abs_diff, relative_l2_error};
use pf_nn::executor::{Conv2dExecutor, PipelineConfig, ReferenceExecutor, TiledExecutor};
use pf_nn::layers::Conv2d;
use pf_nn::models::paper_benchmark_suite;
use pf_nn::quant::{quantization_step, quantize_tensor, QuantConfig};
use pf_nn::tensor::Tensor;
use pf_tiling::{DigitalEngine, EdgeHandling};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tiled_executor_matches_reference_for_any_shape(
        in_channels in 1usize..6,
        out_channels in 1usize..4,
        size in 6usize..14,
        kernel in prop::sample::select(vec![1usize, 3, 5]),
        seed in 0u64..1000,
    ) {
        prop_assume!(kernel <= size);
        let layer = Conv2d::random(in_channels, out_channels, kernel, 1, true, 0.5, seed).unwrap();
        let input = Tensor::random(vec![in_channels, size, size], -1.0, 1.0, seed + 1);
        let reference = ReferenceExecutor.forward(&input, &layer).unwrap();
        let mut cfg = PipelineConfig::ideal();
        cfg.edge_handling = EdgeHandling::ZeroPad;
        let tiled = TiledExecutor::new(DigitalEngine, 256, cfg)
            .unwrap()
            .forward(&input, &layer)
            .unwrap();
        prop_assert_eq!(tiled.shape(), reference.shape());
        prop_assert!(max_abs_diff(tiled.data(), reference.data()) < 1e-9);
    }

    #[test]
    fn pseudo_negative_never_changes_ideal_results(
        in_channels in 1usize..4,
        size in 6usize..12,
        seed in 0u64..1000,
    ) {
        let layer = Conv2d::random(in_channels, 2, 3, 1, false, 0.5, seed).unwrap();
        let input = Tensor::random(vec![in_channels, size, size], -1.0, 1.0, seed + 7);
        let mut with_pn = PipelineConfig::ideal();
        with_pn.pseudo_negative = true;
        let a = TiledExecutor::new(DigitalEngine, 256, with_pn)
            .unwrap()
            .forward(&input, &layer)
            .unwrap();
        let b = TiledExecutor::new(DigitalEngine, 256, PipelineConfig::ideal())
            .unwrap()
            .forward(&input, &layer)
            .unwrap();
        prop_assert!(max_abs_diff(a.data(), b.data()) < 1e-9);
    }

    #[test]
    fn quantization_error_is_within_one_step(
        values in prop::collection::vec(-10.0f64..10.0, 1..256),
        bits in 2u32..12,
    ) {
        let tensor = Tensor::new(vec![values.len()], values.clone()).unwrap();
        let quantised = quantize_tensor(&tensor, QuantConfig { bits, enabled: true });
        let max_abs = tensor.max_abs();
        let step = max_abs * quantization_step(bits);
        for (a, b) in tensor.data().iter().zip(quantised.data()) {
            prop_assert!((a - b).abs() <= step / 2.0 + 1e-12);
        }
    }

    #[test]
    fn quantized_pipeline_error_stays_bounded(
        seed in 0u64..200,
    ) {
        let layer = Conv2d::random(8, 2, 3, 1, false, 0.4, seed).unwrap();
        let input = Tensor::random(vec![8, 10, 10], 0.0, 1.0, seed + 3);
        let reference = ReferenceExecutor.forward(&input, &layer).unwrap();
        let tiled = TiledExecutor::new(DigitalEngine, 128, PipelineConfig::photofourier_default())
            .unwrap()
            .forward(&input, &layer)
            .unwrap();
        prop_assert!(relative_l2_error(tiled.data(), reference.data()) < 0.15);
    }
}

#[test]
fn model_zoo_activation_shapes_chain() {
    // Each network's layer list must be internally consistent: output size
    // of a layer can never exceed its input size, and channel counts are
    // positive.
    for network in paper_benchmark_suite() {
        for layer in &network.conv_layers {
            assert!(layer.output_size() <= layer.input_size, "{}", layer.name);
            assert!(layer.macs() > 0);
        }
    }
}
