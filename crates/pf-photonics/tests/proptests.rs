//! Property-based tests for the mixed-signal component models.

use pf_photonics::adc::Adc;
use pf_photonics::dac::Dac;
use pf_photonics::detector::{DetectorConfig, Photodetector, SensingNoise};
use pf_photonics::mrr::Mrr;
use proptest::prelude::*;

proptest! {
    #[test]
    fn adc_error_is_within_half_lsb(
        value in -1.0f64..1.0,
        bits in 4u32..14,
        full_scale in 0.5f64..8.0,
    ) {
        let adc = Adc::new(bits, 1.0, 1.0).unwrap();
        let clipped = value * full_scale;
        let q = adc.quantize(clipped, full_scale);
        let lsb = 2.0 * full_scale / adc.levels() as f64;
        prop_assert!((q - clipped).abs() <= lsb, "error beyond one LSB");
        // Quantisation is idempotent.
        prop_assert!((adc.quantize(q, full_scale) - q).abs() < 1e-12);
    }

    #[test]
    fn adc_power_scaling_is_linear(
        freq_a in 0.1f64..20.0,
        freq_b in 0.1f64..20.0,
    ) {
        let adc = Adc::new(8, freq_a, 1.0).unwrap();
        let scaled = adc.scaled_to(freq_b).unwrap();
        let expected = freq_b / freq_a;
        prop_assert!((scaled.power().value() - expected).abs() < 1e-9);
    }

    #[test]
    fn dac_output_is_monotone(
        a in 0.0f64..1.0,
        b in 0.0f64..1.0,
        bits in 2u32..12,
    ) {
        let dac = Dac::new(bits, 10.0, 10.0).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(dac.generate(lo) <= dac.generate(hi) + 1e-12);
    }

    #[test]
    fn detector_accumulation_is_linear(
        currents in prop::collection::vec(0.0f64..10.0, 1..16),
    ) {
        let mut pd = Photodetector::with_defaults();
        for &c in &currents {
            pd.accumulate(c).unwrap();
        }
        let expected: f64 = currents.iter().sum();
        prop_assert!((pd.read_out() - expected).abs() < 1e-12);
    }

    #[test]
    fn snr_increases_with_signal(
        signal_a in 1.0f64..1e6,
        factor in 1.1f64..100.0,
    ) {
        let pd = Photodetector::new(DetectorConfig::default()).unwrap();
        prop_assert!(pd.snr_db(signal_a * factor) > pd.snr_db(signal_a));
    }

    #[test]
    fn mrr_modulation_is_bounded_by_carrier(
        carrier in 0.0f64..10.0,
        drive in -1.0f64..2.0,
    ) {
        let mrr = Mrr::photofourier_cg_default();
        let out = mrr.modulate(carrier, drive);
        prop_assert!(out >= 0.0);
        prop_assert!(out <= carrier + 1e-12);
    }

    #[test]
    fn sensing_noise_mean_is_near_zero(sigma in 0.01f64..1.0, seed in 0u64..100) {
        let mut noise = SensingNoise::new(sigma, seed).unwrap();
        let n = 4000;
        let mean: f64 = (0..n).map(|_| noise.perturb(0.0)).sum::<f64>() / n as f64;
        prop_assert!(mean.abs() < 5.0 * sigma / (n as f64).sqrt() + 1e-3);
    }
}
