//! Typed physical quantities used throughout the accelerator models.
//!
//! Thin `f64` newtypes keep power, energy and area bookkeeping honest across
//! crates (milliwatts cannot silently be added to square millimetres) while
//! staying trivially cheap.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

macro_rules! quantity {
    ($(#[$doc:meta])* $name:ident, $unit:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(pub f64);

        impl $name {
            /// Zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// Returns the underlying value.
            #[inline]
            pub fn value(self) -> f64 {
                self.0
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                iter.fold($name::ZERO, |acc, x| acc + x)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{:.4} {}", self.0, $unit)
            }
        }
    };
}

quantity!(
    /// Power in milliwatts.
    Milliwatts,
    "mW"
);
quantity!(
    /// Energy in picojoules.
    Picojoules,
    "pJ"
);
quantity!(
    /// Area in square micrometres.
    SquareMicrons,
    "um^2"
);
quantity!(
    /// Time in nanoseconds.
    Nanoseconds,
    "ns"
);
quantity!(
    /// Frequency in gigahertz.
    Gigahertz,
    "GHz"
);

impl Milliwatts {
    /// Converts to watts.
    #[inline]
    pub fn to_watts(self) -> f64 {
        self.0 * 1e-3
    }

    /// Energy dissipated over a duration.
    #[inline]
    pub fn energy_over(self, t: Nanoseconds) -> Picojoules {
        // mW * ns = 1e-3 J/s * 1e-9 s = 1e-12 J = pJ
        Picojoules(self.0 * t.0)
    }
}

impl SquareMicrons {
    /// Converts to square millimetres.
    #[inline]
    pub fn to_mm2(self) -> f64 {
        self.0 * 1e-6
    }

    /// Creates an area from square millimetres.
    #[inline]
    pub fn from_mm2(mm2: f64) -> Self {
        SquareMicrons(mm2 * 1e6)
    }
}

impl Gigahertz {
    /// Period of one cycle at this frequency.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is not positive.
    #[inline]
    pub fn period(self) -> Nanoseconds {
        assert!(self.0 > 0.0, "frequency must be positive");
        Nanoseconds(1.0 / self.0)
    }
}

impl Picojoules {
    /// Converts to microjoules.
    #[inline]
    pub fn to_microjoules(self) -> f64 {
        self.0 * 1e-6
    }

    /// Converts to joules.
    #[inline]
    pub fn to_joules(self) -> f64 {
        self.0 * 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Milliwatts(2.0) + Milliwatts(3.0);
        assert_eq!(a, Milliwatts(5.0));
        assert_eq!(a - Milliwatts(1.0), Milliwatts(4.0));
        assert_eq!(a * 2.0, Milliwatts(10.0));
        assert_eq!(a / 2.0, Milliwatts(2.5));
        assert_eq!(Milliwatts(10.0) / Milliwatts(2.0), 5.0);
        let mut b = Milliwatts(1.0);
        b += Milliwatts(1.5);
        assert_eq!(b, Milliwatts(2.5));
    }

    #[test]
    fn sums() {
        let total: Milliwatts = vec![Milliwatts(1.0), Milliwatts(2.0)].into_iter().sum();
        assert_eq!(total, Milliwatts(3.0));
    }

    #[test]
    fn conversions() {
        assert_eq!(Milliwatts(1500.0).to_watts(), 1.5);
        assert_eq!(SquareMicrons::from_mm2(2.0).to_mm2(), 2.0);
        assert!((Picojoules(1e6).to_microjoules() - 1.0).abs() < 1e-12);
        assert!((Picojoules(1e12).to_joules() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_over_time() {
        // 1 mW for 1 ns = 1 pJ.
        let e = Milliwatts(1.0).energy_over(Nanoseconds(1.0));
        assert_eq!(e, Picojoules(1.0));
        // 10 GHz clock: 0.1 ns period.
        let p = Gigahertz(10.0).period();
        assert!((p.0 - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn zero_frequency_period_panics() {
        let _ = Gigahertz(0.0).period();
    }

    #[test]
    fn display() {
        assert_eq!(Milliwatts(3.1).to_string(), "3.1000 mW");
        assert_eq!(SquareMicrons(255.0).to_string(), "255.0000 um^2");
    }
}
