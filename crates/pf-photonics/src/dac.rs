//! Digital-to-analog converter model.
//!
//! DACs generate the analog drive levels for the input-activation and weight
//! MRRs. They run at the full 10 GHz photonic clock and are the single
//! largest power consumer of the baseline system (Figure 6); the small-filter
//! optimisation (Section IV-B) and input broadcasting (Section V-D) exist to
//! reduce how many of them are needed.

use serde::{Deserialize, Serialize};

use crate::error::PhotonicsError;
use crate::units::Milliwatts;

/// An idealised current-steering / switched-capacitor DAC.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dac {
    bits: u32,
    frequency_ghz: f64,
    power_mw: f64,
}

impl Dac {
    /// Creates a DAC model with the given resolution, conversion frequency
    /// and power at that frequency.
    ///
    /// # Errors
    ///
    /// Returns an error if `bits` is 0 or greater than 16, or if frequency or
    /// power is not positive.
    pub fn new(bits: u32, frequency_ghz: f64, power_mw: f64) -> Result<Self, PhotonicsError> {
        if bits == 0 || bits > 16 {
            return Err(PhotonicsError::UnsupportedResolution { bits });
        }
        if frequency_ghz <= 0.0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "frequency_ghz",
                value: frequency_ghz,
                requirement: "must be positive",
            });
        }
        if power_mw <= 0.0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "power_mw",
                value: power_mw,
                requirement: "must be positive",
            });
        }
        Ok(Self {
            bits,
            frequency_ghz,
            power_mw,
        })
    }

    /// The 8-bit 10 GHz DAC used by PhotoFourier-CG (35.71 mW, scaled from a
    /// published 14 GS/s switched-capacitor design).
    pub fn photofourier_cg_default() -> Self {
        Self {
            bits: 8,
            frequency_ghz: 10.0,
            power_mw: 35.71,
        }
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Conversion frequency in GHz.
    pub fn frequency_ghz(&self) -> f64 {
        self.frequency_ghz
    }

    /// Power at the configured frequency.
    pub fn power(&self) -> Milliwatts {
        Milliwatts(self.power_mw)
    }

    /// Returns a copy re-timed to a different frequency with linear power
    /// scaling (same assumption as the ADC; SAR ADCs are built from DACs so
    /// the paper scales both by the same factor).
    ///
    /// # Errors
    ///
    /// Returns an error if the requested frequency is not positive.
    pub fn scaled_to(&self, frequency_ghz: f64) -> Result<Self, PhotonicsError> {
        if frequency_ghz <= 0.0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "frequency_ghz",
                value: frequency_ghz,
                requirement: "must be positive",
            });
        }
        Ok(Self {
            bits: self.bits,
            frequency_ghz,
            power_mw: self.power_mw * frequency_ghz / self.frequency_ghz,
        })
    }

    /// Number of representable levels.
    pub fn levels(&self) -> u32 {
        1u32 << self.bits
    }

    /// Converts a real value in `[0, 1]` to the nearest representable
    /// analog output level (unsigned unipolar DAC driving an MRR).
    ///
    /// Out-of-range inputs are clipped to `[0, 1]`.
    pub fn generate(&self, value: f64) -> f64 {
        let levels = (self.levels() - 1) as f64;
        let clipped = value.clamp(0.0, 1.0);
        (clipped * levels).round() / levels
    }

    /// Converts a slice of values through [`Dac::generate`].
    pub fn generate_slice(&self, values: &[f64]) -> Vec<f64> {
        values.iter().map(|&v| self.generate(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(Dac::new(0, 1.0, 1.0).is_err());
        assert!(Dac::new(17, 1.0, 1.0).is_err());
        assert!(Dac::new(8, 0.0, 1.0).is_err());
        assert!(Dac::new(8, 1.0, -5.0).is_err());
        assert!(Dac::new(8, 10.0, 35.71).is_ok());
    }

    #[test]
    fn paper_default() {
        let dac = Dac::photofourier_cg_default();
        assert_eq!(dac.bits(), 8);
        assert_eq!(dac.frequency_ghz(), 10.0);
        assert_eq!(dac.power(), Milliwatts(35.71));
        assert_eq!(dac.levels(), 256);
    }

    #[test]
    fn frequency_scaling() {
        let dac = Dac::photofourier_cg_default();
        let slow = dac.scaled_to(5.0).unwrap();
        assert!((slow.power().value() - 35.71 / 2.0).abs() < 1e-9);
        assert!(dac.scaled_to(-1.0).is_err());
    }

    #[test]
    fn generate_quantizes_and_clips() {
        let dac = Dac::new(8, 10.0, 35.71).unwrap();
        assert_eq!(dac.generate(0.0), 0.0);
        assert_eq!(dac.generate(1.0), 1.0);
        assert_eq!(dac.generate(2.0), 1.0);
        assert_eq!(dac.generate(-1.0), 0.0);
        let v = dac.generate(0.5);
        assert!((v - 0.5).abs() < 1.0 / 255.0);
        // idempotent
        assert_eq!(dac.generate(v), v);
    }

    #[test]
    fn generate_slice_matches_scalar() {
        let dac = Dac::new(6, 10.0, 1.0).unwrap();
        let vals = [0.1, 0.33, 0.99];
        let out = dac.generate_slice(&vals);
        for (v, o) in vals.iter().zip(&out) {
            assert_eq!(*o, dac.generate(*v));
        }
    }

    #[test]
    fn resolution_controls_step_size() {
        let coarse = Dac::new(2, 1.0, 1.0).unwrap();
        // 2-bit: levels at 0, 1/3, 2/3, 1
        assert!((coarse.generate(0.3) - 1.0 / 3.0).abs() < 1e-12);
        let fine = Dac::new(10, 1.0, 1.0).unwrap();
        assert!((fine.generate(0.3) - 0.3).abs() < 1e-3);
    }
}
