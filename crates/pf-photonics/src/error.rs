//! Error type for the photonic component models.

use std::error::Error;
use std::fmt;

/// Errors returned by fallible component-model operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PhotonicsError {
    /// A configuration parameter is outside its physically meaningful range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
        /// Requirement description.
        requirement: &'static str,
    },
    /// A converter was asked for a resolution it does not support.
    UnsupportedResolution {
        /// Requested number of bits.
        bits: u32,
    },
}

impl fmt::Display for PhotonicsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhotonicsError::InvalidParameter {
                name,
                value,
                requirement,
            } => write!(f, "invalid parameter {name} = {value}: {requirement}"),
            PhotonicsError::UnsupportedResolution { bits } => {
                write!(f, "unsupported converter resolution: {bits} bits")
            }
        }
    }
}

impl Error for PhotonicsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = PhotonicsError::InvalidParameter {
            name: "frequency_ghz",
            value: -1.0,
            requirement: "must be positive",
        };
        assert!(e.to_string().contains("frequency_ghz"));
        let e = PhotonicsError::UnsupportedResolution { bits: 97 };
        assert!(e.to_string().contains("97"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PhotonicsError>();
    }
}
