//! Micro-ring resonator (MRR) modulator model.
//!
//! MRRs convert electrical drive levels into optical amplitude modulation.
//! Each input/weight waveguide of a PFCU carries one MRR; in the baseline
//! system additional MRRs re-modulate the Fourier-plane signal as part of the
//! square-law non-linearity. Inactive MRRs can be power-gated
//! (Section IV-B).

use serde::{Deserialize, Serialize};

use crate::error::PhotonicsError;
use crate::units::Milliwatts;

/// An MRR amplitude modulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mrr {
    power_mw: f64,
    insertion_loss_db: f64,
    extinction_ratio_db: f64,
    gated: bool,
}

impl Mrr {
    /// Creates an MRR with the given static power, insertion loss and
    /// extinction ratio.
    ///
    /// # Errors
    ///
    /// Returns an error if the power is negative, or either loss figure is
    /// negative.
    pub fn new(
        power_mw: f64,
        insertion_loss_db: f64,
        extinction_ratio_db: f64,
    ) -> Result<Self, PhotonicsError> {
        if power_mw < 0.0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "power_mw",
                value: power_mw,
                requirement: "must be non-negative",
            });
        }
        if insertion_loss_db < 0.0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "insertion_loss_db",
                value: insertion_loss_db,
                requirement: "must be non-negative",
            });
        }
        if extinction_ratio_db < 0.0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "extinction_ratio_db",
                value: extinction_ratio_db,
                requirement: "must be non-negative",
            });
        }
        Ok(Self {
            power_mw,
            insertion_loss_db,
            extinction_ratio_db,
            gated: false,
        })
    }

    /// The CG-generation MRR (3.1 mW, typical 1 dB insertion loss, 20 dB
    /// extinction).
    pub fn photofourier_cg_default() -> Self {
        Self {
            power_mw: 3.1,
            insertion_loss_db: 1.0,
            extinction_ratio_db: 20.0,
            gated: false,
        }
    }

    /// The NG-generation MRR (0.42 mW).
    pub fn photofourier_ng_default() -> Self {
        Self {
            power_mw: 0.42,
            insertion_loss_db: 1.0,
            extinction_ratio_db: 20.0,
            gated: false,
        }
    }

    /// Power drawn right now (zero when power-gated).
    pub fn power(&self) -> Milliwatts {
        if self.gated {
            Milliwatts::ZERO
        } else {
            Milliwatts(self.power_mw)
        }
    }

    /// Whether the MRR is currently power-gated.
    pub fn is_gated(&self) -> bool {
        self.gated
    }

    /// Power-gates or un-gates the MRR (inactive weight waveguides are gated
    /// to save power, Section IV-B).
    pub fn set_gated(&mut self, gated: bool) {
        self.gated = gated;
    }

    /// Insertion loss as a linear transmission factor.
    pub fn transmission(&self) -> f64 {
        10f64.powf(-self.insertion_loss_db / 10.0)
    }

    /// Minimum transmission achievable (set by the extinction ratio).
    pub fn floor_transmission(&self) -> f64 {
        self.transmission() * 10f64.powf(-self.extinction_ratio_db / 10.0)
    }

    /// Modulates an optical carrier of amplitude `carrier` with a drive level
    /// in `[0, 1]`.
    ///
    /// A gated MRR transmits nothing. The finite extinction ratio means a
    /// drive of 0 still leaks a small floor amplitude — one of the physical
    /// non-idealities the functional simulation can model.
    pub fn modulate(&self, carrier: f64, drive: f64) -> f64 {
        if self.gated {
            return 0.0;
        }
        let drive = drive.clamp(0.0, 1.0);
        let t_max = self.transmission();
        let t_min = self.floor_transmission();
        carrier * (t_min + (t_max - t_min) * drive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(Mrr::new(-1.0, 0.0, 0.0).is_err());
        assert!(Mrr::new(1.0, -0.1, 0.0).is_err());
        assert!(Mrr::new(1.0, 0.0, -0.1).is_err());
        assert!(Mrr::new(3.1, 1.0, 20.0).is_ok());
    }

    #[test]
    fn defaults_match_table_iv() {
        assert_eq!(Mrr::photofourier_cg_default().power(), Milliwatts(3.1));
        assert_eq!(Mrr::photofourier_ng_default().power(), Milliwatts(0.42));
    }

    #[test]
    fn power_gating_removes_power_and_light() {
        let mut mrr = Mrr::photofourier_cg_default();
        assert!(!mrr.is_gated());
        mrr.set_gated(true);
        assert!(mrr.is_gated());
        assert_eq!(mrr.power(), Milliwatts::ZERO);
        assert_eq!(mrr.modulate(1.0, 1.0), 0.0);
        mrr.set_gated(false);
        assert!(mrr.power().value() > 0.0);
    }

    #[test]
    fn modulation_is_monotonic_in_drive() {
        let mrr = Mrr::photofourier_cg_default();
        let mut prev = -1.0;
        for i in 0..=10 {
            let out = mrr.modulate(1.0, i as f64 / 10.0);
            assert!(out > prev);
            prev = out;
        }
    }

    #[test]
    fn modulation_clips_drive() {
        let mrr = Mrr::photofourier_cg_default();
        assert_eq!(mrr.modulate(1.0, 2.0), mrr.modulate(1.0, 1.0));
        assert_eq!(mrr.modulate(1.0, -3.0), mrr.modulate(1.0, 0.0));
    }

    #[test]
    fn extinction_floor_is_nonzero_but_small() {
        let mrr = Mrr::photofourier_cg_default();
        let floor = mrr.modulate(1.0, 0.0);
        let peak = mrr.modulate(1.0, 1.0);
        assert!(floor > 0.0);
        assert!(floor < peak / 50.0); // 20 dB extinction -> 100x
    }

    #[test]
    fn ideal_mrr_passes_carrier() {
        let mrr = Mrr::new(1.0, 0.0, f64::MAX.log10() * 10.0)
            .unwrap_or_else(|_| Mrr::new(1.0, 0.0, 300.0).unwrap());
        let out = mrr.modulate(2.0, 1.0);
        assert!((out - 2.0).abs() < 1e-9);
    }
}
