//! Analog-to-digital converter model.
//!
//! ADCs perform the O-E read-out of the photodetector outputs. In the
//! baseline JTC system they dominate power (Figure 6); temporal accumulation
//! reduces their frequency 16× (Section V-C). The model captures:
//!
//! * uniform mid-rise quantisation of a bounded analog value,
//! * linear power scaling with sampling frequency (the assumption the paper
//!   makes explicit in Section V-D),
//! * Walden figure-of-merit based power estimation used to derive the NG
//!   scaling factor.

use serde::{Deserialize, Serialize};

use crate::error::PhotonicsError;
use crate::units::Milliwatts;

/// An idealised successive-approximation ADC with uniform quantisation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adc {
    bits: u32,
    frequency_ghz: f64,
    power_mw: f64,
}

impl Adc {
    /// Creates an ADC model.
    ///
    /// `power_mw` is the power at `frequency_ghz`; use [`Adc::scaled_to`] to
    /// derive models at other sampling rates.
    ///
    /// # Errors
    ///
    /// Returns an error if `bits` is 0 or greater than 16, or if the
    /// frequency or power is not positive.
    pub fn new(bits: u32, frequency_ghz: f64, power_mw: f64) -> Result<Self, PhotonicsError> {
        if bits == 0 || bits > 16 {
            return Err(PhotonicsError::UnsupportedResolution { bits });
        }
        if frequency_ghz <= 0.0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "frequency_ghz",
                value: frequency_ghz,
                requirement: "must be positive",
            });
        }
        if power_mw <= 0.0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "power_mw",
                value: power_mw,
                requirement: "must be positive",
            });
        }
        Ok(Self {
            bits,
            frequency_ghz,
            power_mw,
        })
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Sampling frequency in GHz.
    pub fn frequency_ghz(&self) -> f64 {
        self.frequency_ghz
    }

    /// Power at the configured sampling frequency.
    pub fn power(&self) -> Milliwatts {
        Milliwatts(self.power_mw)
    }

    /// Returns a copy of this ADC re-timed to `frequency_ghz`, scaling power
    /// linearly with frequency (the paper's assumption: "the power of ADC
    /// scales linearly with frequency").
    ///
    /// # Errors
    ///
    /// Returns an error if the requested frequency is not positive.
    pub fn scaled_to(&self, frequency_ghz: f64) -> Result<Self, PhotonicsError> {
        if frequency_ghz <= 0.0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "frequency_ghz",
                value: frequency_ghz,
                requirement: "must be positive",
            });
        }
        Ok(Self {
            bits: self.bits,
            frequency_ghz,
            power_mw: self.power_mw * frequency_ghz / self.frequency_ghz,
        })
    }

    /// Number of quantisation levels (`2^bits`).
    pub fn levels(&self) -> u32 {
        1u32 << self.bits
    }

    /// Quantises `value` assuming a symmetric full-scale range
    /// `[-full_scale, full_scale]`, returning the reconstructed analog value.
    ///
    /// Values outside the range are clipped (saturating converter), which is
    /// exactly what makes 8-bit partial sums lossy and motivates temporal
    /// accumulation (Section V-C).
    ///
    /// # Panics
    ///
    /// Panics if `full_scale` is not positive.
    pub fn quantize(&self, value: f64, full_scale: f64) -> f64 {
        assert!(full_scale > 0.0, "full_scale must be positive");
        let levels = self.levels() as f64;
        let step = 2.0 * full_scale / levels;
        let clipped = value.clamp(-full_scale, full_scale - step);
        let code = ((clipped + full_scale) / step).round();
        code * step - full_scale
    }

    /// Quantises an entire slice with a shared full-scale range.
    ///
    /// # Panics
    ///
    /// Panics if `full_scale` is not positive.
    pub fn quantize_slice(&self, values: &[f64], full_scale: f64) -> Vec<f64> {
        values
            .iter()
            .map(|&v| self.quantize(v, full_scale))
            .collect()
    }

    /// Worst-case quantisation error (half an LSB) for the given full scale.
    pub fn max_quantization_error(&self, full_scale: f64) -> f64 {
        full_scale / self.levels() as f64
    }

    /// Estimates converter power from the Walden figure of merit
    /// `P = FoM * 2^bits * f_s` where `fom_fj_per_conv` is in
    /// femtojoules per conversion step.
    pub fn power_from_walden_fom(
        bits: u32,
        frequency_ghz: f64,
        fom_fj_per_conv: f64,
    ) -> Milliwatts {
        // fJ/step * steps * GHz = 1e-15 J * 1e9 /s = 1e-6 W = 1e-3 mW per fJ*GHz
        let steps = (1u64 << bits) as f64;
        Milliwatts(fom_fj_per_conv * steps * frequency_ghz * 1e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adc8() -> Adc {
        Adc::new(8, 0.625, 0.93).unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(Adc::new(0, 1.0, 1.0).is_err());
        assert!(Adc::new(20, 1.0, 1.0).is_err());
        assert!(Adc::new(8, -1.0, 1.0).is_err());
        assert!(Adc::new(8, 1.0, 0.0).is_err());
        assert!(Adc::new(8, 1.0, 1.0).is_ok());
    }

    #[test]
    fn paper_adc_parameters() {
        let adc = adc8();
        assert_eq!(adc.bits(), 8);
        assert_eq!(adc.levels(), 256);
        assert_eq!(adc.power(), Milliwatts(0.93));
    }

    #[test]
    fn linear_frequency_scaling() {
        // Temporal accumulation: 10 GHz -> 625 MHz is 16x less power,
        // equivalently baseline 10 GHz ADC is 16x the 625 MHz one.
        let adc = adc8();
        let fast = adc.scaled_to(10.0).unwrap();
        assert!((fast.power().value() - 0.93 * 16.0).abs() < 1e-9);
        assert!(adc.scaled_to(0.0).is_err());
    }

    #[test]
    fn quantization_is_idempotent() {
        let adc = adc8();
        for &v in &[0.0, 0.3, -0.77, 0.99, -1.0] {
            let q1 = adc.quantize(v, 1.0);
            let q2 = adc.quantize(q1, 1.0);
            assert!((q1 - q2).abs() < 1e-12);
        }
    }

    #[test]
    fn quantization_error_bounded_by_half_lsb() {
        let adc = adc8();
        let full_scale = 2.0;
        let lsb = 2.0 * full_scale / 256.0;
        for i in 0..1000 {
            let v = -full_scale + (i as f64 / 999.0) * (2.0 * full_scale - lsb);
            let q = adc.quantize(v, full_scale);
            assert!(
                (q - v).abs() <= lsb / 2.0 + 1e-12,
                "error too large at {v}: {q}"
            );
        }
        assert!((adc.max_quantization_error(full_scale) - full_scale / 256.0).abs() < 1e-12);
    }

    #[test]
    fn quantization_clips_out_of_range() {
        let adc = adc8();
        let q = adc.quantize(10.0, 1.0);
        assert!(q <= 1.0);
        let q = adc.quantize(-10.0, 1.0);
        assert!(q >= -1.0 - 1e-12);
    }

    #[test]
    fn quantize_slice_matches_scalar() {
        let adc = adc8();
        let vals = [0.1, -0.5, 0.9];
        let qs = adc.quantize_slice(&vals, 1.0);
        for (v, q) in vals.iter().zip(&qs) {
            assert_eq!(*q, adc.quantize(*v, 1.0));
        }
    }

    #[test]
    #[should_panic(expected = "full_scale must be positive")]
    fn quantize_rejects_bad_full_scale() {
        adc8().quantize(0.0, 0.0);
    }

    #[test]
    fn walden_fom_power() {
        // 8-bit, 625 MHz, 50 fJ/conv-step -> 256 * 0.625 * 50 fJ * 1e9/s = 8 uW * ... compute:
        let p = Adc::power_from_walden_fom(8, 0.625, 50.0);
        // 50e-15 J * 256 * 0.625e9 Hz = 8e-3 W? No: 50e-15*256*0.625e9 = 8e-3... = 8 mW
        assert!((p.value() - 8.0).abs() < 1e-9);
        // Better FoM -> lower power
        let p2 = Adc::power_from_walden_fom(8, 0.625, 10.0);
        assert!(p2.value() < p.value());
    }

    #[test]
    fn more_bits_means_finer_quantization() {
        let coarse = Adc::new(4, 1.0, 1.0).unwrap();
        let fine = Adc::new(12, 1.0, 1.0).unwrap();
        assert!(fine.max_quantization_error(1.0) < coarse.max_quantization_error(1.0));
    }
}
