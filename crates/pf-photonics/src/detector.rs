//! Photodetector model with square-law detection, charge accumulation and
//! dark-current noise.
//!
//! Photodetectors appear twice in a PFCU: in the Fourier plane, where their
//! square-law response implements the non-linearity the JTC needs, and at the
//! output plane, where they read the convolution result. The output-plane
//! detectors additionally implement **temporal accumulation** (Section V-C):
//! charge from up to 16 consecutive cycles is integrated on a capacitor
//! before a single ADC read-out, which keeps partial-sum accumulation at full
//! precision and cuts ADC power 16×.

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::error::PhotonicsError;

/// Configuration of a photodetector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Responsivity in amperes per watt of incident optical power.
    pub responsivity_a_per_w: f64,
    /// Dark current in nanoamperes — sets the noise floor and hence the SNR
    /// the laser power budget must maintain (the paper targets > 20 dB).
    pub dark_current_na: f64,
    /// Maximum number of cycles the integration capacitor can accumulate
    /// before it must be read out (the temporal accumulation depth limit).
    pub max_accumulation_depth: usize,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            responsivity_a_per_w: 1.0,
            dark_current_na: 10.0,
            max_accumulation_depth: 16,
        }
    }
}

/// A square-law photodetector with an integration capacitor.
#[derive(Debug, Clone)]
pub struct Photodetector {
    config: DetectorConfig,
    accumulated: f64,
    cycles_accumulated: usize,
}

impl Photodetector {
    /// Creates a detector from a configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if the responsivity is not positive, the dark current
    /// is negative, or the accumulation depth is zero.
    pub fn new(config: DetectorConfig) -> Result<Self, PhotonicsError> {
        if config.responsivity_a_per_w <= 0.0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "responsivity_a_per_w",
                value: config.responsivity_a_per_w,
                requirement: "must be positive",
            });
        }
        if config.dark_current_na < 0.0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "dark_current_na",
                value: config.dark_current_na,
                requirement: "must be non-negative",
            });
        }
        if config.max_accumulation_depth == 0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "max_accumulation_depth",
                value: 0.0,
                requirement: "must be at least 1",
            });
        }
        Ok(Self {
            config,
            accumulated: 0.0,
            cycles_accumulated: 0,
        })
    }

    /// Creates a detector with the default configuration.
    ///
    /// Never fails because the default configuration is valid.
    pub fn with_defaults() -> Self {
        Self::new(DetectorConfig::default()).expect("default detector config is valid")
    }

    /// The detector configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Square-law response: converts a (real) optical field amplitude to a
    /// photocurrent proportional to its intensity `|E|^2`.
    pub fn detect_amplitude(&self, field_amplitude: f64) -> f64 {
        self.config.responsivity_a_per_w * field_amplitude * field_amplitude
    }

    /// Converts an optical *intensity* directly to photocurrent.
    pub fn detect_intensity(&self, intensity: f64) -> f64 {
        self.config.responsivity_a_per_w * intensity
    }

    /// Accumulates one cycle worth of photocurrent on the integration
    /// capacitor (temporal accumulation).
    ///
    /// Returns the number of cycles accumulated so far.
    ///
    /// # Errors
    ///
    /// Returns an error if the capacitor already holds
    /// `max_accumulation_depth` cycles; the caller must [`Photodetector::read_out`]
    /// first.
    pub fn accumulate(&mut self, photocurrent: f64) -> Result<usize, PhotonicsError> {
        if self.cycles_accumulated >= self.config.max_accumulation_depth {
            return Err(PhotonicsError::InvalidParameter {
                name: "cycles_accumulated",
                value: self.cycles_accumulated as f64,
                requirement: "accumulation capacitor is full; read_out() before accumulating more",
            });
        }
        self.accumulated += photocurrent;
        self.cycles_accumulated += 1;
        Ok(self.cycles_accumulated)
    }

    /// Reads the accumulated charge and resets the capacitor.
    pub fn read_out(&mut self) -> f64 {
        let v = self.accumulated;
        self.accumulated = 0.0;
        self.cycles_accumulated = 0;
        v
    }

    /// Number of cycles currently integrated on the capacitor.
    pub fn cycles_accumulated(&self) -> usize {
        self.cycles_accumulated
    }

    /// Signal-to-noise ratio in dB of a signal level against the dark
    /// current noise floor.
    ///
    /// Returns `f64::INFINITY` when the dark current is zero.
    pub fn snr_db(&self, signal_current_na: f64) -> f64 {
        if self.config.dark_current_na == 0.0 {
            return f64::INFINITY;
        }
        20.0 * (signal_current_na.abs() / self.config.dark_current_na).log10()
    }

    /// Minimum signal current (nA) needed to reach `target_snr_db`.
    pub fn required_signal_for_snr(&self, target_snr_db: f64) -> f64 {
        self.config.dark_current_na * 10f64.powf(target_snr_db / 20.0)
    }
}

/// Additive Gaussian sensing-noise model used by the accuracy experiments
/// (Figure 7 simulates "applying square function to partial sums and adding
/// sensing noise").
#[derive(Debug, Clone)]
pub struct SensingNoise {
    rng: StdRng,
    sigma: f64,
}

impl SensingNoise {
    /// Creates a noise source with standard deviation `sigma` (relative to
    /// the signal units it will be added to) and a deterministic seed.
    ///
    /// # Errors
    ///
    /// Returns an error if `sigma` is negative.
    pub fn new(sigma: f64, seed: u64) -> Result<Self, PhotonicsError> {
        if sigma < 0.0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "sigma",
                value: sigma,
                requirement: "must be non-negative",
            });
        }
        Ok(Self {
            rng: StdRng::seed_from_u64(seed),
            sigma,
        })
    }

    /// Creates a noise source whose standard deviation corresponds to the
    /// given SNR (in dB) for signals with RMS value `signal_rms`.
    ///
    /// # Errors
    ///
    /// Returns an error if `signal_rms` is negative.
    pub fn from_snr_db(snr_db: f64, signal_rms: f64, seed: u64) -> Result<Self, PhotonicsError> {
        if signal_rms < 0.0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "signal_rms",
                value: signal_rms,
                requirement: "must be non-negative",
            });
        }
        let sigma = signal_rms / 10f64.powf(snr_db / 20.0);
        Self::new(sigma, seed)
    }

    /// Noise standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Adds Gaussian noise to a single value.
    pub fn perturb(&mut self, value: f64) -> f64 {
        if self.sigma == 0.0 {
            return value;
        }
        value + self.sample_gaussian() * self.sigma
    }

    /// Adds independent Gaussian noise to every element of a slice.
    pub fn perturb_slice(&mut self, values: &[f64]) -> Vec<f64> {
        values.iter().map(|&v| self.perturb(v)).collect()
    }

    fn sample_gaussian(&mut self) -> f64 {
        // Box-Muller transform on two uniform samples.
        let uniform = rand::distributions::Uniform::new(f64::EPSILON, 1.0);
        let u1: f64 = uniform.sample(&mut self.rng);
        let u2: f64 = uniform.sample(&mut self.rng);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        let bad = DetectorConfig {
            responsivity_a_per_w: 0.0,
            ..Default::default()
        };
        assert!(Photodetector::new(bad).is_err());
        let bad = DetectorConfig {
            dark_current_na: -1.0,
            ..Default::default()
        };
        assert!(Photodetector::new(bad).is_err());
        let bad = DetectorConfig {
            max_accumulation_depth: 0,
            ..Default::default()
        };
        assert!(Photodetector::new(bad).is_err());
        assert!(Photodetector::new(DetectorConfig::default()).is_ok());
    }

    #[test]
    fn square_law_response() {
        let pd = Photodetector::with_defaults();
        assert_eq!(pd.detect_amplitude(0.0), 0.0);
        assert_eq!(pd.detect_amplitude(2.0), 4.0);
        assert_eq!(pd.detect_amplitude(-2.0), 4.0);
        assert_eq!(pd.detect_intensity(3.0), 3.0);
    }

    #[test]
    fn responsivity_scales_output() {
        let pd = Photodetector::new(DetectorConfig {
            responsivity_a_per_w: 0.5,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(pd.detect_amplitude(2.0), 2.0);
    }

    #[test]
    fn accumulation_sums_then_resets() {
        let mut pd = Photodetector::with_defaults();
        for i in 1..=5 {
            assert_eq!(pd.accumulate(1.0).unwrap(), i);
        }
        assert_eq!(pd.cycles_accumulated(), 5);
        assert_eq!(pd.read_out(), 5.0);
        assert_eq!(pd.cycles_accumulated(), 0);
        assert_eq!(pd.read_out(), 0.0);
    }

    #[test]
    fn accumulation_depth_is_enforced() {
        let mut pd = Photodetector::new(DetectorConfig {
            max_accumulation_depth: 2,
            ..Default::default()
        })
        .unwrap();
        pd.accumulate(1.0).unwrap();
        pd.accumulate(1.0).unwrap();
        assert!(pd.accumulate(1.0).is_err());
        pd.read_out();
        assert!(pd.accumulate(1.0).is_ok());
    }

    #[test]
    fn accumulation_is_full_precision() {
        // The whole point of temporal accumulation: the analog sum equals the
        // exact sum with no intermediate quantization.
        let mut pd = Photodetector::with_defaults();
        let values = [0.001, 0.5, 1.7, 0.03, 0.9];
        for &v in &values {
            pd.accumulate(v).unwrap();
        }
        let expected: f64 = values.iter().sum();
        assert!((pd.read_out() - expected).abs() < 1e-15);
    }

    #[test]
    fn snr_computation() {
        let pd = Photodetector::with_defaults(); // dark current 10 nA
        assert!((pd.snr_db(1000.0) - 40.0).abs() < 1e-9);
        assert!((pd.snr_db(100.0) - 20.0).abs() < 1e-9);
        let needed = pd.required_signal_for_snr(20.0);
        assert!((needed - 100.0).abs() < 1e-9);
        let quiet = Photodetector::new(DetectorConfig {
            dark_current_na: 0.0,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(quiet.snr_db(1.0), f64::INFINITY);
    }

    #[test]
    fn sensing_noise_statistics() {
        let mut noise = SensingNoise::new(0.1, 42).unwrap();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| noise.perturb(0.0)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var.sqrt() - 0.1).abs() < 0.01, "std {}", var.sqrt());
    }

    #[test]
    fn sensing_noise_is_deterministic_per_seed() {
        let mut a = SensingNoise::new(0.5, 7).unwrap();
        let mut b = SensingNoise::new(0.5, 7).unwrap();
        let va: Vec<f64> = (0..10).map(|_| a.perturb(1.0)).collect();
        let vb: Vec<f64> = (0..10).map(|_| b.perturb(1.0)).collect();
        assert_eq!(va, vb);
        let mut c = SensingNoise::new(0.5, 8).unwrap();
        let vc: Vec<f64> = (0..10).map(|_| c.perturb(1.0)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn zero_sigma_noise_is_identity() {
        let mut noise = SensingNoise::new(0.0, 1).unwrap();
        assert_eq!(noise.perturb(3.5), 3.5);
        assert_eq!(noise.perturb_slice(&[1.0, 2.0]), vec![1.0, 2.0]);
    }

    #[test]
    fn noise_from_snr() {
        let noise = SensingNoise::from_snr_db(20.0, 1.0, 3).unwrap();
        assert!((noise.sigma() - 0.1).abs() < 1e-12);
        assert!(SensingNoise::from_snr_db(20.0, -1.0, 3).is_err());
        assert!(SensingNoise::new(-0.1, 0).is_err());
    }
}
