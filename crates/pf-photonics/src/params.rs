//! Published design parameters of PhotoFourier.
//!
//! [`TechConfig`] reproduces Table IV (component power and high-level design
//! parameters) and [`ComponentDims`] reproduces Table V (component
//! dimensions used for area estimation). The next-generation scaling factor
//! for converters (5.81×, derived from the Walden figure-of-merit envelope)
//! and the CMOS scaling from Stillmaker–Baas are captured as constants so the
//! architecture model can re-derive the NG numbers rather than hard-code
//! them.

use serde::{Deserialize, Serialize};

use crate::units::{Gigahertz, Milliwatts, SquareMicrons};

/// CMOS technology node assumed by a design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TechNode {
    /// 14 nm FinFET — PhotoFourier-CG (separate CMOS chiplet).
    Nm14,
    /// 7 nm FinFET — PhotoFourier-NG (monolithic integration).
    Nm7,
}

impl TechNode {
    /// Reported nominal feature size in nanometres.
    pub fn nanometers(self) -> u32 {
        match self {
            TechNode::Nm14 => 14,
            TechNode::Nm7 => 7,
        }
    }
}

/// Scaling factor applied to ADC/DAC power from CG to NG, obtained in the
/// paper from the Walden FoM envelope at 625 MHz (Section VI-A).
pub const NG_CONVERTER_SCALING: f64 = 5.81;

/// Power penalty of running the read-out ADCs at the full 10 GHz photonic
/// clock instead of the 625 MHz temporal-accumulation rate. The paper states
/// temporal accumulation "can reduce ADC power by more than 30× compared to
/// 10 GHz ADCs" — high-speed converters scale worse than linearly — so the
/// un-optimised baseline pays this factor rather than the linear 16×.
pub const BASELINE_ADC_POWER_FACTOR: f64 = 30.0;

/// Dynamic-power scaling factor from 14 nm to 7 nm CMOS used for the CMOS
/// tiles and SRAM periphery (Stillmaker–Baas scaling equations; the paper
/// applies them to its Genus results, we apply them to the published
/// aggregates).
pub const NG_CMOS_POWER_SCALING: f64 = 2.0;

/// Temporal accumulation depth chosen by the paper (number of input channels
/// accumulated at the photodetector before one ADC read-out).
pub const TEMPORAL_ACCUMULATION_DEPTH: usize = 16;

/// Number of active weight waveguides kept per PFCU after the small-filter
/// optimisation (Section IV-B: 25 = 5×5 backward compatibility).
pub const ACTIVE_WEIGHT_WAVEGUIDES: usize = 25;

/// Default numeric precision of activations, weights and converters.
pub const DEFAULT_PRECISION_BITS: u32 = 8;

/// Target minimum SNR at the photodetectors that sets the laser power
/// (Section VI-A: "larger than 20 dB SNR in most cases").
pub const TARGET_SNR_DB: f64 = 20.0;

/// Table IV — component power and high-level design parameters for one
/// PhotoFourier design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TechConfig {
    /// Human-readable name ("PhotoFourier-CG", "PhotoFourier-NG", …).
    pub name: String,
    /// CMOS technology node.
    pub node: TechNode,
    /// Power of one MRR modulator (mW).
    pub mrr_power_mw: f64,
    /// Laser power per waveguide (mW).
    pub laser_power_per_waveguide_mw: f64,
    /// Power of one 8-bit ADC running at `adc_frequency_ghz` (mW).
    pub adc_power_mw: f64,
    /// ADC sampling frequency (GHz). 0.625 GHz after 16× temporal
    /// accumulation of a 10 GHz photonic clock.
    pub adc_frequency_ghz: f64,
    /// Power of one 8-bit DAC running at `dac_frequency_ghz` (mW).
    pub dac_power_mw: f64,
    /// DAC conversion frequency (GHz).
    pub dac_frequency_ghz: f64,
    /// Photonic clock frequency (GHz).
    pub photonic_clock_ghz: f64,
    /// Number of PFCUs in the accelerator.
    pub num_pfcus: usize,
    /// Input waveguides per PFCU.
    pub input_waveguides: usize,
    /// Active weight waveguides (with DACs) per PFCU.
    pub weight_waveguides: usize,
    /// Number of chiplets (2 for 2.5D CG, 1 for monolithic NG).
    pub num_chiplets: usize,
    /// Whether the square-law non-linearity is implemented passively with
    /// non-linear materials (true for NG) instead of photodetector + MRR
    /// pairs (false for CG).
    pub passive_nonlinearity: bool,
    /// Temporal accumulation depth (channels accumulated per ADC read).
    pub temporal_accumulation: usize,
    /// Converter resolution in bits.
    pub precision_bits: u32,
    /// Local weight SRAM per CMOS tile (KiB).
    pub weight_sram_kib: usize,
    /// Shared global activation SRAM (KiB).
    pub activation_sram_kib: usize,
    /// SRAM access energy (pJ per byte). Representative values for wide
    /// 14 nm / 7 nm SRAM macros feeding a 10 GHz datapath; the paper notes
    /// its access energy is "on the higher end" because of the wide buses.
    pub sram_energy_pj_per_byte: f64,
    /// SRAM leakage power for the whole memory system (mW).
    pub sram_leakage_mw: f64,
    /// DRAM access energy (pJ per byte) for off-chip traffic.
    pub dram_energy_pj_per_byte: f64,
    /// Power of the CMOS logic in one tile (input generation + output
    /// processing) at its nominal clocks (mW).
    pub cmos_tile_power_mw: f64,
}

impl TechConfig {
    /// Table IV column "PhotoFourier-CG": 14 nm, 8 PFCUs, two chiplets.
    pub fn photofourier_cg() -> Self {
        Self {
            name: "PhotoFourier-CG".to_string(),
            node: TechNode::Nm14,
            mrr_power_mw: 3.1,
            laser_power_per_waveguide_mw: 0.5,
            adc_power_mw: 0.93,
            adc_frequency_ghz: 0.625,
            dac_power_mw: 35.71,
            dac_frequency_ghz: 10.0,
            photonic_clock_ghz: 10.0,
            num_pfcus: 8,
            input_waveguides: 256,
            weight_waveguides: ACTIVE_WEIGHT_WAVEGUIDES,
            num_chiplets: 2,
            passive_nonlinearity: false,
            temporal_accumulation: TEMPORAL_ACCUMULATION_DEPTH,
            precision_bits: DEFAULT_PRECISION_BITS,
            weight_sram_kib: 512,
            activation_sram_kib: 4096,
            sram_energy_pj_per_byte: 1.8,
            sram_leakage_mw: 120.0,
            dram_energy_pj_per_byte: 10.0,
            cmos_tile_power_mw: 180.0,
        }
    }

    /// Table IV column "PhotoFourier-NG": 7 nm, 16 PFCUs, monolithic,
    /// passive non-linearity.
    pub fn photofourier_ng() -> Self {
        let cg = Self::photofourier_cg();
        Self {
            name: "PhotoFourier-NG".to_string(),
            node: TechNode::Nm7,
            mrr_power_mw: 0.42,
            laser_power_per_waveguide_mw: 0.5,
            adc_power_mw: cg.adc_power_mw / NG_CONVERTER_SCALING,
            adc_frequency_ghz: 0.625,
            dac_power_mw: cg.dac_power_mw / NG_CONVERTER_SCALING,
            dac_frequency_ghz: 10.0,
            photonic_clock_ghz: 10.0,
            num_pfcus: 16,
            input_waveguides: 256,
            weight_waveguides: ACTIVE_WEIGHT_WAVEGUIDES,
            num_chiplets: 1,
            passive_nonlinearity: true,
            temporal_accumulation: TEMPORAL_ACCUMULATION_DEPTH,
            precision_bits: DEFAULT_PRECISION_BITS,
            weight_sram_kib: 512,
            activation_sram_kib: 4096,
            sram_energy_pj_per_byte: 1.35,
            sram_leakage_mw: 80.0,
            dram_energy_pj_per_byte: 10.0,
            cmos_tile_power_mw: cg.cmos_tile_power_mw / NG_CMOS_POWER_SCALING,
        }
    }

    /// The un-optimised 1-PFCU baseline of Section V-B / Figure 6: one PFCU,
    /// 256 input waveguides, no small-filter optimisation (a DAC on every
    /// waveguide), no temporal accumulation (ADCs at the full photonic
    /// clock), CG component powers.
    pub fn baseline_single_pfcu() -> Self {
        let mut cfg = Self::photofourier_cg();
        cfg.name = "Baseline-1PFCU".to_string();
        cfg.num_pfcus = 1;
        cfg.weight_waveguides = cfg.input_waveguides;
        cfg.temporal_accumulation = 1;
        // Without temporal accumulation the ADCs must run at the photonic
        // clock; 10 GHz converters pay a worse-than-linear power penalty
        // (Section V-C cites "more than 30x").
        cfg.adc_frequency_ghz = cfg.photonic_clock_ghz;
        cfg.adc_power_mw *= BASELINE_ADC_POWER_FACTOR;
        cfg
    }

    /// Checked constructor validating physical plausibility of the
    /// parameters.
    ///
    /// # Errors
    ///
    /// Returns [`crate::PhotonicsError::InvalidParameter`] if any power,
    /// frequency or count is non-positive.
    pub fn validated(self) -> Result<Self, crate::PhotonicsError> {
        use crate::PhotonicsError::InvalidParameter;
        let positive = [
            ("mrr_power_mw", self.mrr_power_mw),
            (
                "laser_power_per_waveguide_mw",
                self.laser_power_per_waveguide_mw,
            ),
            ("adc_power_mw", self.adc_power_mw),
            ("adc_frequency_ghz", self.adc_frequency_ghz),
            ("dac_power_mw", self.dac_power_mw),
            ("dac_frequency_ghz", self.dac_frequency_ghz),
            ("photonic_clock_ghz", self.photonic_clock_ghz),
        ];
        for (name, value) in positive {
            if value <= 0.0 {
                return Err(InvalidParameter {
                    name,
                    value,
                    requirement: "must be positive",
                });
            }
        }
        if self.num_pfcus == 0 || self.input_waveguides == 0 {
            return Err(InvalidParameter {
                name: "num_pfcus/input_waveguides",
                value: 0.0,
                requirement: "must be at least 1",
            });
        }
        Ok(self)
    }

    /// ADC power as a [`Milliwatts`] quantity.
    pub fn adc_power(&self) -> Milliwatts {
        Milliwatts(self.adc_power_mw)
    }

    /// DAC power as a [`Milliwatts`] quantity.
    pub fn dac_power(&self) -> Milliwatts {
        Milliwatts(self.dac_power_mw)
    }

    /// MRR power as a [`Milliwatts`] quantity.
    pub fn mrr_power(&self) -> Milliwatts {
        Milliwatts(self.mrr_power_mw)
    }

    /// Photonic clock as a typed frequency.
    pub fn photonic_clock(&self) -> Gigahertz {
        Gigahertz(self.photonic_clock_ghz)
    }

    /// Effective ADC/CMOS read-out frequency after temporal accumulation.
    pub fn readout_clock(&self) -> Gigahertz {
        Gigahertz(self.photonic_clock_ghz / self.temporal_accumulation as f64)
    }
}

/// Table V — dimensions of the photonic components used for area estimation.
/// Identical for the CG and NG design points.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentDims {
    /// MRR footprint (µm × µm).
    pub mrr_um: (f64, f64),
    /// Optical splitter footprint (µm × µm).
    pub splitter_um: (f64, f64),
    /// Photodetector footprint (µm × µm).
    pub photodetector_um: (f64, f64),
    /// Waveguide pitch (µm).
    pub waveguide_pitch_um: f64,
    /// Laser footprint (µm × µm).
    pub laser_um: (f64, f64),
    /// On-chip metasurface lens footprint (µm × µm).
    pub lens_um: (f64, f64),
}

impl ComponentDims {
    /// The dimensions published in Table V.
    pub fn paper_values() -> Self {
        Self {
            mrr_um: (15.0, 17.0),
            splitter_um: (1.2, 2.2),
            photodetector_um: (16.0, 120.0),
            waveguide_pitch_um: 1.3,
            laser_um: (400.0, 300.0),
            lens_um: (2000.0, 1000.0),
        }
    }

    /// Area of one MRR.
    pub fn mrr_area(&self) -> SquareMicrons {
        SquareMicrons(self.mrr_um.0 * self.mrr_um.1)
    }

    /// Area of one optical splitter.
    pub fn splitter_area(&self) -> SquareMicrons {
        SquareMicrons(self.splitter_um.0 * self.splitter_um.1)
    }

    /// Area of one photodetector.
    pub fn photodetector_area(&self) -> SquareMicrons {
        SquareMicrons(self.photodetector_um.0 * self.photodetector_um.1)
    }

    /// Area of one laser.
    pub fn laser_area(&self) -> SquareMicrons {
        SquareMicrons(self.laser_um.0 * self.laser_um.1)
    }

    /// Area of one on-chip lens.
    pub fn lens_area(&self) -> SquareMicrons {
        SquareMicrons(self.lens_um.0 * self.lens_um.1)
    }

    /// Area occupied by `n` parallel waveguides of length `len_um`.
    pub fn waveguide_area(&self, n: usize, len_um: f64) -> SquareMicrons {
        SquareMicrons(self.waveguide_pitch_um * n as f64 * len_um)
    }
}

impl Default for ComponentDims {
    fn default() -> Self {
        Self::paper_values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_cg_values() {
        let cg = TechConfig::photofourier_cg();
        assert_eq!(cg.mrr_power_mw, 3.1);
        assert_eq!(cg.laser_power_per_waveguide_mw, 0.5);
        assert_eq!(cg.adc_power_mw, 0.93);
        assert_eq!(cg.dac_power_mw, 35.71);
        assert_eq!(cg.num_pfcus, 8);
        assert_eq!(cg.input_waveguides, 256);
        assert_eq!(cg.num_chiplets, 2);
        assert_eq!(cg.node, TechNode::Nm14);
        assert!(!cg.passive_nonlinearity);
    }

    #[test]
    fn table_iv_ng_values() {
        let ng = TechConfig::photofourier_ng();
        assert_eq!(ng.mrr_power_mw, 0.42);
        assert_eq!(ng.num_pfcus, 16);
        assert_eq!(ng.num_chiplets, 1);
        assert_eq!(ng.node, TechNode::Nm7);
        assert!(ng.passive_nonlinearity);
        // ADC 0.93 / 5.81 ≈ 0.16 mW, DAC 35.71 / 5.81 ≈ 6.15 mW (paper values).
        assert!((ng.adc_power_mw - 0.16).abs() < 0.01);
        assert!((ng.dac_power_mw - 6.15).abs() < 0.01);
    }

    #[test]
    fn baseline_has_full_rate_adcs() {
        let b = TechConfig::baseline_single_pfcu();
        assert_eq!(b.num_pfcus, 1);
        assert_eq!(b.temporal_accumulation, 1);
        assert_eq!(b.adc_frequency_ghz, b.photonic_clock_ghz);
        // 30x the 625 MHz power (worse-than-linear scaling of 10 GHz ADCs).
        assert!((b.adc_power_mw - 0.93 * 30.0).abs() < 1e-9);
        // every waveguide keeps its weight DAC
        assert_eq!(b.weight_waveguides, b.input_waveguides);
    }

    #[test]
    fn readout_clock_is_divided_by_temporal_depth() {
        let cg = TechConfig::photofourier_cg();
        assert!((cg.readout_clock().value() - 0.625).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_nonpositive() {
        let mut bad = TechConfig::photofourier_cg();
        bad.dac_power_mw = -1.0;
        assert!(bad.validated().is_err());
        let mut bad = TechConfig::photofourier_cg();
        bad.num_pfcus = 0;
        assert!(bad.validated().is_err());
        assert!(TechConfig::photofourier_cg().validated().is_ok());
    }

    #[test]
    fn table_v_dimensions() {
        let d = ComponentDims::paper_values();
        assert_eq!(d.mrr_area().value(), 15.0 * 17.0);
        assert_eq!(d.photodetector_area().value(), 16.0 * 120.0);
        assert_eq!(d.laser_area().value(), 400.0 * 300.0);
        assert_eq!(d.lens_area().value(), 2000.0 * 1000.0);
        assert_eq!(d.splitter_area().value(), 1.2 * 2.2);
        assert_eq!(d.waveguide_pitch_um, 1.3);
        assert_eq!(ComponentDims::default(), d);
    }

    #[test]
    fn waveguide_area_scales_linearly() {
        let d = ComponentDims::paper_values();
        let a1 = d.waveguide_area(1, 1000.0);
        let a256 = d.waveguide_area(256, 1000.0);
        assert!((a256.value() / a1.value() - 256.0).abs() < 1e-9);
    }

    #[test]
    fn tech_node_feature_sizes() {
        assert_eq!(TechNode::Nm14.nanometers(), 14);
        assert_eq!(TechNode::Nm7.nanometers(), 7);
    }

    #[test]
    fn constants_match_paper() {
        assert_eq!(TEMPORAL_ACCUMULATION_DEPTH, 16);
        assert_eq!(ACTIVE_WEIGHT_WAVEGUIDES, 25);
        assert_eq!(DEFAULT_PRECISION_BITS, 8);
        assert!((NG_CONVERTER_SCALING - 5.81).abs() < 1e-12);
    }
}
