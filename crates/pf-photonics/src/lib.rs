//! Photonic and mixed-signal component models for the PhotoFourier
//! reproduction.
//!
//! The PhotoFourier accelerator (HPCA 2023) is built from a small set of
//! devices whose power, area and noise behaviour drive every architectural
//! result in the paper:
//!
//! * micro-ring resonator modulators ([`mrr::Mrr`]) that imprint activation /
//!   weight values on the optical carriers,
//! * photodetectors ([`detector::Photodetector`]) that square-law detect the
//!   field, accumulate charge for *temporal accumulation* and add
//!   dark-current noise,
//! * DACs ([`dac::Dac`]) and ADCs ([`adc::Adc`]) performing the costly
//!   E-O / O-E conversions the architecture tries to minimise,
//! * lasers, on-chip lenses, splitters and waveguides that set the optical
//!   power budget and chip area.
//!
//! [`params`] carries the exact constants of Table IV (component power) and
//! Table V (component dimensions), for both the conservative
//! **PhotoFourier-CG** (14 nm, 2 chiplets) and the forward-looking
//! **PhotoFourier-NG** (7 nm, monolithic) design points.
//!
//! # Examples
//!
//! ```
//! use pf_photonics::params::TechConfig;
//!
//! let cg = TechConfig::photofourier_cg();
//! let ng = TechConfig::photofourier_ng();
//! assert!(cg.dac_power_mw > ng.dac_power_mw);
//! assert_eq!(cg.num_pfcus, 8);
//! assert_eq!(ng.num_pfcus, 16);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod adc;
pub mod dac;
pub mod detector;
pub mod error;
pub mod laser;
pub mod mrr;
pub mod params;
pub mod units;

pub use error::PhotonicsError;
pub use params::{ComponentDims, TechConfig, TechNode};
