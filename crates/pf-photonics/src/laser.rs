//! Laser source model.
//!
//! PhotoFourier budgets 0.5 mW of laser power per waveguide (Table IV), set
//! so that the signal at the photodetectors stays above roughly 20 dB SNR
//! against the detector dark current after the system's optical losses
//! (Section VI-A).

use serde::{Deserialize, Serialize};

use crate::detector::Photodetector;
use crate::error::PhotonicsError;
use crate::units::Milliwatts;

/// A multi-wavelength laser source feeding a bank of waveguides.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Laser {
    power_per_waveguide_mw: f64,
    num_waveguides: usize,
    wall_plug_efficiency: f64,
}

impl Laser {
    /// Creates a laser delivering `power_per_waveguide_mw` of optical power to
    /// each of `num_waveguides` waveguides at the given wall-plug efficiency.
    ///
    /// # Errors
    ///
    /// Returns an error if the power is not positive, the waveguide count is
    /// zero, or the efficiency is outside `(0, 1]`.
    pub fn new(
        power_per_waveguide_mw: f64,
        num_waveguides: usize,
        wall_plug_efficiency: f64,
    ) -> Result<Self, PhotonicsError> {
        if power_per_waveguide_mw <= 0.0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "power_per_waveguide_mw",
                value: power_per_waveguide_mw,
                requirement: "must be positive",
            });
        }
        if num_waveguides == 0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "num_waveguides",
                value: 0.0,
                requirement: "must be at least 1",
            });
        }
        if wall_plug_efficiency <= 0.0 || wall_plug_efficiency > 1.0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "wall_plug_efficiency",
                value: wall_plug_efficiency,
                requirement: "must be in (0, 1]",
            });
        }
        Ok(Self {
            power_per_waveguide_mw,
            num_waveguides,
            wall_plug_efficiency,
        })
    }

    /// PhotoFourier's default budget: 0.5 mW optical per waveguide, counted
    /// directly as system power (the paper's Table IV lists the per-waveguide
    /// number as the laser contribution, i.e. wall-plug efficiency folded in).
    ///
    /// # Errors
    ///
    /// Returns an error if `num_waveguides` is zero.
    pub fn photofourier_default(num_waveguides: usize) -> Result<Self, PhotonicsError> {
        Self::new(0.5, num_waveguides, 1.0)
    }

    /// Optical power delivered to one waveguide.
    pub fn optical_power_per_waveguide(&self) -> Milliwatts {
        Milliwatts(self.power_per_waveguide_mw)
    }

    /// Total optical power across all waveguides.
    pub fn total_optical_power(&self) -> Milliwatts {
        Milliwatts(self.power_per_waveguide_mw * self.num_waveguides as f64)
    }

    /// Electrical (wall-plug) power drawn by the laser.
    pub fn electrical_power(&self) -> Milliwatts {
        Milliwatts(
            self.power_per_waveguide_mw * self.num_waveguides as f64 / self.wall_plug_efficiency,
        )
    }

    /// Number of waveguides fed.
    pub fn num_waveguides(&self) -> usize {
        self.num_waveguides
    }

    /// Checks whether the per-waveguide power keeps the detector SNR above
    /// `target_snr_db` given an end-to-end optical loss of `system_loss_db`
    /// and the detector's responsivity / dark current.
    pub fn meets_snr_target(
        &self,
        detector: &Photodetector,
        system_loss_db: f64,
        target_snr_db: f64,
    ) -> bool {
        let delivered_mw = self.power_per_waveguide_mw * 10f64.powf(-system_loss_db / 10.0);
        // photocurrent in nA: responsivity [A/W] * power [mW] = mA -> 1e6 nA
        let signal_na = detector.config().responsivity_a_per_w * delivered_mw * 1e6;
        detector.snr_db(signal_na) >= target_snr_db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::DetectorConfig;

    #[test]
    fn construction_validation() {
        assert!(Laser::new(0.0, 1, 1.0).is_err());
        assert!(Laser::new(1.0, 0, 1.0).is_err());
        assert!(Laser::new(1.0, 1, 0.0).is_err());
        assert!(Laser::new(1.0, 1, 1.5).is_err());
        assert!(Laser::new(0.5, 256, 0.2).is_ok());
    }

    #[test]
    fn default_matches_table_iv() {
        let laser = Laser::photofourier_default(256).unwrap();
        assert_eq!(laser.optical_power_per_waveguide(), Milliwatts(0.5));
        assert_eq!(laser.total_optical_power(), Milliwatts(128.0));
        assert_eq!(laser.num_waveguides(), 256);
    }

    #[test]
    fn electrical_power_includes_efficiency() {
        let laser = Laser::new(0.5, 100, 0.25).unwrap();
        assert_eq!(laser.total_optical_power(), Milliwatts(50.0));
        assert_eq!(laser.electrical_power(), Milliwatts(200.0));
    }

    #[test]
    fn snr_target_check() {
        let detector = Photodetector::new(DetectorConfig {
            responsivity_a_per_w: 1.0,
            dark_current_na: 10.0,
            max_accumulation_depth: 16,
        })
        .unwrap();
        let laser = Laser::photofourier_default(256).unwrap();
        // 0.5 mW with modest loss -> photocurrent ~ hundreds of uA >> 10 nA: easily > 20 dB.
        assert!(laser.meets_snr_target(&detector, 10.0, 20.0));
        // With absurd 70 dB loss the target fails for a 90 dB requirement.
        assert!(!laser.meets_snr_target(&detector, 70.0, 90.0));
    }
}
