//! Deterministic fault injection for the serving tier.
//!
//! A [`FaultPlan`] compiles the scenario `[faults]` section
//! ([`pf_core::FaultsSpec`]) into a schedule keyed by the wrapped engine's
//! request sequence numbers: the same plan over the same request stream
//! injects the same faults at the same points, every run, so chaos tests
//! replay bit-identically and their event counts can be gated in CI.
//!
//! [`FaultyEngine`] wraps any [`InferenceEngine`] (and forwards the
//! [`ReplicaEngine`] seam, so it drops into a `pf-router` tier unchanged)
//! and injects:
//!
//! - **latency spikes / stalls** — a seeded-jitter sleep before the batch,
//! - **panics** — the engine panics mid-batch (the server's dispatch path
//!   catches it and fails the batch's tickets),
//! - **transient typed errors** — [`PfError::FaultInjected`], safe to retry,
//! - **NaN / Inf corruption and calibration drift** — response payloads are
//!   mutated through a caller-installed [`Corruption`] hook (the payload
//!   type is generic, so the facade decides what "corrupt a tensor" means);
//!   drift gains reuse `pf-photonics`' sensing-noise machinery.
//!
//! Injection counters ([`FaultCounts`]) record exactly what fired, for
//! chaos reports and determinism gates.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pf_core::{FaultsSpec, PfError};
use pf_photonics::detector::SensingNoise;
use pf_router::{CacheStats, ReplicaEngine};
use pf_serve::InferenceEngine;
use pf_telemetry::Telemetry;

/// One injectable fault, compiled from a `[[faults.windows]]` entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Sleep for roughly this long (seeded jitter applies) before serving
    /// the batch.
    LatencySpike {
        /// Nominal spike duration in microseconds.
        micros: u64,
    },
    /// A longer sleep: same mechanism as a spike, reported separately so a
    /// wedged replica is distinguishable from a slow one.
    Stall {
        /// Nominal stall duration in microseconds.
        micros: u64,
    },
    /// The engine panics while serving the batch.
    Panic,
    /// The batch fails with a typed, retry-safe [`PfError::FaultInjected`].
    TransientError,
    /// A NaN is written into the faulted request's response payload.
    CorruptNan,
    /// An infinity is written into the faulted request's response payload.
    CorruptInf,
    /// The faulted request's response is scaled by a seeded calibration
    /// gain error drawn from `pf-photonics`' sensing-noise model.
    CalibrationDrift {
        /// Gain-error sigma (standard deviation around a gain of 1.0).
        sigma: f64,
    },
}

impl FaultKind {
    /// The `[faults]` schema name of this kind (one of
    /// [`pf_core::FAULT_KINDS`]).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::LatencySpike { .. } => "latency_spike",
            FaultKind::Stall { .. } => "stall",
            FaultKind::Panic => "panic",
            FaultKind::TransientError => "transient_error",
            FaultKind::CorruptNan => "corrupt_nan",
            FaultKind::CorruptInf => "corrupt_inf",
            FaultKind::CalibrationDrift { .. } => "calibration_drift",
        }
    }
}

/// A compiled fault window: one [`FaultKind`] over a half-open seq range.
#[derive(Debug, Clone, Copy, PartialEq)]
struct FaultWindow {
    kind: FaultKind,
    from_seq: u64,
    until_seq: u64,
    every: u64,
}

/// A seeded, fully deterministic fault schedule.
///
/// The schedule is a pure function of the request sequence number: given
/// the same request stream, the same faults fire at the same points in
/// every run. The seed only feeds per-request *magnitudes* (spike jitter,
/// drift draws), never *whether* a fault fires.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// The empty plan: injects nothing.
    pub fn none() -> Self {
        Self {
            seed: 0,
            windows: Vec::new(),
        }
    }

    /// Compiles a validated `[faults]` spec into a plan.
    ///
    /// # Errors
    ///
    /// Returns [`PfError::InvalidScenario`] if the spec fails
    /// [`FaultsSpec::validate`].
    pub fn from_spec(spec: &FaultsSpec) -> Result<Self, PfError> {
        spec.validate()?;
        let windows = spec
            .windows
            .iter()
            .map(|w| {
                let kind = match w.kind.as_str() {
                    "latency_spike" => FaultKind::LatencySpike {
                        micros: w.magnitude as u64,
                    },
                    "stall" => FaultKind::Stall {
                        micros: w.magnitude as u64,
                    },
                    "panic" => FaultKind::Panic,
                    "transient_error" => FaultKind::TransientError,
                    "corrupt_nan" => FaultKind::CorruptNan,
                    "corrupt_inf" => FaultKind::CorruptInf,
                    "calibration_drift" => FaultKind::CalibrationDrift { sigma: w.magnitude },
                    other => unreachable!("validate() admitted unknown fault kind `{other}`"),
                };
                FaultWindow {
                    kind,
                    from_seq: w.from_seq,
                    until_seq: w.until_seq,
                    every: w.every,
                }
            })
            .collect();
        Ok(Self {
            seed: spec.seed,
            windows,
        })
    }

    /// Whether this plan can ever inject anything.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The fault (if any) scheduled for request sequence number `seq`.
    /// Earlier windows win when windows overlap.
    pub fn fault_for(&self, seq: u64) -> Option<FaultKind> {
        self.windows.iter().find_map(|w| {
            (seq >= w.from_seq && seq < w.until_seq && (seq - w.from_seq).is_multiple_of(w.every))
                .then_some(w.kind)
        })
    }

    /// Deterministic per-seq jitter factor in `[0.5, 1.0)`.
    fn jitter(&self, seq: u64) -> f64 {
        0.5 + 0.5
            * unit_from_bits(splitmix64(
                self.seed ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
    }

    /// Deterministic calibration-drift gain for `seq`: a draw around 1.0
    /// with standard deviation `sigma`, via the pf-photonics sensing-noise
    /// model seeded from the plan seed and the sequence number.
    fn drift_gain(&self, seq: u64, sigma: f64) -> f64 {
        let seed = splitmix64(self.seed ^ seq ^ 0xD1F7_5EED);
        match SensingNoise::new(sigma, seed) {
            Ok(mut noise) => noise.perturb(1.0),
            // validate() guarantees sigma >= 0, so this arm is unreachable;
            // degrade to a no-op gain rather than panicking inside a fault.
            Err(_) => 1.0,
        }
    }
}

/// SplitMix64: the standard 64-bit seed scrambler.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps 64 random bits onto `[0, 1)`.
fn unit_from_bits(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// How a corruption fault mutates a response payload. The payload type is
/// generic, so the engine owner installs a hook that knows how to apply
/// these to its concrete response type (see
/// [`FaultyEngine::with_corruptor`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Corruption {
    /// Write a NaN somewhere in the payload.
    Nan,
    /// Write an infinity somewhere in the payload.
    Inf,
    /// Scale the payload by this calibration-drift gain.
    Gain(f64),
}

/// How many faults of each kind a [`FaultyEngine`] has injected. These are
/// pure counts of deterministic events, so two runs of the same plan over
/// the same request stream produce identical values — the property the
/// chaos determinism gate asserts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Latency spikes slept.
    pub spikes: u64,
    /// Stalls slept.
    pub stalls: u64,
    /// Panics raised.
    pub panics: u64,
    /// Transient typed errors returned.
    pub errors: u64,
    /// NaN/Inf payload corruptions applied.
    pub corruptions: u64,
    /// Calibration-drift gains applied.
    pub drifts: u64,
}

impl FaultCounts {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.spikes + self.stalls + self.panics + self.errors + self.corruptions + self.drifts
    }
}

type Corruptor<R> = Arc<dyn Fn(&mut R, Corruption) + Send + Sync>;

/// An [`InferenceEngine`] wrapper that injects the faults a [`FaultPlan`]
/// schedules, and otherwise forwards to the wrapped engine unchanged. Also
/// forwards the [`ReplicaEngine`] seam (cache stats, integrity screen), so
/// a faulty replica slots into a `pf-router` tier transparently.
pub struct FaultyEngine<E: InferenceEngine> {
    inner: E,
    plan: FaultPlan,
    corruptor: Option<Corruptor<E::Response>>,
    spikes: AtomicU64,
    stalls: AtomicU64,
    panics: AtomicU64,
    errors: AtomicU64,
    corruptions: AtomicU64,
    drifts: AtomicU64,
}

impl<E: InferenceEngine> fmt::Debug for FaultyEngine<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultyEngine")
            .field("plan", &self.plan)
            .field("has_corruptor", &self.corruptor.is_some())
            .field("counts", &self.counts())
            .finish_non_exhaustive()
    }
}

impl<E: InferenceEngine> FaultyEngine<E> {
    /// Wraps `inner` with a fault plan. Without a corruptor hook, payload
    /// corruption faults are counted but leave the payload untouched (the
    /// engine does not know the payload's shape).
    pub fn new(inner: E, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            corruptor: None,
            spikes: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            corruptions: AtomicU64::new(0),
            drifts: AtomicU64::new(0),
        }
    }

    /// Wraps `inner` with the empty plan: a pure passthrough.
    pub fn passthrough(inner: E) -> Self {
        Self::new(inner, FaultPlan::none())
    }

    /// Installs the hook that applies [`Corruption`]s to the concrete
    /// response type.
    #[must_use]
    pub fn with_corruptor(
        mut self,
        corruptor: impl Fn(&mut E::Response, Corruption) + Send + Sync + 'static,
    ) -> Self {
        self.corruptor = Some(Arc::new(corruptor));
        self
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// The compiled plan this engine injects from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Snapshot of how many faults of each kind have been injected.
    pub fn counts(&self) -> FaultCounts {
        FaultCounts {
            spikes: self.spikes.load(Ordering::SeqCst),
            stalls: self.stalls.load(Ordering::SeqCst),
            panics: self.panics.load(Ordering::SeqCst),
            errors: self.errors.load(Ordering::SeqCst),
            corruptions: self.corruptions.load(Ordering::SeqCst),
            drifts: self.drifts.load(Ordering::SeqCst),
        }
    }

    fn corrupt(&self, response: &mut E::Response, corruption: Corruption) {
        if let Some(corruptor) = &self.corruptor {
            corruptor(response, corruption);
        }
    }

    /// Shared pre/post fault logic around one engine call, so the plain and
    /// traced paths stay bit-identical by construction.
    fn run(
        &self,
        inputs: &[E::Request],
        seqs: &[u64],
        call: impl FnOnce(&E, &[E::Request], &[u64]) -> Result<Vec<E::Response>, PfError>,
    ) -> Result<Vec<E::Response>, PfError> {
        let faults: Vec<Option<FaultKind>> = seqs.iter().map(|&s| self.plan.fault_for(s)).collect();

        // Whole-batch faults first: a panicking or erroring engine takes its
        // co-batched peers down with it, exactly as a real replica would.
        if faults.iter().any(|f| matches!(f, Some(FaultKind::Panic))) {
            self.panics.fetch_add(1, Ordering::SeqCst);
            panic!("pf-faults: injected engine panic");
        }
        if faults
            .iter()
            .any(|f| matches!(f, Some(FaultKind::TransientError)))
        {
            self.errors.fetch_add(1, Ordering::SeqCst);
            return Err(PfError::FaultInjected {
                kind: "transient_error",
            });
        }

        // Latency faults: sleep the largest jittered delay once per batch.
        let mut delay_us = 0u64;
        for (i, fault) in faults.iter().enumerate() {
            let micros = match fault {
                Some(FaultKind::LatencySpike { micros }) => {
                    self.spikes.fetch_add(1, Ordering::SeqCst);
                    *micros
                }
                Some(FaultKind::Stall { micros }) => {
                    self.stalls.fetch_add(1, Ordering::SeqCst);
                    *micros
                }
                _ => continue,
            };
            let jittered = (micros as f64 * self.plan.jitter(seqs[i])) as u64;
            delay_us = delay_us.max(jittered);
        }
        if delay_us > 0 {
            std::thread::sleep(Duration::from_micros(delay_us));
        }

        let mut outputs = call(&self.inner, inputs, seqs)?;

        // Per-request payload corruption on the way out.
        for (i, fault) in faults.iter().enumerate() {
            match fault {
                Some(FaultKind::CorruptNan) => {
                    self.corruptions.fetch_add(1, Ordering::SeqCst);
                    self.corrupt(&mut outputs[i], Corruption::Nan);
                }
                Some(FaultKind::CorruptInf) => {
                    self.corruptions.fetch_add(1, Ordering::SeqCst);
                    self.corrupt(&mut outputs[i], Corruption::Inf);
                }
                Some(FaultKind::CalibrationDrift { sigma }) => {
                    self.drifts.fetch_add(1, Ordering::SeqCst);
                    let gain = self.plan.drift_gain(seqs[i], *sigma);
                    self.corrupt(&mut outputs[i], Corruption::Gain(gain));
                }
                _ => {}
            }
        }
        Ok(outputs)
    }
}

impl<E: InferenceEngine> InferenceEngine for FaultyEngine<E> {
    type Request = E::Request;
    type Response = E::Response;

    fn infer_batch(
        &self,
        inputs: &[Self::Request],
        seqs: &[u64],
    ) -> Result<Vec<Self::Response>, PfError> {
        self.run(inputs, seqs, |inner, inputs, seqs| {
            inner.infer_batch(inputs, seqs)
        })
    }

    fn infer_batch_traced(
        &self,
        inputs: &[Self::Request],
        seqs: &[u64],
        tel: &Telemetry,
        parent: u64,
    ) -> Result<Vec<Self::Response>, PfError> {
        self.run(inputs, seqs, |inner, inputs, seqs| {
            inner.infer_batch_traced(inputs, seqs, tel, parent)
        })
    }
}

impl<E: ReplicaEngine> ReplicaEngine for FaultyEngine<E> {
    fn cache_stats(&self) -> CacheStats {
        self.inner.cache_stats()
    }

    fn screen(&self, response: &Self::Response) -> bool {
        self.inner.screen(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_core::FaultWindowSpec;

    /// Echo engine: response = (seq, value).
    #[derive(Debug)]
    struct Echo;

    impl InferenceEngine for Echo {
        type Request = f64;
        type Response = (u64, f64);

        fn infer_batch(&self, inputs: &[f64], seqs: &[u64]) -> Result<Vec<(u64, f64)>, PfError> {
            Ok(seqs.iter().copied().zip(inputs.iter().copied()).collect())
        }
    }

    fn spec(windows: Vec<FaultWindowSpec>) -> FaultsSpec {
        FaultsSpec {
            seed: 7,
            replica: 0,
            windows,
        }
    }

    fn window(kind: &str, from: u64, until: u64, every: u64, magnitude: f64) -> FaultWindowSpec {
        FaultWindowSpec {
            kind: kind.to_string(),
            from_seq: from,
            until_seq: until,
            every,
            magnitude,
        }
    }

    #[test]
    fn schedule_is_a_pure_function_of_seq() {
        let plan = FaultPlan::from_spec(&spec(vec![
            window("transient_error", 4, 8, 2, 0.0),
            window("corrupt_nan", 6, 10, 1, 0.0),
        ]))
        .unwrap();
        for _ in 0..3 {
            assert_eq!(plan.fault_for(3), None);
            assert_eq!(plan.fault_for(4), Some(FaultKind::TransientError));
            assert_eq!(plan.fault_for(5), None);
            // Overlap: the earlier window wins.
            assert_eq!(plan.fault_for(6), Some(FaultKind::TransientError));
            assert_eq!(plan.fault_for(7), Some(FaultKind::CorruptNan));
            assert_eq!(plan.fault_for(8), Some(FaultKind::CorruptNan));
            assert_eq!(plan.fault_for(10), None);
        }
        assert!(FaultPlan::none().is_empty());
        assert!(FaultPlan::none().fault_for(0).is_none());
    }

    #[test]
    fn transient_error_fails_the_batch_and_counts() {
        let plan =
            FaultPlan::from_spec(&spec(vec![window("transient_error", 1, 2, 1, 0.0)])).unwrap();
        let engine = FaultyEngine::new(Echo, plan);
        assert!(engine.infer_batch(&[1.0], &[0]).is_ok());
        let err = engine.infer_batch(&[1.0, 2.0], &[1, 2]).unwrap_err();
        assert_eq!(
            err,
            PfError::FaultInjected {
                kind: "transient_error"
            }
        );
        assert!(engine.infer_batch(&[1.0], &[2]).is_ok());
        assert_eq!(engine.counts().errors, 1);
        assert_eq!(engine.counts().total(), 1);
    }

    #[test]
    fn panic_fault_panics() {
        let plan = FaultPlan::from_spec(&spec(vec![window("panic", 0, 1, 1, 0.0)])).unwrap();
        let engine = FaultyEngine::new(Echo, plan);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.infer_batch(&[1.0], &[0])
        }));
        assert!(result.is_err());
        assert_eq!(engine.counts().panics, 1);
    }

    #[test]
    fn corruption_goes_through_the_hook_and_drift_is_seeded() {
        let plan = FaultPlan::from_spec(&spec(vec![
            window("corrupt_inf", 0, 1, 1, 0.0),
            window("calibration_drift", 1, 2, 1, 0.25),
        ]))
        .unwrap();
        let run = || {
            let engine = FaultyEngine::new(Echo, plan.clone()).with_corruptor(
                |response: &mut (u64, f64), corruption| match corruption {
                    Corruption::Nan => response.1 = f64::NAN,
                    Corruption::Inf => response.1 = f64::INFINITY,
                    Corruption::Gain(g) => response.1 *= g,
                },
            );
            let out = engine.infer_batch(&[3.0, 3.0, 3.0], &[0, 1, 2]).unwrap();
            (out, engine.counts())
        };
        let (out, counts) = run();
        assert!(out[0].1.is_infinite());
        assert!(
            out[1].1.is_finite() && out[1].1 != 3.0,
            "drift must perturb"
        );
        assert_eq!(out[2].1, 3.0);
        assert_eq!(counts.corruptions, 1);
        assert_eq!(counts.drifts, 1);
        // Bit-identical replay: same plan, same stream, same bits out.
        let (again, counts_again) = run();
        assert_eq!(out[1].1.to_bits(), again[1].1.to_bits());
        assert_eq!(counts, counts_again);
    }

    #[test]
    fn without_a_corruptor_payloads_pass_untouched() {
        let plan = FaultPlan::from_spec(&spec(vec![window("corrupt_nan", 0, 4, 1, 0.0)])).unwrap();
        let engine = FaultyEngine::new(Echo, plan);
        let out = engine.infer_batch(&[5.0], &[0]).unwrap();
        assert_eq!(out[0].1, 5.0);
        assert_eq!(engine.counts().corruptions, 1);
    }

    #[test]
    fn spikes_sleep_but_serve() {
        let plan =
            FaultPlan::from_spec(&spec(vec![window("latency_spike", 0, 1, 1, 100.0)])).unwrap();
        let engine = FaultyEngine::new(Echo, plan);
        let out = engine.infer_batch(&[1.0], &[0]).unwrap();
        assert_eq!(out[0], (0, 1.0));
        assert_eq!(engine.counts().spikes, 1);
    }

    #[test]
    fn passthrough_injects_nothing() {
        let engine = FaultyEngine::passthrough(Echo);
        for seq in 0..64 {
            assert!(engine.infer_batch(&[1.0], &[seq]).is_ok());
        }
        assert_eq!(engine.counts(), FaultCounts::default());
        assert!(engine.plan().is_empty());
    }
}
