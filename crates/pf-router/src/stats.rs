//! Router accounting: every admission decision and every completion,
//! rolled up per priority class, per replica, and in aggregate.
//!
//! The dispatch policy is judged by *recorded* tail latency and cache
//! locality, not by construction — so the router counts everything it
//! does: admissions (and which replica, and whether the first choice
//! spilled), sheds, rejections, window shrinks, deadline misses, and the
//! per-class latency distributions.

use std::time::Instant;

use pf_serve::{LatencySummary, ServerStats};
use pf_telemetry::{Counter, Telemetry};
use serde::{Deserialize, Serialize};

use crate::health::{Admission, HealthConfig, HealthEvents, ReplicaHealth, ReplicaHealthReport};

/// Model-session cache counters of one replica's engine (see
/// `ReplicaEngine::cache_stats`): how often a request found its model's
/// session — and with it the model's prepared-kernel spectra — already
/// resident on the replica that served it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Requests whose model was already resident.
    pub hits: u64,
    /// Requests that had to evict/build a model session first.
    pub misses: u64,
}

impl CacheStats {
    /// Hits over lookups, `0` before the first lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }

    /// Element-wise sum.
    pub fn merged(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
        }
    }
}

/// Rollup for one priority class.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ClassStats {
    /// Class name (from the configured `priority_classes`).
    pub class: String,
    /// Requests of this class the router admitted to a replica.
    pub admitted: u64,
    /// Requests completed successfully (and waited on).
    pub served: u64,
    /// Requests failed by a replica's engine.
    pub failed: u64,
    /// Requests whose deadline expired while queued (never dispatched).
    pub expired: u64,
    /// Requests abandoned by their caller (`RouterTicket::wait_deadline`
    /// timed out).
    pub abandoned: u64,
    /// Requests shed by the router's overload policy.
    pub shed: u64,
    /// Requests rejected because every replica's queue was full.
    pub rejected: u64,
    /// Served requests that completed *after* their deadline.
    pub deadline_misses: u64,
    /// Router-observed end-to-end latency (admission → completion) of
    /// served requests.
    pub latency: LatencySummary,
}

/// Rollup for one replica shard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicaRollup {
    /// Replica index.
    pub replica: usize,
    /// Requests the router dispatched to this replica.
    pub dispatched: u64,
    /// The replica server's own accounting (queueing, batching,
    /// percentiles as the server saw them).
    pub server: ServerStats,
    /// The replica engine's model-session cache counters.
    pub cache: CacheStats,
    /// The replica's health record: breaker state, EWMA latency/error
    /// scores, quarantine history.
    pub health: ReplicaHealthReport,
}

/// Snapshot of a router's accounting, from [`crate::Router::stats`]
/// (mid-flight) or [`crate::Router::drain`] (final: every ticket resolved).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterStats {
    /// Dispatch policy name the router ran with.
    pub policy: String,
    /// Requests offered to the router (`admitted + shed + rejected`).
    pub submitted: u64,
    /// Requests placed on some replica's queue.
    pub admitted: u64,
    /// Requests intentionally shed (lowest priority class, under
    /// overload) — a policy decision, not a capacity failure.
    pub shed: u64,
    /// Requests rejected because every replica's queue was full — the
    /// last-resort stage of the degradation ladder.
    pub rejected: u64,
    /// Admissions that landed on a fallback replica after the policy's
    /// first choice was full.
    pub spills: u64,
    /// Times the router shrank the batch-formation windows (transitions
    /// into the shrunk state, not per-request).
    pub window_shrinks: u64,
    /// Served requests (all classes) that completed after their deadline.
    pub deadline_misses: u64,
    /// Failed dispatch attempts that were resubmitted to another replica
    /// (`Router::submit_with_retry` traffic only). A retry re-dispatches an
    /// already-admitted request, so retries do **not** count into
    /// `admitted` — the `submitted == admitted + shed + rejected` invariant
    /// is unchanged.
    pub retries: u64,
    /// Circuit-breaker state changes across all replicas (closed → open,
    /// open → half-open, half-open → closed/open).
    pub breaker_transitions: u64,
    /// Transitions into the open state (replica quarantine events).
    pub quarantined: u64,
    /// Served payloads discarded by the NaN/Inf integrity screen.
    pub integrity_rejects: u64,
    /// Router-observed end-to-end latency over all served requests.
    pub latency: LatencySummary,
    /// Per-class rollups, in configured priority order (highest first).
    pub classes: Vec<ClassStats>,
    /// Per-replica rollups, by replica index.
    pub replicas: Vec<ReplicaRollup>,
}

impl RouterStats {
    /// The rollup for the named class, if configured.
    pub fn class(&self, name: &str) -> Option<&ClassStats> {
        self.classes.iter().find(|c| c.class == name)
    }

    /// Aggregate model-cache counters over all replicas.
    pub fn cache(&self) -> CacheStats {
        self.replicas
            .iter()
            .fold(CacheStats::default(), |acc, r| acc.merged(&r.cache))
    }

    /// Served requests over all classes.
    pub fn served(&self) -> u64 {
        self.classes.iter().map(|c| c.served).sum()
    }

    /// Deadline misses over served-and-deadlined requests, `0` before the
    /// first served request.
    pub fn deadline_miss_rate(&self) -> f64 {
        let served = self.served();
        if served == 0 {
            return 0.0;
        }
        self.deadline_misses as f64 / served as f64
    }
}

/// How a waited-on router ticket resolved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Outcome {
    /// Completed successfully; latency in seconds and whether the
    /// completion violated the request's deadline.
    Served { latency_secs: f64, missed: bool },
    /// The replica engine failed the request.
    Failed,
    /// Deadline expired while queued; never dispatched.
    Expired,
    /// The caller's `wait_deadline` timed out and cancelled the ticket.
    Abandoned,
}

#[derive(Debug, Default)]
struct ClassAcc {
    admitted: u64,
    served: u64,
    failed: u64,
    expired: u64,
    abandoned: u64,
    shed: u64,
    rejected: u64,
    deadline_misses: u64,
    latency_secs: Vec<f64>,
}

/// Mutable accumulator behind the router's stats mutex. Tickets record
/// their outcome here when waited on; the router records admission
/// decisions directly.
///
/// Like the replica servers' collector, the tier-level monotone counts
/// (admitted / shed / rejected / spills / window shrinks) live in the
/// telemetry registry as `router.*` counters so metric snapshots and the
/// [`RouterStats`] view read the same numbers; the per-class accumulators
/// (exact latency samples) stay local.
#[derive(Debug)]
pub(crate) struct RouterCollector {
    classes: Vec<ClassAcc>,
    dispatched: Vec<u64>,
    health_config: HealthConfig,
    health: Vec<ReplicaHealth>,
    admitted: Counter,
    shed: Counter,
    rejected: Counter,
    spills: Counter,
    window_shrinks: Counter,
    retries: Counter,
    breaker_transitions: Counter,
    quarantined: Counter,
    integrity_rejects: Counter,
}

impl RouterCollector {
    pub(crate) fn new(
        classes: usize,
        replicas: usize,
        health_config: HealthConfig,
        tel: &Telemetry,
    ) -> Self {
        let tel = tel.or_private();
        Self {
            classes: (0..classes).map(|_| ClassAcc::default()).collect(),
            dispatched: vec![0; replicas],
            health_config,
            health: (0..replicas).map(|_| ReplicaHealth::new()).collect(),
            admitted: tel.counter("router.admitted"),
            shed: tel.counter("router.shed"),
            rejected: tel.counter("router.rejected"),
            spills: tel.counter("router.spills"),
            window_shrinks: tel.counter("router.window_shrinks"),
            retries: tel.counter("router.retries"),
            breaker_transitions: tel.counter("router.breaker_transitions"),
            quarantined: tel.counter("router.quarantined"),
            integrity_rejects: tel.counter("router.integrity_rejects"),
        }
    }

    fn bump(&self, events: HealthEvents) {
        self.breaker_transitions.add(events.transitions);
        self.quarantined.add(events.quarantines);
    }

    pub(crate) fn record_admitted(&mut self, class: usize, replica: usize, spilled: bool) {
        self.classes[class].admitted += 1;
        self.dispatched[replica] += 1;
        self.health[replica].note_admission();
        self.admitted.inc();
        if spilled {
            self.spills.inc();
        }
    }

    /// A failed attempt of an already-admitted request was resubmitted and
    /// landed on `replica`. Counts into `dispatched` (the replica will do
    /// the work) but not into `admitted`.
    pub(crate) fn record_retry(&mut self, replica: usize) {
        self.dispatched[replica] += 1;
        self.health[replica].note_admission();
        self.retries.inc();
    }

    /// One dispatch attempt on `replica` served successfully.
    pub(crate) fn record_attempt_success(&mut self, replica: usize, latency_ms: f64) {
        let events = self.health[replica].on_success(&self.health_config, latency_ms);
        self.bump(events);
    }

    /// One dispatch attempt on `replica` failed (engine error or integrity
    /// reject) — whether or not the request will be retried.
    pub(crate) fn record_attempt_failure(&mut self, replica: usize) {
        let events = self.health[replica].on_failure(&self.health_config);
        self.bump(events);
    }

    /// A served payload from `replica` failed the integrity screen.
    pub(crate) fn record_integrity_reject(&mut self, replica: usize) {
        let _ = replica;
        self.integrity_rejects.inc();
    }

    /// A request admitted to `replica` resolved with no verdict on the
    /// replica itself (expired in queue / abandoned by caller).
    pub(crate) fn release_probe(&mut self, replica: usize) {
        self.health[replica].on_unjudged();
    }

    /// Applies the circuit breaker to one submission's policy order:
    /// half-open probes first (bounded), then closed replicas in policy
    /// order; open replicas are skipped (and their probe countdown
    /// advanced). Falls back to the unfiltered order if quarantine would
    /// leave nothing — a fully-quarantined tier still serves rather than
    /// failing every request outright.
    pub(crate) fn gate_order(&mut self, order: Vec<usize>) -> Vec<usize> {
        let mut probes = Vec::new();
        let mut normal = Vec::new();
        for &replica in &order {
            let (admission, events) = self.health[replica].gate(&self.health_config);
            self.bump(events);
            match admission {
                Admission::Normal => normal.push(replica),
                Admission::Probe => probes.push(replica),
                Admission::Quarantined => {}
            }
        }
        if probes.is_empty() && normal.is_empty() {
            return order;
        }
        probes.extend(normal);
        probes
    }

    pub(crate) fn health_report(&self, replica: usize) -> ReplicaHealthReport {
        self.health[replica].report()
    }

    pub(crate) fn record_shed(&mut self, class: usize) {
        self.classes[class].shed += 1;
        self.shed.inc();
    }

    pub(crate) fn record_rejected(&mut self, class: usize) {
        self.classes[class].rejected += 1;
        self.rejected.inc();
    }

    pub(crate) fn record_window_shrink(&mut self) {
        self.window_shrinks.inc();
    }

    pub(crate) fn record_outcome(&mut self, class: usize, outcome: Outcome) {
        let acc = &mut self.classes[class];
        match outcome {
            Outcome::Served {
                latency_secs,
                missed,
            } => {
                acc.served += 1;
                acc.latency_secs.push(latency_secs);
                if missed {
                    acc.deadline_misses += 1;
                }
            }
            Outcome::Failed => acc.failed += 1,
            Outcome::Expired => acc.expired += 1,
            Outcome::Abandoned => acc.abandoned += 1,
        }
    }

    pub(crate) fn snapshot(
        &self,
        policy: &str,
        class_names: &[String],
        replicas: Vec<ReplicaRollup>,
    ) -> RouterStats {
        let classes: Vec<ClassStats> = class_names
            .iter()
            .zip(&self.classes)
            .map(|(name, acc)| ClassStats {
                class: name.clone(),
                admitted: acc.admitted,
                served: acc.served,
                failed: acc.failed,
                expired: acc.expired,
                abandoned: acc.abandoned,
                shed: acc.shed,
                rejected: acc.rejected,
                deadline_misses: acc.deadline_misses,
                latency: LatencySummary::from_samples_secs(&acc.latency_secs),
            })
            .collect();
        let all_samples: Vec<f64> = self
            .classes
            .iter()
            .flat_map(|acc| acc.latency_secs.iter().copied())
            .collect();
        let admitted: u64 = classes.iter().map(|c| c.admitted).sum();
        let (shed, rejected) = (self.shed.value(), self.rejected.value());
        RouterStats {
            policy: policy.to_string(),
            submitted: admitted + shed + rejected,
            admitted,
            shed,
            rejected,
            spills: self.spills.value(),
            window_shrinks: self.window_shrinks.value(),
            deadline_misses: classes.iter().map(|c| c.deadline_misses).sum(),
            retries: self.retries.value(),
            breaker_transitions: self.breaker_transitions.value(),
            quarantined: self.quarantined.value(),
            integrity_rejects: self.integrity_rejects.value(),
            latency: LatencySummary::from_samples_secs(&all_samples),
            classes,
            replicas,
        }
    }

    pub(crate) fn dispatched(&self, replica: usize) -> u64 {
        self.dispatched[replica]
    }
}

/// Elapsed seconds between two instants, `0` if `end` precedes `start`
/// (instants are monotone, but clones of them can be compared across
/// threads in either order).
pub(crate) fn secs_between(start: Instant, end: Instant) -> f64 {
    end.checked_duration_since(start)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_rolls_up_per_class_and_aggregate() {
        let tel = Telemetry::enabled();
        let mut c = RouterCollector::new(2, 2, HealthConfig::default(), &tel);
        c.record_admitted(0, 0, false);
        c.record_admitted(0, 1, true);
        c.record_admitted(1, 0, false);
        c.record_shed(1);
        c.record_rejected(1);
        c.record_window_shrink();
        c.record_outcome(
            0,
            Outcome::Served {
                latency_secs: 0.010,
                missed: false,
            },
        );
        c.record_outcome(
            0,
            Outcome::Served {
                latency_secs: 0.030,
                missed: true,
            },
        );
        c.record_outcome(1, Outcome::Failed);

        let names = vec!["interactive".to_string(), "background".to_string()];
        let stats = c.snapshot("least_loaded", &names, Vec::new());
        assert_eq!(stats.policy, "least_loaded");
        assert_eq!(stats.admitted, 3);
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.submitted, 5);
        assert_eq!(stats.spills, 1);
        assert_eq!(stats.window_shrinks, 1);
        assert_eq!(stats.served(), 2);
        assert_eq!(stats.deadline_misses, 1);
        assert!((stats.deadline_miss_rate() - 0.5).abs() < 1e-12);
        assert_eq!(stats.latency.count, 2);

        let interactive = stats.class("interactive").unwrap();
        assert_eq!(interactive.served, 2);
        assert_eq!(interactive.deadline_misses, 1);
        let background = stats.class("background").unwrap();
        assert_eq!(background.failed, 1);
        assert_eq!(background.shed, 1);
        assert_eq!(background.rejected, 1);
        assert!(stats.class("nope").is_none());

        assert_eq!(c.dispatched(0), 2);
        assert_eq!(c.dispatched(1), 1);

        // The aggregates are the same counters a metrics snapshot reads.
        let snap = tel.snapshot();
        assert_eq!(snap.counter("router.admitted"), 3);
        assert_eq!(snap.counter("router.shed"), 1);
        assert_eq!(snap.counter("router.rejected"), 1);
        assert_eq!(snap.counter("router.spills"), 1);
        assert_eq!(snap.counter("router.window_shrinks"), 1);
    }

    #[test]
    fn cache_stats_hit_rate_and_merge() {
        let a = CacheStats { hits: 3, misses: 1 };
        let b = CacheStats { hits: 1, misses: 3 };
        assert!((a.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let merged = a.merged(&b);
        assert_eq!(merged, CacheStats { hits: 4, misses: 4 });
        assert!((merged.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn secs_between_is_never_negative() {
        let now = Instant::now();
        let later = now + std::time::Duration::from_millis(5);
        assert!(secs_between(now, later) > 0.0);
        assert_eq!(secs_between(later, now), 0.0);
    }

    #[test]
    fn router_stats_serialize() {
        let stats = RouterCollector::new(1, 1, HealthConfig::default(), &Telemetry::disabled())
            .snapshot(
                "round_robin",
                &["only".to_string()],
                vec![ReplicaRollup {
                    replica: 0,
                    dispatched: 0,
                    server: ServerStats::default(),
                    cache: CacheStats::default(),
                    health: ReplicaHealthReport::default(),
                }],
            );
        let json = serde_json::to_string(&stats).unwrap();
        let back: RouterStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn attempt_accounting_drives_breaker_and_counters() {
        let tel = Telemetry::enabled();
        let health = HealthConfig {
            trip_after: 2,
            probe_after: 1,
            probes_to_close: 1,
            ..HealthConfig::default()
        };
        let mut c = RouterCollector::new(1, 2, health, &tel);
        // Two failures on replica 0 trip its breaker; replica 1 untouched.
        c.record_attempt_failure(0);
        c.record_attempt_failure(0);
        assert_eq!(c.health_report(0).state, "open");
        assert_eq!(c.health_report(1).state, "closed");
        // The gate skips replica 0 on the first pass (probe countdown), then
        // offers it a probe — ahead of the policy order.
        assert_eq!(c.gate_order(vec![0, 1]), vec![1]);
        assert_eq!(c.gate_order(vec![0, 1]), vec![0, 1]);
        assert_eq!(c.health_report(0).state, "half_open");
        // A retry dispatch lands the probe; success closes the breaker.
        c.record_retry(0);
        c.record_attempt_success(0, 5.0);
        assert_eq!(c.health_report(0).state, "closed");
        c.record_integrity_reject(1);

        let names = vec!["only".to_string()];
        let stats = c.snapshot("round_robin", &names, Vec::new());
        assert_eq!(stats.retries, 1);
        // closed->open, open->half_open, half_open->closed.
        assert_eq!(stats.breaker_transitions, 3);
        assert_eq!(stats.quarantined, 1);
        assert_eq!(stats.integrity_rejects, 1);
        assert_eq!(c.dispatched(0), 1, "retry dispatch counts as work");
        // Retries never inflate the admission invariant.
        assert_eq!(
            stats.submitted,
            stats.admitted + stats.shed + stats.rejected
        );

        let snap = tel.snapshot();
        assert_eq!(snap.counter("router.retries"), 1);
        assert_eq!(snap.counter("router.breaker_transitions"), 3);
        assert_eq!(snap.counter("router.quarantined"), 1);
        assert_eq!(snap.counter("router.integrity_rejects"), 1);
    }
}
