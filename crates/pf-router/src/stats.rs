//! Router accounting: every admission decision and every completion,
//! rolled up per priority class, per replica, and in aggregate.
//!
//! The dispatch policy is judged by *recorded* tail latency and cache
//! locality, not by construction — so the router counts everything it
//! does: admissions (and which replica, and whether the first choice
//! spilled), sheds, rejections, window shrinks, deadline misses, and the
//! per-class latency distributions.

use std::time::Instant;

use pf_serve::{LatencySummary, ServerStats};
use pf_telemetry::{Counter, Telemetry};
use serde::{Deserialize, Serialize};

/// Model-session cache counters of one replica's engine (see
/// `ReplicaEngine::cache_stats`): how often a request found its model's
/// session — and with it the model's prepared-kernel spectra — already
/// resident on the replica that served it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Requests whose model was already resident.
    pub hits: u64,
    /// Requests that had to evict/build a model session first.
    pub misses: u64,
}

impl CacheStats {
    /// Hits over lookups, `0` before the first lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }

    /// Element-wise sum.
    pub fn merged(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
        }
    }
}

/// Rollup for one priority class.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ClassStats {
    /// Class name (from the configured `priority_classes`).
    pub class: String,
    /// Requests of this class the router admitted to a replica.
    pub admitted: u64,
    /// Requests completed successfully (and waited on).
    pub served: u64,
    /// Requests failed by a replica's engine.
    pub failed: u64,
    /// Requests whose deadline expired while queued (never dispatched).
    pub expired: u64,
    /// Requests abandoned by their caller (`RouterTicket::wait_deadline`
    /// timed out).
    pub abandoned: u64,
    /// Requests shed by the router's overload policy.
    pub shed: u64,
    /// Requests rejected because every replica's queue was full.
    pub rejected: u64,
    /// Served requests that completed *after* their deadline.
    pub deadline_misses: u64,
    /// Router-observed end-to-end latency (admission → completion) of
    /// served requests.
    pub latency: LatencySummary,
}

/// Rollup for one replica shard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicaRollup {
    /// Replica index.
    pub replica: usize,
    /// Requests the router dispatched to this replica.
    pub dispatched: u64,
    /// The replica server's own accounting (queueing, batching,
    /// percentiles as the server saw them).
    pub server: ServerStats,
    /// The replica engine's model-session cache counters.
    pub cache: CacheStats,
}

/// Snapshot of a router's accounting, from [`crate::Router::stats`]
/// (mid-flight) or [`crate::Router::drain`] (final: every ticket resolved).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterStats {
    /// Dispatch policy name the router ran with.
    pub policy: String,
    /// Requests offered to the router (`admitted + shed + rejected`).
    pub submitted: u64,
    /// Requests placed on some replica's queue.
    pub admitted: u64,
    /// Requests intentionally shed (lowest priority class, under
    /// overload) — a policy decision, not a capacity failure.
    pub shed: u64,
    /// Requests rejected because every replica's queue was full — the
    /// last-resort stage of the degradation ladder.
    pub rejected: u64,
    /// Admissions that landed on a fallback replica after the policy's
    /// first choice was full.
    pub spills: u64,
    /// Times the router shrank the batch-formation windows (transitions
    /// into the shrunk state, not per-request).
    pub window_shrinks: u64,
    /// Served requests (all classes) that completed after their deadline.
    pub deadline_misses: u64,
    /// Router-observed end-to-end latency over all served requests.
    pub latency: LatencySummary,
    /// Per-class rollups, in configured priority order (highest first).
    pub classes: Vec<ClassStats>,
    /// Per-replica rollups, by replica index.
    pub replicas: Vec<ReplicaRollup>,
}

impl RouterStats {
    /// The rollup for the named class, if configured.
    pub fn class(&self, name: &str) -> Option<&ClassStats> {
        self.classes.iter().find(|c| c.class == name)
    }

    /// Aggregate model-cache counters over all replicas.
    pub fn cache(&self) -> CacheStats {
        self.replicas
            .iter()
            .fold(CacheStats::default(), |acc, r| acc.merged(&r.cache))
    }

    /// Served requests over all classes.
    pub fn served(&self) -> u64 {
        self.classes.iter().map(|c| c.served).sum()
    }

    /// Deadline misses over served-and-deadlined requests, `0` before the
    /// first served request.
    pub fn deadline_miss_rate(&self) -> f64 {
        let served = self.served();
        if served == 0 {
            return 0.0;
        }
        self.deadline_misses as f64 / served as f64
    }
}

/// How a waited-on router ticket resolved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Outcome {
    /// Completed successfully; latency in seconds and whether the
    /// completion violated the request's deadline.
    Served { latency_secs: f64, missed: bool },
    /// The replica engine failed the request.
    Failed,
    /// Deadline expired while queued; never dispatched.
    Expired,
    /// The caller's `wait_deadline` timed out and cancelled the ticket.
    Abandoned,
}

#[derive(Debug, Default)]
struct ClassAcc {
    admitted: u64,
    served: u64,
    failed: u64,
    expired: u64,
    abandoned: u64,
    shed: u64,
    rejected: u64,
    deadline_misses: u64,
    latency_secs: Vec<f64>,
}

/// Mutable accumulator behind the router's stats mutex. Tickets record
/// their outcome here when waited on; the router records admission
/// decisions directly.
///
/// Like the replica servers' collector, the tier-level monotone counts
/// (admitted / shed / rejected / spills / window shrinks) live in the
/// telemetry registry as `router.*` counters so metric snapshots and the
/// [`RouterStats`] view read the same numbers; the per-class accumulators
/// (exact latency samples) stay local.
#[derive(Debug)]
pub(crate) struct RouterCollector {
    classes: Vec<ClassAcc>,
    dispatched: Vec<u64>,
    admitted: Counter,
    shed: Counter,
    rejected: Counter,
    spills: Counter,
    window_shrinks: Counter,
}

impl RouterCollector {
    pub(crate) fn new(classes: usize, replicas: usize, tel: &Telemetry) -> Self {
        let tel = tel.or_private();
        Self {
            classes: (0..classes).map(|_| ClassAcc::default()).collect(),
            dispatched: vec![0; replicas],
            admitted: tel.counter("router.admitted"),
            shed: tel.counter("router.shed"),
            rejected: tel.counter("router.rejected"),
            spills: tel.counter("router.spills"),
            window_shrinks: tel.counter("router.window_shrinks"),
        }
    }

    pub(crate) fn record_admitted(&mut self, class: usize, replica: usize, spilled: bool) {
        self.classes[class].admitted += 1;
        self.dispatched[replica] += 1;
        self.admitted.inc();
        if spilled {
            self.spills.inc();
        }
    }

    pub(crate) fn record_shed(&mut self, class: usize) {
        self.classes[class].shed += 1;
        self.shed.inc();
    }

    pub(crate) fn record_rejected(&mut self, class: usize) {
        self.classes[class].rejected += 1;
        self.rejected.inc();
    }

    pub(crate) fn record_window_shrink(&mut self) {
        self.window_shrinks.inc();
    }

    pub(crate) fn record_outcome(&mut self, class: usize, outcome: Outcome) {
        let acc = &mut self.classes[class];
        match outcome {
            Outcome::Served {
                latency_secs,
                missed,
            } => {
                acc.served += 1;
                acc.latency_secs.push(latency_secs);
                if missed {
                    acc.deadline_misses += 1;
                }
            }
            Outcome::Failed => acc.failed += 1,
            Outcome::Expired => acc.expired += 1,
            Outcome::Abandoned => acc.abandoned += 1,
        }
    }

    pub(crate) fn snapshot(
        &self,
        policy: &str,
        class_names: &[String],
        replicas: Vec<ReplicaRollup>,
    ) -> RouterStats {
        let classes: Vec<ClassStats> = class_names
            .iter()
            .zip(&self.classes)
            .map(|(name, acc)| ClassStats {
                class: name.clone(),
                admitted: acc.admitted,
                served: acc.served,
                failed: acc.failed,
                expired: acc.expired,
                abandoned: acc.abandoned,
                shed: acc.shed,
                rejected: acc.rejected,
                deadline_misses: acc.deadline_misses,
                latency: LatencySummary::from_samples_secs(&acc.latency_secs),
            })
            .collect();
        let all_samples: Vec<f64> = self
            .classes
            .iter()
            .flat_map(|acc| acc.latency_secs.iter().copied())
            .collect();
        let admitted: u64 = classes.iter().map(|c| c.admitted).sum();
        let (shed, rejected) = (self.shed.value(), self.rejected.value());
        RouterStats {
            policy: policy.to_string(),
            submitted: admitted + shed + rejected,
            admitted,
            shed,
            rejected,
            spills: self.spills.value(),
            window_shrinks: self.window_shrinks.value(),
            deadline_misses: classes.iter().map(|c| c.deadline_misses).sum(),
            latency: LatencySummary::from_samples_secs(&all_samples),
            classes,
            replicas,
        }
    }

    pub(crate) fn dispatched(&self, replica: usize) -> u64 {
        self.dispatched[replica]
    }
}

/// Elapsed seconds between two instants, `0` if `end` precedes `start`
/// (instants are monotone, but clones of them can be compared across
/// threads in either order).
pub(crate) fn secs_between(start: Instant, end: Instant) -> f64 {
    end.checked_duration_since(start)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_rolls_up_per_class_and_aggregate() {
        let tel = Telemetry::enabled();
        let mut c = RouterCollector::new(2, 2, &tel);
        c.record_admitted(0, 0, false);
        c.record_admitted(0, 1, true);
        c.record_admitted(1, 0, false);
        c.record_shed(1);
        c.record_rejected(1);
        c.record_window_shrink();
        c.record_outcome(
            0,
            Outcome::Served {
                latency_secs: 0.010,
                missed: false,
            },
        );
        c.record_outcome(
            0,
            Outcome::Served {
                latency_secs: 0.030,
                missed: true,
            },
        );
        c.record_outcome(1, Outcome::Failed);

        let names = vec!["interactive".to_string(), "background".to_string()];
        let stats = c.snapshot("least_loaded", &names, Vec::new());
        assert_eq!(stats.policy, "least_loaded");
        assert_eq!(stats.admitted, 3);
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.submitted, 5);
        assert_eq!(stats.spills, 1);
        assert_eq!(stats.window_shrinks, 1);
        assert_eq!(stats.served(), 2);
        assert_eq!(stats.deadline_misses, 1);
        assert!((stats.deadline_miss_rate() - 0.5).abs() < 1e-12);
        assert_eq!(stats.latency.count, 2);

        let interactive = stats.class("interactive").unwrap();
        assert_eq!(interactive.served, 2);
        assert_eq!(interactive.deadline_misses, 1);
        let background = stats.class("background").unwrap();
        assert_eq!(background.failed, 1);
        assert_eq!(background.shed, 1);
        assert_eq!(background.rejected, 1);
        assert!(stats.class("nope").is_none());

        assert_eq!(c.dispatched(0), 2);
        assert_eq!(c.dispatched(1), 1);

        // The aggregates are the same counters a metrics snapshot reads.
        let snap = tel.snapshot();
        assert_eq!(snap.counter("router.admitted"), 3);
        assert_eq!(snap.counter("router.shed"), 1);
        assert_eq!(snap.counter("router.rejected"), 1);
        assert_eq!(snap.counter("router.spills"), 1);
        assert_eq!(snap.counter("router.window_shrinks"), 1);
    }

    #[test]
    fn cache_stats_hit_rate_and_merge() {
        let a = CacheStats { hits: 3, misses: 1 };
        let b = CacheStats { hits: 1, misses: 3 };
        assert!((a.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let merged = a.merged(&b);
        assert_eq!(merged, CacheStats { hits: 4, misses: 4 });
        assert!((merged.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn secs_between_is_never_negative() {
        let now = Instant::now();
        let later = now + std::time::Duration::from_millis(5);
        assert!(secs_between(now, later) > 0.0);
        assert_eq!(secs_between(later, now), 0.0);
    }

    #[test]
    fn router_stats_serialize() {
        let stats = RouterCollector::new(1, 1, &Telemetry::disabled()).snapshot(
            "round_robin",
            &["only".to_string()],
            vec![ReplicaRollup {
                replica: 0,
                dispatched: 0,
                server: ServerStats::default(),
                cache: CacheStats::default(),
            }],
        );
        let json = serde_json::to_string(&stats).unwrap();
        let back: RouterStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
    }
}
