//! Dispatch policies and the consistent-hash ring behind kernel affinity.

use pf_core::{PfError, ROUTER_POLICIES};
use serde::{Deserialize, Serialize};

/// How the router picks a replica for an admitted request.
///
/// Every policy also defines a *fallback order*: if the chosen replica's
/// queue is full, the router spills down that order before rejecting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Policy {
    /// Rotate over replicas in admission order. Oblivious to both load and
    /// locality — the baseline the other policies are judged against.
    RoundRobin,
    /// Pick the replica with the shortest queue (ties to the lowest
    /// index). Best instantaneous load spreading, oblivious to locality.
    LeastLoaded,
    /// Consistent-hash the request's affinity key (its model) onto the
    /// replica ring, so one model's requests land on one replica and its
    /// prepared-kernel spectra stay resident there. Fallbacks follow the
    /// ring, so a spilled model still concentrates on few replicas.
    KernelAffinity,
}

impl Policy {
    /// Parses a policy name from [`ROUTER_POLICIES`].
    ///
    /// # Errors
    ///
    /// Returns [`PfError::InvalidScenario`] for an unknown name.
    pub fn from_name(name: &str) -> Result<Self, PfError> {
        match name {
            "round_robin" => Ok(Policy::RoundRobin),
            "least_loaded" => Ok(Policy::LeastLoaded),
            "kernel_affinity" => Ok(Policy::KernelAffinity),
            other => Err(PfError::invalid_scenario(format!(
                "unknown router policy `{other}` (known: {})",
                ROUTER_POLICIES.join(", ")
            ))),
        }
    }

    /// The scenario-facing name (inverse of [`Policy::from_name`]).
    pub fn name(&self) -> &'static str {
        match self {
            Policy::RoundRobin => "round_robin",
            Policy::LeastLoaded => "least_loaded",
            Policy::KernelAffinity => "kernel_affinity",
        }
    }
}

/// SplitMix64: a cheap, well-mixed 64-bit hash (also used as the seed
/// expander in `pf-nn`'s weight init). Deterministic across runs and
/// platforms — ring placement is part of the reproducible experiment.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A consistent-hash ring over replica indices with virtual nodes, so that
/// (a) model keys spread evenly even when there are few replicas, and
/// (b) the fallback order for a key is the ring's natural successor walk.
#[derive(Debug, Clone)]
pub(crate) struct HashRing {
    /// `(point, replica)` sorted by point.
    points: Vec<(u64, usize)>,
    replicas: usize,
}

/// Virtual nodes per replica. 64 keeps the largest/smallest arc ratio low
/// without making ring walks measurable.
const VNODES: usize = 64;

/// Salt separating the vnode point space from the key hash space — without
/// it, replica 0's points are `splitmix64(0..VNODES)`, exactly the hashes
/// of small integer keys, and every small model key homes to replica 0.
const RING_SALT: u64 = 0xA076_1D64_78BD_642F;

impl HashRing {
    pub(crate) fn new(replicas: usize) -> Self {
        assert!(replicas >= 1, "ring needs at least one replica");
        let mut points: Vec<(u64, usize)> = (0..replicas)
            .flat_map(|r| {
                (0..VNODES).map(move |v| (splitmix64(RING_SALT ^ ((r as u64) << 32 | v as u64)), r))
            })
            .collect();
        points.sort_unstable();
        Self { points, replicas }
    }

    /// The distinct replicas a key maps to, in ring-successor order: the
    /// first entry is the key's home, the rest the spill order.
    pub(crate) fn order(&self, key: u64) -> Vec<usize> {
        let start = self
            .points
            .partition_point(|&(point, _)| point < splitmix64(key));
        let mut order = Vec::with_capacity(self.replicas);
        let mut seen = vec![false; self.replicas];
        for i in 0..self.points.len() {
            let (_, replica) = self.points[(start + i) % self.points.len()];
            if !seen[replica] {
                seen[replica] = true;
                order.push(replica);
                if order.len() == self.replicas {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names_round_trip() {
        for name in ROUTER_POLICIES {
            assert_eq!(Policy::from_name(name).unwrap().name(), name);
        }
        assert!(Policy::from_name("random").is_err());
    }

    #[test]
    fn ring_order_is_deterministic_and_complete() {
        let ring = HashRing::new(4);
        for key in 0..100u64 {
            let order = ring.order(key);
            assert_eq!(order.len(), 4, "every replica appears once");
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3]);
            assert_eq!(order, HashRing::new(4).order(key), "deterministic");
        }
    }

    #[test]
    fn ring_spreads_keys_over_replicas() {
        let ring = HashRing::new(3);
        let mut counts = [0usize; 3];
        for key in 0..3000u64 {
            counts[ring.order(key)[0]] += 1;
        }
        for &count in &counts {
            // Perfect balance would be 1000; virtual nodes keep the skew
            // well under 2x.
            assert!(
                (400..=1800).contains(&count),
                "home-replica distribution too skewed: {counts:?}"
            );
        }
    }

    #[test]
    fn same_key_same_home() {
        let ring = HashRing::new(5);
        let home = ring.order(77)[0];
        for _ in 0..10 {
            assert_eq!(ring.order(77)[0], home);
        }
        // Different keys do not all share one home.
        let homes: std::collections::BTreeSet<usize> = (0..50).map(|k| ring.order(k)[0]).collect();
        assert!(homes.len() > 1);
    }
}
