//! Per-replica health: EWMA scoring and a deterministic circuit breaker.
//!
//! Every dispatch attempt's outcome feeds a per-replica health
//! record: an EWMA of observed latency and error rate, a consecutive-
//! failure counter, and a closed → open → half-open breaker. The breaker
//! is driven entirely by *counts* (consecutive failures, skipped
//! submissions, probe successes), never by wall-clock time, so a seeded
//! chaos run trips, quarantines and re-admits replicas at exactly the same
//! points every run.
//!
//! State machine:
//!
//! - **Closed** — healthy; requests flow normally. `trip_after`
//!   consecutive failures opens the breaker.
//! - **Open** — quarantined; the dispatch order skips the replica. After
//!   `probe_after` submissions have passed it over, it moves to half-open.
//! - **HalfOpen** — re-admission probing; up to `probes_to_close`
//!   concurrent requests are routed to the replica (ahead of the policy
//!   order, so probes actually happen on a lightly-loaded tier). One probe
//!   failure reopens; `probes_to_close` consecutive successes close.

use pf_core::PfError;

/// Knobs of the router's self-healing layer: health scoring, circuit
/// breaking, retry/backoff and the payload integrity screen. Not part of
/// the scenario schema — scenarios opt into fault *injection* via
/// `[faults]`; the healing side runs with these defaults unless configured
/// in code.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// EWMA smoothing factor in `(0, 1]` for per-replica latency and
    /// error-rate scores (1 = latest sample only).
    pub ewma_alpha: f64,
    /// Consecutive dispatch failures that trip a closed breaker open.
    pub trip_after: u32,
    /// Submissions that must pass over an open (quarantined) replica
    /// before it is offered a half-open re-admission probe.
    pub probe_after: u64,
    /// Consecutive successful probes required to close a half-open
    /// breaker; also the cap on concurrent half-open probe traffic.
    pub probes_to_close: u32,
    /// Retry attempts per request submitted via
    /// [`Router::submit_with_retry`] (0 disables retries).
    ///
    /// [`Router::submit_with_retry`]: crate::Router::submit_with_retry
    pub max_retries: u32,
    /// Base of the jittered exponential retry backoff, microseconds.
    pub backoff_base_us: u64,
    /// Upper bound on one backoff sleep, microseconds.
    pub backoff_cap_us: u64,
    /// Whether served payloads are run through the replica engine's
    /// integrity screen (`ReplicaEngine::screen`); failures are discarded,
    /// counted as integrity rejects, and retried like engine errors.
    pub integrity_screen: bool,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            ewma_alpha: 0.2,
            trip_after: 3,
            probe_after: 8,
            probes_to_close: 2,
            max_retries: 2,
            backoff_base_us: 200,
            backoff_cap_us: 5_000,
            integrity_screen: true,
        }
    }
}

impl HealthConfig {
    /// Checks the configuration's internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`PfError::InvalidScenario`] describing the first problem.
    pub fn validate(&self) -> Result<(), PfError> {
        if !(self.ewma_alpha > 0.0 && self.ewma_alpha <= 1.0) {
            return Err(PfError::invalid_scenario(
                "health ewma_alpha must lie in (0, 1]",
            ));
        }
        if self.trip_after == 0 {
            return Err(PfError::invalid_scenario(
                "health trip_after must be at least 1",
            ));
        }
        if self.probes_to_close == 0 {
            return Err(PfError::invalid_scenario(
                "health probes_to_close must be at least 1",
            ));
        }
        if self.backoff_cap_us < self.backoff_base_us {
            return Err(PfError::invalid_scenario(
                "health backoff_cap_us must be at least backoff_base_us",
            ));
        }
        Ok(())
    }
}

/// Circuit-breaker state of one replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow normally.
    Closed,
    /// Quarantined: skipped by dispatch until a probe is due.
    Open,
    /// Probing for re-admission: bounded probe traffic only.
    HalfOpen,
}

impl BreakerState {
    /// Stable lower-snake name, used in serialized reports.
    pub fn name(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// What one health-state update did, so the collector can bump the
/// tier-level counters exactly once per event.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct HealthEvents {
    /// Breaker state changes made by this update.
    pub(crate) transitions: u64,
    /// Transitions into `Open` (quarantine events) among them.
    pub(crate) quarantines: u64,
}

/// Mutable health record of one replica (lives inside the router's stats
/// mutex alongside the rest of the accounting).
#[derive(Debug)]
pub(crate) struct ReplicaHealth {
    pub(crate) state: BreakerState,
    consecutive_failures: u32,
    skipped_while_open: u64,
    probe_successes: u32,
    probes_outstanding: u32,
    ewma_latency_ms: f64,
    ewma_error_rate: f64,
    ewma_primed: bool,
    transitions: u64,
    quarantines: u64,
}

impl ReplicaHealth {
    pub(crate) fn new() -> Self {
        Self {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            skipped_while_open: 0,
            probe_successes: 0,
            probes_outstanding: 0,
            ewma_latency_ms: 0.0,
            ewma_error_rate: 0.0,
            ewma_primed: false,
            transitions: 0,
            quarantines: 0,
        }
    }

    fn ewma(&mut self, latency_ms: Option<f64>, error: f64, alpha: f64) {
        if !self.ewma_primed {
            self.ewma_latency_ms = latency_ms.unwrap_or(0.0);
            self.ewma_error_rate = error;
            self.ewma_primed = true;
            return;
        }
        if let Some(latency_ms) = latency_ms {
            self.ewma_latency_ms = alpha * latency_ms + (1.0 - alpha) * self.ewma_latency_ms;
        }
        self.ewma_error_rate = alpha * error + (1.0 - alpha) * self.ewma_error_rate;
    }

    /// A dispatch attempt on this replica succeeded.
    pub(crate) fn on_success(&mut self, cfg: &HealthConfig, latency_ms: f64) -> HealthEvents {
        self.ewma(Some(latency_ms), 0.0, cfg.ewma_alpha);
        self.consecutive_failures = 0;
        self.probes_outstanding = self.probes_outstanding.saturating_sub(1);
        let mut events = HealthEvents::default();
        if self.state == BreakerState::HalfOpen {
            self.probe_successes += 1;
            if self.probe_successes >= cfg.probes_to_close {
                self.state = BreakerState::Closed;
                self.transitions += 1;
                events.transitions += 1;
            }
        }
        events
    }

    /// A dispatch attempt on this replica failed (engine error or
    /// integrity reject).
    pub(crate) fn on_failure(&mut self, cfg: &HealthConfig) -> HealthEvents {
        self.ewma(None, 1.0, cfg.ewma_alpha);
        self.consecutive_failures += 1;
        self.probes_outstanding = self.probes_outstanding.saturating_sub(1);
        let mut events = HealthEvents::default();
        let trip = match self.state {
            BreakerState::Closed => self.consecutive_failures >= cfg.trip_after,
            // One failed probe is enough evidence: back to quarantine.
            BreakerState::HalfOpen => true,
            BreakerState::Open => false,
        };
        if trip {
            self.state = BreakerState::Open;
            self.skipped_while_open = 0;
            self.probe_successes = 0;
            self.transitions += 1;
            self.quarantines += 1;
            events.transitions += 1;
            events.quarantines += 1;
        }
        events
    }

    /// A request admitted to this replica resolved without the replica ever
    /// serving or failing it (expired in queue, abandoned by the caller):
    /// release any probe slot it held, with no health signal either way.
    pub(crate) fn on_unjudged(&mut self) {
        self.probes_outstanding = self.probes_outstanding.saturating_sub(1);
    }

    /// Gate for one submission: may this replica receive the next request?
    /// Mutates the open-state skip counter and performs the open →
    /// half-open transition when a probe is due. Returns the admission
    /// class for ordering (see [`gate_order`]).
    pub(crate) fn gate(&mut self, cfg: &HealthConfig) -> (Admission, HealthEvents) {
        let mut events = HealthEvents::default();
        let admission = match self.state {
            BreakerState::Closed => Admission::Normal,
            BreakerState::Open => {
                if self.skipped_while_open >= cfg.probe_after {
                    self.state = BreakerState::HalfOpen;
                    self.probe_successes = 0;
                    self.probes_outstanding = 0;
                    self.transitions += 1;
                    events.transitions += 1;
                    Admission::Probe
                } else {
                    self.skipped_while_open += 1;
                    Admission::Quarantined
                }
            }
            BreakerState::HalfOpen => {
                if self.probes_outstanding < cfg.probes_to_close {
                    Admission::Probe
                } else {
                    Admission::Quarantined
                }
            }
        };
        (admission, events)
    }

    /// An admission landed on this replica while it was half-open: one
    /// probe slot is now in flight.
    pub(crate) fn note_admission(&mut self) {
        if self.state == BreakerState::HalfOpen {
            self.probes_outstanding += 1;
        }
    }

    pub(crate) fn report(&self) -> ReplicaHealthReport {
        ReplicaHealthReport {
            state: self.state.name().to_string(),
            ewma_latency_ms: self.ewma_latency_ms,
            ewma_error_rate: self.ewma_error_rate,
            consecutive_failures: self.consecutive_failures,
            transitions: self.transitions,
            quarantines: self.quarantines,
        }
    }
}

/// How the breaker gate classified a replica for one submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Admission {
    /// Closed breaker: dispatch in policy order.
    Normal,
    /// Half-open probe slot: dispatch *ahead* of the policy order so
    /// re-admission probes actually receive traffic.
    Probe,
    /// Open breaker (or half-open with all probe slots busy): skip.
    Quarantined,
}

/// Health snapshot of one replica, embedded in
/// [`ReplicaRollup`](crate::ReplicaRollup).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ReplicaHealthReport {
    /// Breaker state name: `"closed"`, `"open"` or `"half_open"`.
    pub state: String,
    /// EWMA of served-request latency observed by the router, ms.
    pub ewma_latency_ms: f64,
    /// EWMA error rate over dispatch attempts, in `[0, 1]`.
    pub ewma_error_rate: f64,
    /// Current consecutive-failure streak.
    pub consecutive_failures: u32,
    /// Total breaker state changes.
    pub transitions: u64,
    /// Transitions into `open` (quarantine events).
    pub quarantines: u64,
}

impl Default for ReplicaHealthReport {
    fn default() -> Self {
        ReplicaHealth::new().report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HealthConfig {
        HealthConfig {
            trip_after: 2,
            probe_after: 3,
            probes_to_close: 2,
            ..HealthConfig::default()
        }
    }

    #[test]
    fn breaker_walks_closed_open_half_open_closed() {
        let cfg = cfg();
        let mut h = ReplicaHealth::new();
        assert_eq!(h.state, BreakerState::Closed);

        // Two consecutive failures trip it open.
        assert_eq!(h.on_failure(&cfg), HealthEvents::default());
        let events = h.on_failure(&cfg);
        assert_eq!(events.transitions, 1);
        assert_eq!(events.quarantines, 1);
        assert_eq!(h.state, BreakerState::Open);

        // Quarantined until probe_after submissions have passed it over.
        for _ in 0..3 {
            let (admission, events) = h.gate(&cfg);
            assert_eq!(admission, Admission::Quarantined);
            assert_eq!(events, HealthEvents::default());
        }
        let (admission, events) = h.gate(&cfg);
        assert_eq!(admission, Admission::Probe);
        assert_eq!(events.transitions, 1);
        assert_eq!(h.state, BreakerState::HalfOpen);

        // Probe traffic is capped at probes_to_close in flight.
        h.note_admission();
        h.note_admission();
        assert_eq!(h.gate(&cfg).0, Admission::Quarantined);

        // Two probe successes close it.
        assert_eq!(h.on_success(&cfg, 1.0), HealthEvents::default());
        assert_eq!(h.gate(&cfg).0, Admission::Probe);
        let events = h.on_success(&cfg, 1.0);
        assert_eq!(events.transitions, 1);
        assert_eq!(events.quarantines, 0);
        assert_eq!(h.state, BreakerState::Closed);
        assert_eq!(h.report().transitions, 3);
        assert_eq!(h.report().quarantines, 1);
    }

    #[test]
    fn a_failed_probe_reopens() {
        let cfg = cfg();
        let mut h = ReplicaHealth::new();
        h.on_failure(&cfg);
        h.on_failure(&cfg);
        for _ in 0..4 {
            h.gate(&cfg);
        }
        assert_eq!(h.state, BreakerState::HalfOpen);
        let events = h.on_failure(&cfg);
        assert_eq!(events.quarantines, 1);
        assert_eq!(h.state, BreakerState::Open);
    }

    #[test]
    fn successes_reset_the_failure_streak() {
        let cfg = cfg();
        let mut h = ReplicaHealth::new();
        h.on_failure(&cfg);
        h.on_success(&cfg, 2.0);
        h.on_failure(&cfg);
        assert_eq!(h.state, BreakerState::Closed, "streak broken by success");
        let report = h.report();
        assert_eq!(report.consecutive_failures, 1);
        assert!(report.ewma_error_rate > 0.0 && report.ewma_error_rate < 1.0);
    }

    #[test]
    fn ewma_tracks_latency() {
        let cfg = HealthConfig {
            ewma_alpha: 0.5,
            ..HealthConfig::default()
        };
        let mut h = ReplicaHealth::new();
        h.on_success(&cfg, 10.0);
        assert!((h.report().ewma_latency_ms - 10.0).abs() < 1e-12);
        h.on_success(&cfg, 20.0);
        assert!((h.report().ewma_latency_ms - 15.0).abs() < 1e-12);
    }

    #[test]
    fn config_is_validated() {
        assert!(HealthConfig::default().validate().is_ok());
        for break_it in [
            (|c: &mut HealthConfig| c.ewma_alpha = 0.0) as fn(&mut HealthConfig),
            |c| c.ewma_alpha = 1.5,
            |c| c.trip_after = 0,
            |c| c.probes_to_close = 0,
            |c| c.backoff_cap_us = c.backoff_base_us - 1,
        ] {
            let mut c = HealthConfig::default();
            break_it(&mut c);
            assert!(c.validate().is_err());
        }
    }
}
