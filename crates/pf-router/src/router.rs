//! The front tier: admission, priority shedding, policy dispatch,
//! graceful degradation, drain.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use pf_core::{PfError, ServingSpec};
use pf_serve::{InferenceEngine, RequestTrace, ServeConfig, Server, Ticket};
use pf_telemetry::Telemetry;

use crate::health::HealthConfig;
use crate::policy::{HashRing, Policy};
use crate::stats::{secs_between, Outcome, ReplicaRollup, RouterCollector, RouterStats};
use crate::CacheStats;

/// An [`InferenceEngine`] that can additionally report how often requests
/// found their model's session (and prepared-kernel cache) already
/// resident. The router rolls these counters into
/// [`RouterStats`] so dispatch policies are compared on
/// *measured* cache locality. Engines without a model cache (mocks, single
/// -model sessions) keep the default all-zero counters.
pub trait ReplicaEngine: InferenceEngine {
    /// Model-session cache counters since construction.
    fn cache_stats(&self) -> CacheStats {
        CacheStats::default()
    }

    /// Cheap integrity screen over a served payload: `false` means the
    /// response is corrupt (e.g. contains NaN/Inf) and must not reach the
    /// caller. The router runs this on every successful result when
    /// [`HealthConfig::integrity_screen`] is on, discards failures, and
    /// counts them as integrity rejects. The default accepts everything.
    ///
    /// [`HealthConfig::integrity_screen`]: crate::HealthConfig::integrity_screen
    fn screen(&self, response: &Self::Response) -> bool {
        let _ = response;
        true
    }
}

impl<E: ReplicaEngine + ?Sized> ReplicaEngine for Arc<E> {
    fn cache_stats(&self) -> CacheStats {
        (**self).cache_stats()
    }

    fn screen(&self, response: &Self::Response) -> bool {
        (**self).screen(response)
    }
}

/// Router configuration: the per-replica server config plus the routing
/// tier's own knobs. The serde-facing twin is the `[serving.router]`
/// scenario section ([`pf_core::RouterSpec`]); [`RouterConfig::from_spec`]
/// converts a full `[serving]` spec. The spec's `models`/`replica_cache`
/// fields configure the *engines* (how many model variants exist and how
/// many stay resident per replica) and are consumed by the engine factory,
/// not by the router core.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterConfig {
    /// Configuration every replica's `pf-serve` server runs with.
    pub serve: ServeConfig,
    /// Number of replica shards, at least 1.
    pub replicas: usize,
    /// Dispatch policy.
    pub policy: Policy,
    /// Priority class names, highest first. Requests carry their class as
    /// an index into this list; only the last class is ever shed.
    pub priority_classes: Vec<String>,
    /// The p99 end-to-end latency target (milliseconds) for the highest
    /// class — recorded in reports and asserted by smoke gates, not
    /// enforced per-request by the router.
    pub slo_p99_ms: f64,
    /// Queue-pressure fraction at which the lowest class is shed.
    pub shed_at: f64,
    /// Queue-pressure fraction at which batch-formation windows shrink to
    /// zero. Restored (with hysteresis, at half this pressure) when load
    /// subsides.
    pub shrink_at: f64,
    /// Self-healing knobs: per-replica health scoring, circuit breaker,
    /// retry/backoff, integrity screen. Defaults apply unless configured in
    /// code (the scenario schema configures fault *injection*, not
    /// healing).
    pub health: HealthConfig,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self::from_spec(&ServingSpec {
            router: Some(pf_core::RouterSpec::default()),
            ..ServingSpec::default()
        })
        .expect("default spec is valid")
    }
}

impl RouterConfig {
    /// Builds the config from a validated `[serving]` scenario section; a
    /// missing `[serving.router]` sub-section means the defaults (two
    /// replicas, kernel affinity).
    ///
    /// # Errors
    ///
    /// Returns [`PfError::InvalidScenario`] if the spec does not validate.
    pub fn from_spec(spec: &ServingSpec) -> Result<Self, PfError> {
        spec.validate()?;
        let router = spec.router.clone().unwrap_or_default();
        Ok(Self {
            serve: ServeConfig::from_spec(spec),
            replicas: router.replicas,
            policy: Policy::from_name(&router.policy)?,
            priority_classes: router.priority_classes,
            slo_p99_ms: router.slo_p99_ms,
            shed_at: router.shed_at,
            shrink_at: router.shrink_at,
            health: HealthConfig::default(),
        })
    }

    /// Checks the configuration's internal consistency (delegating the
    /// replica-server part to [`ServeConfig::validate`]).
    ///
    /// # Errors
    ///
    /// Returns [`PfError::InvalidScenario`] describing the first problem.
    pub fn validate(&self) -> Result<(), PfError> {
        let mut spec = self.serve.to_spec();
        spec.router = Some(pf_core::RouterSpec {
            replicas: self.replicas,
            policy: self.policy.name().to_string(),
            priority_classes: self.priority_classes.clone(),
            slo_p99_ms: self.slo_p99_ms,
            shed_at: self.shed_at,
            shrink_at: self.shrink_at,
            ..pf_core::RouterSpec::default()
        });
        spec.validate()?;
        self.health.validate()
    }

    /// Index of the lowest (only sheddable) priority class.
    pub fn lowest_class(&self) -> usize {
        self.priority_classes.len() - 1
    }
}

/// One request offered to the router.
#[derive(Debug, Clone)]
pub struct RouterRequest<Rq> {
    /// The payload handed to the replica engine.
    pub payload: Rq,
    /// Priority class, as an index into the configured `priority_classes`
    /// (0 = highest).
    pub class: usize,
    /// Affinity key for the `kernel_affinity` policy — the request's model
    /// identity. Ignored by the other policies.
    pub affinity: u64,
    /// Optional absolute deadline, enforced by the replica server (expired
    /// requests are never dispatched) and accounted as a deadline miss if
    /// the request completes late.
    pub deadline: Option<Instant>,
}

impl<Rq> RouterRequest<Rq> {
    /// A highest-priority request with no affinity and no deadline.
    pub fn new(payload: Rq) -> Self {
        Self {
            payload,
            class: 0,
            affinity: 0,
            deadline: None,
        }
    }

    /// Sets the priority class index.
    pub fn with_class(mut self, class: usize) -> Self {
        self.class = class;
        self
    }

    /// Sets the affinity (model) key.
    pub fn with_affinity(mut self, affinity: u64) -> Self {
        self.affinity = affinity;
        self
    }

    /// Sets an absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// A boxed payload factory, so retries can resubmit without putting a
/// `Clone` bound on every ticket (only [`Router::submit_with_retry`]
/// requires `E::Request: Clone`).
type Replay<Rq> = Box<dyn Fn() -> Rq + Send>;

/// Handle to one routed request. Waiting on the ticket records the
/// request's outcome (latency, deadline miss, failure kind) in the
/// router's stats — and, for requests submitted via
/// [`Router::submit_with_retry`], transparently retries failed attempts on
/// another replica with deadline-aware jittered exponential backoff. A
/// ticket dropped without waiting leaves its completion unrecorded at
/// router level (the replica's own [`pf_serve::ServerStats`] still counts
/// it).
///
/// The ticket borrows its router: all tickets must be resolved (or
/// dropped) before [`Router::drain`] can consume the router.
pub struct RouterTicket<'r, E: ReplicaEngine + 'static> {
    router: &'r Router<E>,
    inner: Option<Ticket<E::Response>>,
    class: usize,
    replica: usize,
    affinity: u64,
    admitted: Instant,
    deadline: Option<Instant>,
    replay: Option<Replay<E::Request>>,
    attempts: u32,
    backoff_seed: u64,
}

impl<E: ReplicaEngine + 'static> std::fmt::Debug for RouterTicket<'_, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouterTicket")
            .field("seq", &self.seq())
            .field("class", &self.class)
            .field("replica", &self.replica)
            .field("attempts", &self.attempts)
            .field("retryable", &self.replay.is_some())
            .finish_non_exhaustive()
    }
}

/// What one dispatch attempt's resolution decided.
enum Resolution<R> {
    /// The request is finished (outcome recorded).
    Done(Result<R, PfError>),
    /// The attempt failed but was resubmitted; wait again.
    Retry,
}

impl<'r, E: ReplicaEngine + 'static> RouterTicket<'r, E> {
    /// The replica index the request is currently dispatched to (after a
    /// retry, the replica of the live attempt).
    pub fn replica(&self) -> usize {
        self.replica
    }

    /// The request's priority class index.
    pub fn class(&self) -> usize {
        self.class
    }

    /// How many times the request has been retried so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// The replica-server sequence number of the live attempt.
    pub fn seq(&self) -> u64 {
        self.inner.as_ref().map_or(0, Ticket::seq)
    }

    /// Relinquishes the router-side machinery — retries, health scoring
    /// and per-class outcome recording — and returns the raw
    /// replica-server [`Ticket`]. The detached handle no longer borrows
    /// the router, so it can outlive it and be resolved after
    /// [`Router::drain`]; the dispatch stays counted, but its outcome is
    /// no longer attributed to a class.
    pub fn detach(mut self) -> Ticket<E::Response> {
        self.inner.take().expect("ticket waited once")
    }

    /// Blocks until the request completes (retrying failed attempts if
    /// submitted via [`Router::submit_with_retry`]); records the outcome.
    pub fn wait(mut self) -> Result<E::Response, PfError> {
        loop {
            let ticket = self.inner.take().expect("ticket waited once");
            let (result, completed) = ticket.wait_timed();
            match self.resolve(result, Some(completed), None) {
                Resolution::Done(result) => return result,
                Resolution::Retry => {}
            }
        }
    }

    /// Waits up to `timeout` in total (across retries); on timeout the
    /// live attempt is abandoned (its queue slot reclaimed, counted as
    /// `abandoned`).
    ///
    /// # Errors
    ///
    /// The request's own error, or [`PfError::DeadlineExceeded`] on
    /// timeout.
    pub fn wait_deadline(mut self, timeout: Duration) -> Result<E::Response, PfError> {
        let budget = Instant::now() + timeout;
        loop {
            let ticket = self.inner.take().expect("ticket waited once");
            let remaining = budget.saturating_duration_since(Instant::now());
            let (result, completed) = ticket.wait_deadline_timed(remaining);
            match self.resolve(result, completed, Some(budget)) {
                Resolution::Done(result) => return result,
                Resolution::Retry => {}
            }
        }
    }

    /// Records one attempt's result against replica health and either
    /// finishes the request (recording its class outcome) or retries it.
    fn resolve(
        &mut self,
        result: Result<E::Response, PfError>,
        completed: Option<Instant>,
        budget: Option<Instant>,
    ) -> Resolution<E::Response> {
        let health = &self.router.config.health;
        match (result, completed) {
            (Ok(response), Some(completed)) => {
                if health.integrity_screen
                    && !self.router.replicas[self.replica]
                        .engine()
                        .screen(&response)
                {
                    let mut collector = self.router.collector.lock();
                    collector.record_integrity_reject(self.replica);
                    collector.record_attempt_failure(self.replica);
                    drop(collector);
                    let err = PfError::IntegrityViolation {
                        replica: self.replica,
                    };
                    return self.fail_or_retry(err, budget);
                }
                let latency_secs = secs_between(self.admitted, completed);
                let mut collector = self.router.collector.lock();
                collector.record_attempt_success(self.replica, latency_secs * 1e3);
                collector.record_outcome(
                    self.class,
                    Outcome::Served {
                        latency_secs,
                        missed: self.deadline.is_some_and(|d| completed > d),
                    },
                );
                Resolution::Done(Ok(response))
            }
            (Ok(_), None) => unreachable!("a served result always has a completion instant"),
            (Err(e @ PfError::DeadlineExceeded { stage: "queued" }), _) => {
                let mut collector = self.router.collector.lock();
                collector.release_probe(self.replica);
                collector.record_outcome(self.class, Outcome::Expired);
                Resolution::Done(Err(e))
            }
            (Err(e @ PfError::DeadlineExceeded { .. }), _) => {
                let mut collector = self.router.collector.lock();
                collector.release_probe(self.replica);
                collector.record_outcome(self.class, Outcome::Abandoned);
                Resolution::Done(Err(e))
            }
            (Err(e), _) => {
                self.router
                    .collector
                    .lock()
                    .record_attempt_failure(self.replica);
                self.fail_or_retry(e, budget)
            }
        }
    }

    /// After a failed attempt (health already updated): retry if the
    /// request is retryable and time allows, else record the final failure.
    fn fail_or_retry(&mut self, err: PfError, budget: Option<Instant>) -> Resolution<E::Response> {
        if self.try_retry(budget) {
            return Resolution::Retry;
        }
        self.router
            .collector
            .lock()
            .record_outcome(self.class, Outcome::Failed);
        Resolution::Done(Err(err))
    }

    /// Attempts to resubmit the request: backs off (jittered exponential,
    /// abandoned if the deadline or wait budget would pass), then offers
    /// the payload to the breaker-gated dispatch order, preferring any
    /// replica other than the one that just failed. Returns `false` if the
    /// request is not retryable, out of attempts, out of time, or no
    /// replica admits it.
    fn try_retry(&mut self, budget: Option<Instant>) -> bool {
        let health = &self.router.config.health;
        let Some(replay) = &self.replay else {
            return false;
        };
        if self.attempts >= health.max_retries {
            return false;
        }
        let exp = health
            .backoff_base_us
            .saturating_mul(1u64 << self.attempts.min(20));
        let jitter = 0.5
            + 0.5 * unit_from_bits(splitmix64(self.backoff_seed ^ u64::from(self.attempts + 1)));
        let delay = Duration::from_micros((exp.min(health.backoff_cap_us) as f64 * jitter) as u64);
        let now = Instant::now();
        // Deadline-aware: a retry that cannot complete in time is pointless.
        if [self.deadline, budget]
            .into_iter()
            .flatten()
            .any(|limit| now + delay >= limit)
        {
            return false;
        }
        std::thread::sleep(delay);

        let mut order = self.router.gated_order(self.affinity);
        if order.len() > 1 {
            order.retain(|&r| r != self.replica);
        }
        let mut payload = replay();
        for &replica in &order {
            match self.router.replicas[replica].try_submit_traced(payload, self.deadline, None) {
                Ok(ticket) => {
                    self.router.collector.lock().record_retry(replica);
                    self.attempts += 1;
                    self.replica = replica;
                    self.inner = Some(ticket);
                    return true;
                }
                Err((returned, PfError::Overloaded { .. })) => payload = returned,
                Err(_) => return false,
            }
        }
        false
    }
}

/// SplitMix64, for deterministic backoff jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps 64 random bits onto `[0, 1)`.
fn unit_from_bits(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// A multi-replica SLO-aware serving tier.
///
/// The router owns `replicas` independent [`pf_serve::Server`]s and
/// dispatches [`RouterRequest`]s to them by [`Policy`]. Under overload it
/// degrades in stages rather than failing abruptly:
///
/// 1. **shrink** — at `shrink_at` queue pressure, every replica's
///    batch-formation window drops to zero (dispatch immediately, smaller
///    batches, lower latency); restored with hysteresis at half that
///    pressure;
/// 2. **shed** — at `shed_at` pressure, requests of the *lowest* priority
///    class are refused with [`PfError::Shed`] (a policy decision, counted
///    separately from capacity rejections); higher classes are never shed;
/// 3. **spill** — an admitted request whose chosen replica is full falls
///    back down the policy's order before the router gives up;
/// 4. **reject** — only when every replica's queue is full does the
///    request fail with [`PfError::Overloaded`].
///
/// Queue pressure is total queued requests over total queue capacity
/// (`replicas x queue_depth`), in `[0, 1]`.
pub struct Router<E: ReplicaEngine + 'static> {
    config: RouterConfig,
    replicas: Vec<Server<E>>,
    ring: HashRing,
    next_rr: AtomicUsize,
    shrunk: AtomicBool,
    collector: Arc<Mutex<RouterCollector>>,
    telemetry: Telemetry,
}

impl<E: ReplicaEngine + 'static> std::fmt::Debug for Router<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("config", &self.config)
            .field("replicas", &self.replicas.len())
            .field("queue_pressure", &self.queue_pressure())
            .finish_non_exhaustive()
    }
}

impl<E: ReplicaEngine + 'static> Router<E> {
    /// Validates `config` and builds the replica shards, calling `factory`
    /// once per replica index (the factory builds the engine — session,
    /// model cache, warmup — for that shard).
    ///
    /// # Errors
    ///
    /// Returns [`PfError::InvalidScenario`] for an inconsistent config, or
    /// whatever the factory fails with.
    pub fn new(
        config: RouterConfig,
        factory: impl FnMut(usize) -> Result<E, PfError>,
    ) -> Result<Self, PfError> {
        Self::with_telemetry(config, Telemetry::disabled(), factory)
    }

    /// Like [`Router::new`] with an observability handle. The request id
    /// is minted here, at router admission, and carried down through the
    /// chosen replica so one routed request yields one span tree
    /// (admission → queue → batch → per-stage execution). Each replica's
    /// `serve.*` counters are scoped under a `replicaN.` prefix; spans and
    /// stage slots stay shared (one trace, one stage breakdown).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Router::new`].
    pub fn with_telemetry(
        config: RouterConfig,
        telemetry: Telemetry,
        mut factory: impl FnMut(usize) -> Result<E, PfError>,
    ) -> Result<Self, PfError> {
        config.validate()?;
        let replicas = (0..config.replicas)
            .map(|i| {
                Server::with_telemetry(
                    factory(i)?,
                    config.serve,
                    telemetry.with_prefix(&format!("replica{i}")),
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        let collector = Arc::new(Mutex::new(RouterCollector::new(
            config.priority_classes.len(),
            config.replicas,
            config.health,
            &telemetry,
        )));
        Ok(Self {
            ring: HashRing::new(config.replicas),
            next_rr: AtomicUsize::new(0),
            shrunk: AtomicBool::new(false),
            collector,
            config,
            replicas,
            telemetry,
        })
    }

    /// The observability handle (disabled unless the router was built with
    /// [`Router::with_telemetry`]).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The configuration the router runs with.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// Number of replica shards.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Total queued requests over total queue capacity, in `[0, 1]`.
    pub fn queue_pressure(&self) -> f64 {
        let queued: usize = self.replicas.iter().map(Server::queue_len).sum();
        let capacity = self.replicas.len() * self.config.serve.queue_depth;
        queued as f64 / capacity as f64
    }

    /// Whether the degradation ladder currently has the batch windows
    /// shrunk to zero.
    pub fn windows_shrunk(&self) -> bool {
        self.shrunk.load(Ordering::Relaxed)
    }

    /// Offers one request to the router.
    ///
    /// # Errors
    ///
    /// * [`PfError::InvalidScenario`] — `class` out of range (a caller
    ///   bug; not counted as traffic);
    /// * [`PfError::Shed`] — lowest-class request refused under overload;
    /// * [`PfError::Overloaded`] — every replica's queue is full.
    pub fn submit(
        &self,
        request: RouterRequest<E::Request>,
    ) -> Result<RouterTicket<'_, E>, PfError> {
        self.submit_inner(request, None)
    }

    /// Like [`Router::submit`], but the request is marked **idempotent**:
    /// if an attempt fails (engine error, injected fault, integrity
    /// rejection), waiting on the ticket transparently resubmits the
    /// payload — preferring a different replica — with deadline-aware
    /// jittered exponential backoff, up to
    /// [`crate::HealthConfig::max_retries`] times. Only side-effect-free
    /// requests should use this path; the router cannot tell whether a
    /// failed attempt partially executed.
    ///
    /// # Errors
    ///
    /// Same admission-time conditions as [`Router::submit`] (retry only
    /// covers failures *after* admission).
    pub fn submit_with_retry(
        &self,
        request: RouterRequest<E::Request>,
    ) -> Result<RouterTicket<'_, E>, PfError>
    where
        E::Request: Clone,
    {
        let template = request.payload.clone();
        self.submit_inner(request, Some(Box::new(move || template.clone())))
    }

    fn submit_inner(
        &self,
        request: RouterRequest<E::Request>,
        replay: Option<Replay<E::Request>>,
    ) -> Result<RouterTicket<'_, E>, PfError> {
        let RouterRequest {
            payload,
            class,
            affinity,
            deadline,
        } = request;
        if class >= self.config.priority_classes.len() {
            return Err(PfError::invalid_scenario(format!(
                "priority class index {class} out of range ({} classes configured)",
                self.config.priority_classes.len()
            )));
        }

        let pressure = self.queue_pressure();
        self.degrade(pressure);

        // Stage 2: shed the lowest class — and only the lowest class —
        // once pressure crosses `shed_at`. With a single configured class
        // there is no lower-priority traffic to sacrifice, so shedding is
        // disabled and admission control alone applies.
        if pressure >= self.config.shed_at
            && self.config.priority_classes.len() > 1
            && class == self.config.lowest_class()
        {
            self.collector.lock().record_shed(class);
            return Err(PfError::Shed {
                class: self.config.priority_classes[class].clone(),
            });
        }

        // Stages 3-4: dispatch in breaker-gated policy order, spilling
        // past full replicas; reject only when every queue is full.
        let order = self.gated_order(affinity);
        let admitted = Instant::now();
        // Mint the request's tracing identity here — router admission is
        // where the request enters the serving stack. The admission span
        // covers policy dispatch and any spill attempts; the request's
        // root span (recorded by the replica at fulfilment) hangs from it.
        let (trace, _admit_span) = if self.telemetry.is_enabled() {
            let req = self.telemetry.next_request_id();
            let span = self.telemetry.span_with_parent("admit", "router", 0, req);
            let trace = RequestTrace {
                req,
                parent: span.id(),
                admitted,
            };
            (Some(trace), Some(span))
        } else {
            (None, None)
        };
        let mut payload = payload;
        let mut last_overload = None;
        for (attempt, &replica) in order.iter().enumerate() {
            match self.replicas[replica].try_submit_traced(payload, deadline, trace) {
                Ok(ticket) => {
                    self.collector
                        .lock()
                        .record_admitted(class, replica, attempt > 0);
                    let backoff_seed = ticket.seq();
                    return Ok(RouterTicket {
                        router: self,
                        inner: Some(ticket),
                        class,
                        replica,
                        affinity,
                        admitted,
                        deadline,
                        replay,
                        attempts: 0,
                        backoff_seed,
                    });
                }
                Err((returned, e @ PfError::Overloaded { .. })) => {
                    payload = returned;
                    last_overload = Some(e);
                }
                Err((_, e)) => return Err(e),
            }
        }
        self.collector.lock().record_rejected(class);
        Err(last_overload.expect("dispatch order is never empty"))
    }

    /// Applies degradation stage 1 (window shrink/restore with
    /// hysteresis).
    fn degrade(&self, pressure: f64) {
        if pressure >= self.config.shrink_at {
            if !self.shrunk.swap(true, Ordering::Relaxed) {
                self.collector.lock().record_window_shrink();
                for server in &self.replicas {
                    server.set_batch_window(Duration::ZERO);
                }
            }
        } else if pressure < self.config.shrink_at * 0.5
            && self.shrunk.swap(false, Ordering::Relaxed)
        {
            for server in &self.replicas {
                server.set_batch_window(self.config.serve.batch_timeout);
            }
        }
    }

    /// The replica indices to try, best first, per the configured policy.
    fn dispatch_order(&self, affinity: u64) -> Vec<usize> {
        let n = self.replicas.len();
        match self.config.policy {
            Policy::RoundRobin => {
                let start = self.next_rr.fetch_add(1, Ordering::Relaxed) % n;
                (0..n).map(|i| (start + i) % n).collect()
            }
            Policy::LeastLoaded => {
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by_key(|&i| (self.replicas[i].queue_len(), i));
                order
            }
            Policy::KernelAffinity => self.ring.order(affinity),
        }
    }

    /// The policy's dispatch order filtered through each replica's circuit
    /// breaker: quarantined (open) replicas are skipped, half-open
    /// replicas admit a limited number of probe requests (moved to the
    /// front so probes are not starved by healthy replicas). If the
    /// breakers would leave nothing to dispatch to, the raw policy order
    /// is used instead — total unavailability degrades to normal spill
    /// behaviour rather than an artificial reject.
    fn gated_order(&self, affinity: u64) -> Vec<usize> {
        self.collector
            .lock()
            .gate_order(self.dispatch_order(affinity))
    }

    /// A mid-flight snapshot of the router's accounting.
    pub fn stats(&self) -> RouterStats {
        let collector = self.collector.lock();
        let rollups = self
            .replicas
            .iter()
            .enumerate()
            .map(|(i, server)| ReplicaRollup {
                replica: i,
                dispatched: collector.dispatched(i),
                health: collector.health_report(i),
                server: server.stats(),
                cache: server.engine().cache_stats(),
            })
            .collect();
        collector.snapshot(
            self.config.policy.name(),
            &self.config.priority_classes,
            rollups,
        )
    }

    /// Drains every replica (stopping admissions, resolving every
    /// outstanding ticket) and returns the final stats.
    ///
    /// # Errors
    ///
    /// [`PfError::WorkerPanicked`] if any replica's worker thread
    /// panicked (every replica is still joined first, so no thread is
    /// leaked).
    pub fn drain(self) -> Result<RouterStats, PfError> {
        let mut rollups = Vec::with_capacity(self.replicas.len());
        let mut panicked = 0usize;
        for (i, server) in self.replicas.into_iter().enumerate() {
            let cache = server.engine().cache_stats();
            match server.shutdown() {
                Ok(server_stats) => rollups.push((i, server_stats, cache)),
                Err(PfError::WorkerPanicked { workers }) => panicked += workers,
                Err(e) => return Err(e),
            }
        }
        if panicked > 0 {
            return Err(PfError::WorkerPanicked { workers: panicked });
        }
        let collector = self.collector.lock();
        let rollups = rollups
            .into_iter()
            .map(|(i, server, cache)| ReplicaRollup {
                replica: i,
                dispatched: collector.dispatched(i),
                health: collector.health_report(i),
                server,
                cache,
            })
            .collect();
        Ok(collector.snapshot(
            self.config.policy.name(),
            &self.config.priority_classes,
            rollups,
        ))
    }
}
