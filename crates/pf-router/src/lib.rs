//! Multi-replica SLO-aware serving tier above `pf-serve`.
//!
//! The multi-socket scale-out lesson applies to the photonic accelerator's
//! serving layer too: placement and per-shard locality dominate behavior.
//! Here a "shard" is one `pf-serve` server with its own session and warmed
//! prepared-kernel cache, and routing policy directly determines how often
//! a request's model finds its spectra already resident — so the router
//! measures everything and lets the recorded p99 judge the policy.
//!
//! * [`Router`] — owns N replica [`pf_serve::Server`]s built by an engine
//!   factory; [`Router::submit`] admits a [`RouterRequest`] (payload +
//!   priority class + affinity key + optional deadline) and returns a
//!   [`RouterTicket`];
//! * [`Policy`] — `round_robin`, `least_loaded`, or `kernel_affinity`
//!   (consistent hashing of the model key onto the replica ring);
//! * graceful degradation under overload, in stages: shrink the
//!   batch-formation windows, shed the lowest priority class
//!   ([`pf_core::PfError::Shed`]), spill past full replicas, and reject
//!   ([`pf_core::PfError::Overloaded`]) only when every queue is full;
//! * [`RouterStats`] — per-class and per-replica rollups (p50/p95/p99,
//!   deadline-miss rate, shed/reject/spill counts, model-cache hit rates
//!   via [`ReplicaEngine::cache_stats`]);
//! * [`Router::drain`] resolves every outstanding ticket deterministically
//!   before returning the final stats;
//! * self-healing: per-replica health scoring (EWMA latency + error
//!   rate), a closed → open → half-open circuit breaker with quarantine
//!   and re-admission probes ([`HealthConfig`], [`BreakerState`]),
//!   deadline-aware retry with jittered exponential backoff for
//!   idempotent requests ([`Router::submit_with_retry`]), and a NaN/Inf
//!   integrity screen ([`ReplicaEngine::screen`]).
//!
//! The crate is payload-generic (it inherits `pf-serve`'s engine
//! abstraction); the `photofourier` facade supplies the model-shard engine
//! that makes affinity routing measurable and re-exports this crate as
//! `photofourier::route`.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod health;
pub mod policy;
pub mod router;
pub mod stats;

pub use health::{BreakerState, HealthConfig, ReplicaHealthReport};
pub use policy::Policy;
pub use router::{ReplicaEngine, Router, RouterConfig, RouterRequest, RouterTicket};
pub use stats::{CacheStats, ClassStats, ReplicaRollup, RouterStats};
