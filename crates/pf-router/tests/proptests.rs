//! Property tests of the self-healing tier: whatever failure budget a
//! replica burns, [`Router::submit_with_retry`] must leave no
//! `RouterTicket` unresolved, keep the admission invariant intact, and —
//! as long as one replica stays healthy — serve every request.

use std::sync::atomic::{AtomicI64, Ordering};
use std::time::Duration;

use pf_core::PfError;
use pf_router::{HealthConfig, Policy, ReplicaEngine, Router, RouterConfig, RouterRequest};
use pf_serve::{InferenceEngine, ServeConfig};
use proptest::prelude::*;

/// Replica 0 fails its first `budget` requests with a typed fault; every
/// other replica (and replica 0 afterwards) echoes the doubled input.
#[derive(Debug)]
struct FlakyShard {
    replica: usize,
    budget: AtomicI64,
}

impl InferenceEngine for FlakyShard {
    type Request = f64;
    type Response = (usize, f64);

    fn infer_batch(&self, inputs: &[f64], _seqs: &[u64]) -> Result<Vec<(usize, f64)>, PfError> {
        if self.replica == 0
            && self
                .budget
                .fetch_sub(inputs.len() as i64, Ordering::Relaxed)
                > 0
        {
            return Err(PfError::FaultInjected {
                kind: "transient_error",
            });
        }
        Ok(inputs.iter().map(|&v| (self.replica, v * 2.0)).collect())
    }
}

impl ReplicaEngine for FlakyShard {}

fn config(replicas: usize) -> RouterConfig {
    RouterConfig {
        serve: ServeConfig {
            max_batch: 1,
            batch_timeout: Duration::ZERO,
            queue_depth: 64,
            workers: 1,
            scaling_hint: None,
        },
        replicas,
        policy: Policy::RoundRobin,
        priority_classes: vec!["only".to_string()],
        slo_p99_ms: 1_000.0,
        shed_at: 0.95,
        shrink_at: 0.9,
        health: HealthConfig {
            // Tiny backoff keeps the property runs fast; the retry logic
            // under test is cadence-independent.
            backoff_base_us: 10,
            backoff_cap_us: 50,
            ..HealthConfig::default()
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn retries_resolve_every_ticket_and_keep_the_invariant(
        replicas in 2usize..=3,
        requests in 1usize..=20,
        budget in 0i64..=12,
    ) {
        let router = Router::new(config(replicas), |replica| {
            Ok(FlakyShard {
                replica,
                budget: AtomicI64::new(budget),
            })
        }).unwrap();

        let tickets: Vec<_> = (0..requests)
            .map(|i| {
                router
                    .submit_with_retry(RouterRequest::new(i as f64))
                    .unwrap()
            })
            .collect();

        // One replica always stays healthy, so with retries enabled every
        // ticket must come back served — and doubled.
        for (i, ticket) in tickets.into_iter().enumerate() {
            let (_, doubled) = ticket.wait().unwrap();
            prop_assert_eq!(doubled, i as f64 * 2.0);
        }

        let stats = router.drain().unwrap();
        prop_assert_eq!(stats.submitted, stats.admitted + stats.shed + stats.rejected);
        prop_assert_eq!(stats.admitted, requests as u64);
        prop_assert_eq!(stats.served(), requests as u64);
        // Retries count dispatch work, never admissions.
        let dispatched: u64 = stats.replicas.iter().map(|r| r.dispatched).sum();
        prop_assert_eq!(dispatched, stats.admitted + stats.retries);
        if budget > 0 {
            // Replica 0 failed at least its first dispatch, so at least
            // one retry must have happened for everything to be served.
            prop_assert!(stats.retries >= 1);
        }
    }
}
