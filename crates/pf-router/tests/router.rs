//! Behavioural tests of the routing tier against mock replica engines,
//! mirroring `pf-serve`'s gated-engine style: a gate blocks replicas
//! inside `infer_batch` so the tests control queue pressure exactly when
//! asserting the degradation ladder (shrink → shed → spill → reject).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use pf_core::PfError;
use pf_router::{
    CacheStats, HealthConfig, Policy, ReplicaEngine, Router, RouterConfig, RouterRequest,
};
use pf_serve::{InferenceEngine, ServeConfig};

/// Echo engine that remembers which replica it is and which affinity keys
/// it served; emulates a model-session LRU of size 1 for cache stats.
#[derive(Debug)]
struct ShardEngine {
    replica: usize,
    resident: Mutex<Option<u64>>,
    hits: AtomicU64,
    misses: AtomicU64,
    served: AtomicU64,
}

impl ShardEngine {
    fn new(replica: usize) -> Self {
        Self {
            replica,
            resident: Mutex::new(None),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            served: AtomicU64::new(0),
        }
    }
}

impl InferenceEngine for ShardEngine {
    /// `(model key, value)`.
    type Request = (u64, f64);
    type Response = (usize, f64);

    fn infer_batch(
        &self,
        inputs: &[(u64, f64)],
        _seqs: &[u64],
    ) -> Result<Vec<(usize, f64)>, PfError> {
        let mut out = Vec::with_capacity(inputs.len());
        for &(model, value) in inputs {
            let mut resident = self.resident.lock();
            if *resident == Some(model) {
                self.hits.fetch_add(1, Ordering::Relaxed);
            } else {
                self.misses.fetch_add(1, Ordering::Relaxed);
                *resident = Some(model);
            }
            self.served.fetch_add(1, Ordering::Relaxed);
            out.push((self.replica, value * 2.0));
        }
        Ok(out)
    }
}

impl ReplicaEngine for ShardEngine {
    fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// Gate shared by every replica of a router: each `infer_batch` call
/// announces itself, then blocks until granted.
#[derive(Debug)]
struct Gate {
    entered: Mutex<mpsc::Sender<(usize, usize)>>,
    permits: Mutex<usize>,
    released: Condvar,
}

impl Gate {
    fn new() -> (Arc<Self>, mpsc::Receiver<(usize, usize)>) {
        let (tx, rx) = mpsc::channel();
        (
            Arc::new(Self {
                entered: Mutex::new(tx),
                permits: Mutex::new(0),
                released: Condvar::new(),
            }),
            rx,
        )
    }

    fn grant(&self, permits: usize) {
        *self.permits.lock() += permits;
        self.released.notify_all();
    }

    fn open(&self) {
        *self.permits.lock() += usize::MAX / 2;
        self.released.notify_all();
    }
}

/// Replica engine gated on the shared [`Gate`].
#[derive(Debug)]
struct GatedShard {
    replica: usize,
    gate: Arc<Gate>,
}

impl InferenceEngine for GatedShard {
    type Request = (u64, f64);
    type Response = (usize, f64);

    fn infer_batch(
        &self,
        inputs: &[(u64, f64)],
        _seqs: &[u64],
    ) -> Result<Vec<(usize, f64)>, PfError> {
        self.gate
            .entered
            .lock()
            .send((self.replica, inputs.len()))
            .expect("test alive");
        let mut permits = self.gate.permits.lock();
        while *permits == 0 {
            permits = self.gate.released.wait(permits);
        }
        *permits -= 1;
        drop(permits);
        Ok(inputs.iter().map(|&(_, v)| (self.replica, v)).collect())
    }
}

impl ReplicaEngine for GatedShard {}

fn config(policy: Policy, replicas: usize, queue_depth: usize) -> RouterConfig {
    RouterConfig {
        serve: ServeConfig {
            max_batch: 1,
            batch_timeout: Duration::ZERO,
            queue_depth,
            workers: 1,
            scaling_hint: None,
        },
        replicas,
        policy,
        priority_classes: vec![
            "interactive".to_string(),
            "standard".to_string(),
            "background".to_string(),
        ],
        slo_p99_ms: 250.0,
        shed_at: 0.75,
        shrink_at: 0.5,
        health: HealthConfig::default(),
    }
}

#[test]
fn round_trip_over_replicas_and_drain_resolves_everything() {
    let router = Router::new(config(Policy::RoundRobin, 3, 64), |i| {
        Ok(ShardEngine::new(i))
    })
    .unwrap();
    let tickets: Vec<_> = (0..30)
        .map(|i| {
            router
                .submit(RouterRequest::new((i % 4, i as f64)).with_affinity(i % 4))
                .unwrap()
        })
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let (_, doubled) = ticket.wait().unwrap();
        assert_eq!(doubled, i as f64 * 2.0);
    }
    let stats = router.drain().unwrap();
    assert_eq!(stats.admitted, 30);
    assert_eq!(stats.served(), 30);
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.deadline_misses, 0);
    // Round-robin touched every replica.
    for rollup in &stats.replicas {
        assert!(rollup.dispatched > 0, "replica {} idle", rollup.replica);
        assert_eq!(rollup.server.served, rollup.dispatched);
    }
    let total: u64 = stats.replicas.iter().map(|r| r.dispatched).sum();
    assert_eq!(total, 30);
}

#[test]
fn kernel_affinity_beats_round_robin_on_cache_hits() {
    // 4 models, 2 replicas, per-replica LRU of ONE resident model: affinity
    // pins each model to its home replica (2 models per replica alternate
    // but requests for one model arrive consecutively per replica), while
    // round-robin interleaves models across replicas and thrashes.
    let run = |policy: Policy| {
        let mut cfg = config(policy, 2, 256);
        cfg.serve.max_batch = 1;
        let router = Router::new(cfg, |i| Ok(ShardEngine::new(i))).unwrap();
        // One model's requests arrive in runs, like a real trace with
        // temporal locality.
        let mut tickets = Vec::new();
        for round in 0..16u64 {
            let model = round % 4;
            for v in 0..8u64 {
                tickets.push(
                    router
                        .submit(RouterRequest::new((model, v as f64)).with_affinity(model))
                        .unwrap(),
                );
            }
        }
        for t in tickets {
            t.wait().unwrap();
        }
        router.drain().unwrap()
    };

    let affinity = run(Policy::KernelAffinity);
    let round_robin = run(Policy::RoundRobin);
    assert!(
        affinity.cache().hit_rate() > round_robin.cache().hit_rate(),
        "affinity {:?} should beat round-robin {:?}",
        affinity.cache(),
        round_robin.cache()
    );
    // Affinity keeps each model on one replica, so within-run requests hit.
    assert!(affinity.cache().hit_rate() > 0.8, "{:?}", affinity.cache());
}

#[test]
fn least_loaded_prefers_the_empty_replica() {
    let (gate, entered) = Gate::new();
    let router = Router::new(config(Policy::LeastLoaded, 2, 8), |i| {
        Ok(GatedShard {
            replica: i,
            gate: Arc::clone(&gate),
        })
    })
    .unwrap();

    // Empty queues tie to replica 0; its worker takes the request off the
    // queue (we see it enter the engine) and blocks.
    let t0 = router.submit(RouterRequest::new((0, 0.0))).unwrap();
    assert_eq!(entered.recv().unwrap().0, 0);
    // Queues are both empty again (the request is in flight, not queued),
    // so the tie again picks replica 0 — this one stays queued behind the
    // blocked worker...
    let q1 = router.submit(RouterRequest::new((0, 1.0))).unwrap();
    // ...which makes replica 1 the less-loaded choice for the next one.
    let q2 = router.submit(RouterRequest::new((0, 2.0))).unwrap();
    assert_eq!(
        entered.recv().unwrap().0,
        1,
        "least loaded avoided the backlog"
    );

    gate.open();
    t0.wait().unwrap();
    q1.wait().unwrap();
    q2.wait().unwrap();
    let stats = router.drain().unwrap();
    assert_eq!(stats.replicas[0].dispatched, 2);
    assert_eq!(stats.replicas[1].dispatched, 1);
}

#[test]
fn affinity_spills_past_a_full_home_replica() {
    let (gate, entered) = Gate::new();
    // Single class: shedding never applies; queue_depth 2 per replica.
    let mut cfg = config(Policy::KernelAffinity, 2, 2);
    cfg.priority_classes = vec!["only".to_string()];
    let router = Router::new(cfg, |i| {
        Ok(GatedShard {
            replica: i,
            gate: Arc::clone(&gate),
        })
    })
    .unwrap();

    // Every request carries the same model key, so they all target the
    // key's home replica until it fills.
    let t1 = router
        .submit(RouterRequest::new((7, 1.0)).with_affinity(7))
        .unwrap();
    let (home, _) = entered.recv().unwrap();
    let t2 = router
        .submit(RouterRequest::new((7, 2.0)).with_affinity(7))
        .unwrap();
    let t3 = router
        .submit(RouterRequest::new((7, 3.0)).with_affinity(7))
        .unwrap();
    // Home's queue is now full (2/2): the next admission spills to the
    // ring successor instead of rejecting.
    let t4 = router
        .submit(RouterRequest::new((7, 4.0)).with_affinity(7))
        .unwrap();
    let (spill_target, _) = entered.recv().unwrap();
    assert_ne!(spill_target, home, "spilled off the full home replica");
    assert_eq!(t4.replica(), spill_target);

    gate.open();
    for t in [t1, t2, t3, t4] {
        t.wait().unwrap();
    }
    let stats = router.drain().unwrap();
    assert_eq!(stats.spills, 1);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.replicas[home].dispatched, 3);
    assert_eq!(stats.replicas[spill_target].dispatched, 1);
}

#[test]
fn shed_hits_only_the_lowest_class_and_spill_precedes_reject() {
    let (gate, entered) = Gate::new();
    // 2 replicas x queue_depth 4 = capacity 8; shed_at 0.75 -> 6 queued.
    let router = Router::new(config(Policy::RoundRobin, 2, 4), |i| {
        Ok(GatedShard {
            replica: i,
            gate: Arc::clone(&gate),
        })
    })
    .unwrap();

    // Block both workers so every further submission stays queued.
    let blockers: Vec<_> = (0..2)
        .map(|i| {
            router
                .submit(RouterRequest::new((0, i as f64)).with_class(2))
                .unwrap()
        })
        .collect();
    entered.recv().unwrap();
    entered.recv().unwrap();

    // Fill to exactly shed_at pressure (6 of 8 slots): all classes admitted
    // below the threshold.
    let queued: Vec<_> = (0..6)
        .map(|i| {
            router
                .submit(RouterRequest::new((0, 10.0 + i as f64)).with_class(i % 3))
                .unwrap()
        })
        .collect();
    assert!(router.queue_pressure() >= 0.75);
    assert!(router.windows_shrunk(), "stage 1 engaged before stage 2");

    // Stage 2: lowest class is shed; higher classes are still admitted
    // (spilling past any full replica — stage 3).
    match router.submit(RouterRequest::new((0, 90.0)).with_class(2)) {
        Err(PfError::Shed { class }) => assert_eq!(class, "background"),
        other => panic!("expected Shed, got {other:?}"),
    }
    let high1 = router
        .submit(RouterRequest::new((0, 91.0)).with_class(0))
        .unwrap();
    let high2 = router
        .submit(RouterRequest::new((0, 92.0)).with_class(1))
        .unwrap();

    // Stage 4: every queue is now full (8/8); even the highest class is
    // rejected — with Overloaded, not Shed.
    assert_eq!(router.queue_pressure(), 1.0);
    match router.submit(RouterRequest::new((0, 93.0)).with_class(0)) {
        Err(PfError::Overloaded { .. }) => {}
        other => panic!("expected Overloaded, got {other:?}"),
    }

    gate.open();
    for t in blockers {
        t.wait().unwrap();
    }
    for t in queued {
        t.wait().unwrap();
    }
    high1.wait().unwrap();
    high2.wait().unwrap();

    let stats = router.drain().unwrap();
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.window_shrinks, 1);
    assert_eq!(
        stats.submitted,
        stats.admitted + stats.shed + stats.rejected
    );
    let background = stats.class("background").unwrap();
    assert_eq!(background.shed, 1, "only the lowest class was shed");
    assert_eq!(stats.class("interactive").unwrap().shed, 0);
    assert_eq!(stats.class("standard").unwrap().shed, 0);
}

#[test]
fn expired_requests_are_never_dispatched_and_counted_per_class() {
    let (gate, entered) = Gate::new();
    let router = Router::new(config(Policy::RoundRobin, 2, 16), |i| {
        Ok(GatedShard {
            replica: i,
            gate: Arc::clone(&gate),
        })
    })
    .unwrap();

    // Block both workers, then queue a request whose deadline has passed.
    let blockers: Vec<_> = (0..2)
        .map(|i| router.submit(RouterRequest::new((0, i as f64))).unwrap())
        .collect();
    entered.recv().unwrap();
    entered.recv().unwrap();
    let doomed = router
        .submit(
            RouterRequest::new((0, 99.0))
                .with_class(1)
                .with_deadline(Instant::now() - Duration::from_millis(1)),
        )
        .unwrap();

    gate.open();
    match doomed.wait() {
        Err(PfError::DeadlineExceeded { stage }) => assert_eq!(stage, "queued"),
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    for t in blockers {
        t.wait().unwrap();
    }
    let stats = router.drain().unwrap();
    assert_eq!(stats.class("standard").unwrap().expired, 1);
    assert_eq!(stats.served(), 2);
    assert_eq!(
        stats.deadline_misses, 0,
        "an expired request never completes"
    );
    // The replica servers agree: one expired, none failed.
    let expired: u64 = stats.replicas.iter().map(|r| r.server.expired).sum();
    let failed: u64 = stats.replicas.iter().map(|r| r.server.failed).sum();
    assert_eq!(expired, 1);
    assert_eq!(failed, 0);
}

#[test]
fn abandoned_tickets_and_deadline_misses_are_distinct() {
    let (gate, entered) = Gate::new();
    let router = Router::new(config(Policy::RoundRobin, 1, 16), |i| {
        Ok(GatedShard {
            replica: i,
            gate: Arc::clone(&gate),
        })
    })
    .unwrap();

    // Occupy the worker.
    let blocker = router.submit(RouterRequest::new((0, 0.0))).unwrap();
    entered.recv().unwrap();

    // Abandon a queued request from the caller side.
    let abandoned = router.submit(RouterRequest::new((0, 1.0))).unwrap();
    match abandoned.wait_deadline(Duration::from_millis(5)) {
        Err(PfError::DeadlineExceeded { stage }) => assert_eq!(stage, "abandoned"),
        other => panic!("expected abandoned, got {other:?}"),
    }

    // Release the blocker; the worker then resolves the abandoned ticket
    // at its next batch formation and idles.
    gate.grant(1);
    blocker.wait().unwrap();

    // A request whose deadline passes while it is *dispatched* (in the
    // engine) completes late: a deadline miss, not an expiry. The worker
    // picks it up immediately (we see it enter), then we hold the gate
    // past its deadline.
    let late = router
        .submit(
            RouterRequest::new((0, 2.0)).with_deadline(Instant::now() + Duration::from_millis(10)),
        )
        .unwrap();
    entered.recv().unwrap();
    std::thread::sleep(Duration::from_millis(25));
    gate.open();
    late.wait().unwrap();

    let stats = router.drain().unwrap();
    let interactive = stats.class("interactive").unwrap();
    assert_eq!(interactive.abandoned, 1);
    assert_eq!(interactive.served, 2);
    assert_eq!(stats.deadline_misses, 1, "late completion is a miss");
    assert!(stats.deadline_miss_rate() > 0.0);
}

#[test]
fn windows_restore_when_pressure_subsides() {
    let (gate, entered) = Gate::new();
    let router = Router::new(config(Policy::RoundRobin, 1, 8), |i| {
        Ok(GatedShard {
            replica: i,
            gate: Arc::clone(&gate),
        })
    })
    .unwrap();

    let blocker = router.submit(RouterRequest::new((0, 0.0))).unwrap();
    entered.recv().unwrap();
    // Pressure is sampled at submit time, before the request enqueues: the
    // fifth queued submission observes 4/8 = shrink_at and engages stage 1.
    let queued: Vec<_> = (0..5)
        .map(|i| {
            router
                .submit(RouterRequest::new((0, 1.0 + i as f64)))
                .unwrap()
        })
        .collect();
    assert!(router.windows_shrunk());

    gate.open();
    blocker.wait().unwrap();
    for t in queued {
        t.wait().unwrap();
    }
    // Queues are empty now; the next submission restores the windows
    // (hysteresis threshold is pressure < shrink_at / 2).
    let last = router.submit(RouterRequest::new((0, 9.0))).unwrap();
    assert!(!router.windows_shrunk());
    last.wait().unwrap();
    router.drain().unwrap();
}

#[test]
fn invalid_class_is_an_error_not_traffic() {
    let router = Router::new(config(Policy::RoundRobin, 1, 8), |i| {
        Ok(ShardEngine::new(i))
    })
    .unwrap();
    match router.submit(RouterRequest::new((0, 0.0)).with_class(9)) {
        Err(PfError::InvalidScenario { reason }) => assert!(reason.contains("class")),
        other => panic!("expected InvalidScenario, got {other:?}"),
    }
    let stats = router.drain().unwrap();
    assert_eq!(stats.submitted, 0);
}

#[test]
fn config_from_spec_and_validation() {
    use pf_core::{RouterSpec, ServingSpec};

    let spec = ServingSpec {
        router: Some(RouterSpec {
            replicas: 3,
            policy: "least_loaded".to_string(),
            ..RouterSpec::default()
        }),
        ..ServingSpec::default()
    };
    let config = RouterConfig::from_spec(&spec).unwrap();
    assert_eq!(config.replicas, 3);
    assert_eq!(config.policy, Policy::LeastLoaded);
    assert_eq!(config.lowest_class(), 2);
    config.validate().unwrap();

    // No router section: defaults.
    let config = RouterConfig::from_spec(&ServingSpec::default()).unwrap();
    assert_eq!(config.replicas, RouterSpec::default().replicas);
    assert_eq!(config.policy, Policy::KernelAffinity);

    // Invalid nested spec is rejected.
    let bad = RouterConfig {
        shrink_at: 0.9,
        shed_at: 0.2,
        ..RouterConfig::default()
    };
    assert!(bad.validate().is_err());
}
