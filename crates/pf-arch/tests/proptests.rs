//! Property-based tests for the architecture simulator: scheduling and
//! energy accounting invariants that must hold for any layer shape and any
//! sane configuration.

use pf_arch::config::ArchConfig;
use pf_arch::dataflow::LayerSchedule;
use pf_arch::power::layer_energy;
use pf_arch::simulator::Simulator;
use pf_nn::layers::ConvLayerSpec;
use pf_nn::models::NetworkSpec;
use proptest::prelude::*;

fn layer_strategy() -> impl Strategy<Value = ConvLayerSpec> {
    (
        1usize..256, // in channels
        1usize..256, // out channels
        0usize..3,   // kernel selector -> 1, 3, 5
        1usize..3,   // stride
        prop::sample::select(vec![7usize, 14, 28, 32, 56, 112, 224]),
    )
        .prop_filter_map("kernel must fit", |(in_c, out_c, k_sel, stride, size)| {
            let kernel = [1usize, 3, 5][k_sel];
            ConvLayerSpec::new("prop", in_c, out_c, kernel, stride, size, true).ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn schedule_invariants(spec in layer_strategy()) {
        let config = ArchConfig::photofourier_cg();
        let schedule = LayerSchedule::new(&spec, &config).unwrap();
        // Cycle count covers at least one pass per filter group and channel.
        prop_assert!(schedule.total_cycles > 0);
        prop_assert!(schedule.filter_groups >= 1);
        prop_assert!(schedule.channel_iterations >= 1);
        prop_assert!(schedule.effective_filters == 2 * spec.out_channels);
        // Utilisation is a fraction.
        let util = schedule.waveguide_utilization(config.tech.input_waveguides);
        prop_assert!(util > 0.0 && util <= 1.0);
        // ADC conversions scale with outputs and channel groups.
        prop_assert!(schedule.adc_conversions >= spec.output_activations());
        // Traffic is non-zero.
        prop_assert!(schedule.input_sram_bytes > 0);
        prop_assert!(schedule.weight_sram_bytes > 0);
        prop_assert!(schedule.dram_bytes == 2 * spec.weight_count());
    }

    #[test]
    fn energy_is_positive_and_scales_with_work(spec in layer_strategy()) {
        let config = ArchConfig::photofourier_cg();
        let schedule = LayerSchedule::new(&spec, &config).unwrap();
        let energy = layer_energy(&spec, &schedule, &config);
        prop_assert!(energy.total_pj() > 0.0);
        for share in energy.shares() {
            prop_assert!((0.0..=1.0).contains(&share));
        }
        // Doubling the output channels (same everything else) cannot reduce
        // total energy.
        if let Ok(bigger_spec) = ConvLayerSpec::new(
            "prop2",
            spec.in_channels,
            spec.out_channels * 2,
            spec.kernel,
            spec.stride,
            spec.input_size,
            spec.padded,
        ) {
            let bigger_schedule = LayerSchedule::new(&bigger_spec, &config).unwrap();
            let bigger_energy = layer_energy(&bigger_spec, &bigger_schedule, &config);
            prop_assert!(bigger_energy.total_pj() >= energy.total_pj());
        }
    }

    #[test]
    fn ng_never_loses_to_cg(spec in layer_strategy()) {
        let network = NetworkSpec {
            name: "prop-net".to_string(),
            input_size: spec.input_size,
            num_classes: 10,
            conv_layers: vec![spec],
        };
        let cg = Simulator::new(ArchConfig::photofourier_cg()).unwrap();
        let ng = Simulator::new(ArchConfig::photofourier_ng()).unwrap();
        let p_cg = cg.evaluate_network(&network).unwrap();
        let p_ng = ng.evaluate_network(&network).unwrap();
        prop_assert!(p_ng.fps >= p_cg.fps);
        prop_assert!(p_ng.energy_j <= p_cg.energy_j * 1.001);
        prop_assert!(p_ng.edp <= p_cg.edp * 1.001);
    }

    #[test]
    fn network_metrics_are_consistent(spec in layer_strategy()) {
        let network = NetworkSpec {
            name: "prop-net".to_string(),
            input_size: spec.input_size,
            num_classes: 10,
            conv_layers: vec![spec.clone(), spec],
        };
        let sim = Simulator::new(ArchConfig::photofourier_cg()).unwrap();
        let perf = sim.evaluate_network(&network).unwrap();
        prop_assert!((perf.fps * perf.latency_s - 1.0).abs() < 1e-9);
        prop_assert!((perf.avg_power_w * perf.latency_s - perf.energy_j).abs() < 1e-12);
        prop_assert!((perf.edp - perf.energy_j * perf.latency_s).abs() < 1e-24);
        let layer_latency: f64 = perf.layers.iter().map(|l| l.latency_s).sum();
        prop_assert!((layer_latency - perf.latency_s).abs() < 1e-12);
    }
}
