//! On-chip memory capacity checks and traffic summaries (Section V-A).
//!
//! PhotoFourier sizes its 512 KiB per-tile weight SRAM to hold the weights
//! of an entire layer (doubled by pseudo-negative storage) and its 4 MiB
//! shared activation SRAM to hold two copies of the largest activation map
//! (ping-pong buffering), so DRAM is touched only for weights.

use pf_nn::models::NetworkSpec;
use serde::{Deserialize, Serialize};

use crate::config::ArchConfig;

/// Result of checking a network against the configured SRAM capacities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryReport {
    /// Network name.
    pub network: String,
    /// Bytes needed to hold the largest layer's weights (with
    /// pseudo-negative doubling when enabled).
    pub max_layer_weight_bytes: u64,
    /// Weight SRAM capacity in bytes (per tile).
    pub weight_sram_bytes: u64,
    /// Bytes needed for double-buffered activations of the largest layer.
    pub max_activation_bytes: u64,
    /// Activation SRAM capacity in bytes.
    pub activation_sram_bytes: u64,
}

impl MemoryReport {
    /// Whether the largest layer's weights fit the per-tile weight SRAM.
    pub fn weights_fit(&self) -> bool {
        self.max_layer_weight_bytes <= self.weight_sram_bytes
    }

    /// Whether double-buffered activations fit the activation SRAM.
    pub fn activations_fit(&self) -> bool {
        self.max_activation_bytes <= self.activation_sram_bytes
    }

    /// Whether the whole network can execute without spilling activations or
    /// per-layer weights to DRAM mid-layer.
    pub fn fits(&self) -> bool {
        self.weights_fit() && self.activations_fit()
    }
}

/// Checks a network against the memory capacities of a configuration
/// (8-bit values: one byte per weight / activation).
pub fn check_network(network: &NetworkSpec, config: &ArchConfig) -> MemoryReport {
    let pn = if config.pseudo_negative { 2 } else { 1 };
    MemoryReport {
        network: network.name.clone(),
        max_layer_weight_bytes: network.max_layer_weights() * pn,
        weight_sram_bytes: config.tech.weight_sram_kib as u64 * 1024,
        max_activation_bytes: network.max_activation_values() * 2,
        activation_sram_bytes: config.tech.activation_sram_kib as u64 * 1024,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_nn::models::cifar::resnet_s;
    use pf_nn::models::imagenet::{alexnet, resnet18, vgg16};

    #[test]
    fn common_cnn_activations_fit_the_4mib_sram() {
        // Section V-A: the activation memory is sized to hold the
        // activations of common CNNs with ping-pong buffering.
        let cfg = ArchConfig::photofourier_cg();
        for net in [resnet18(), resnet_s()] {
            let report = check_network(&net, &cfg);
            assert!(
                report.activations_fit(),
                "{} activations do not fit: {} > {}",
                net.name,
                report.max_activation_bytes,
                report.activation_sram_bytes
            );
        }
    }

    #[test]
    fn vgg_early_layers_exceed_activation_sram() {
        // VGG-16's 64x224x224 activations (6.4 MB double-buffered) are the
        // stress case; the check correctly reports the overflow.
        let cfg = ArchConfig::photofourier_cg();
        let report = check_network(&vgg16(), &cfg);
        assert!(!report.activations_fit());
    }

    #[test]
    fn weight_sram_holds_most_layers_with_pseudo_negative() {
        let cfg = ArchConfig::photofourier_cg();
        for net in [alexnet(), resnet_s()] {
            let report = check_network(&net, &cfg);
            // Pseudo-negative doubling is accounted for.
            assert_eq!(report.max_layer_weight_bytes, net.max_layer_weights() * 2);
            assert!(report.weight_sram_bytes == 512 * 1024);
        }
    }

    #[test]
    fn disabling_pseudo_negative_halves_weight_footprint() {
        let mut cfg = ArchConfig::photofourier_cg();
        let with_pn = check_network(&resnet18(), &cfg);
        cfg.pseudo_negative = false;
        let without = check_network(&resnet18(), &cfg);
        assert_eq!(
            with_pn.max_layer_weight_bytes,
            2 * without.max_layer_weight_bytes
        );
    }

    #[test]
    fn report_fits_combines_both_checks() {
        let cfg = ArchConfig::photofourier_cg();
        let report = check_network(&resnet_s(), &cfg);
        assert!(report.fits());
        let vgg_report = check_network(&vgg16(), &cfg);
        assert_eq!(
            vgg_report.fits(),
            vgg_report.weights_fit() && vgg_report.activations_fit()
        );
    }
}
