//! Parallelisation-scheme analysis (Section V-D, Figure 8).
//!
//! Given `N_PFCU` compute units, inputs can be broadcast to `IB` of them
//! (sharing the input DACs and MRRs) while groups of `CP = N_PFCU / IB`
//! units process different input channels and share one set of ADCs. The
//! paper minimises `IB / N_TA + CP` — the normalised ADC+DAC power — subject
//! to `IB · CP = N_PFCU`, and finds that with `N_TA = 16` full input
//! broadcasting (`IB = N_PFCU`) is optimal for up to 32 PFCUs.

use serde::{Deserialize, Serialize};

use crate::error::ArchError;

/// A concrete assignment of the two parallelisation dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParallelScheme {
    /// Number of PFCUs the input activations are broadcast to (`IB`).
    pub input_broadcast: usize,
    /// Number of PFCUs that share one set of ADCs via channel
    /// parallelisation (`CP`).
    pub channel_parallel: usize,
}

impl ParallelScheme {
    /// Full input broadcasting over `num_pfcus` units (the PhotoFourier
    /// default).
    pub fn input_broadcast(num_pfcus: usize) -> Self {
        Self {
            input_broadcast: num_pfcus.max(1),
            channel_parallel: 1,
        }
    }

    /// Total number of PFCUs covered by this scheme.
    pub fn num_pfcus(&self) -> usize {
        self.input_broadcast * self.channel_parallel
    }
}

/// The objective of the Section V-D minimisation: `IB / N_TA + CP`,
/// proportional to the sum of ADC and DAC power (both converter types have
/// similar power at equal frequency, so their absolute power cancels).
pub fn power_objective(input_broadcast: usize, num_pfcus: usize, temporal_depth: usize) -> f64 {
    assert!(input_broadcast > 0 && num_pfcus > 0 && temporal_depth > 0);
    let cp = num_pfcus as f64 / input_broadcast as f64;
    input_broadcast as f64 / temporal_depth as f64 + cp
}

/// One point of the Figure 8 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Input-broadcast factor.
    pub input_broadcast: usize,
    /// Objective value `IB / N_TA + CP`.
    pub objective: f64,
}

/// Sweeps all valid power-of-two `IB` values for a given PFCU count,
/// reproducing one curve of Figure 8.
///
/// # Errors
///
/// Returns [`ArchError::InvalidConfig`] if `num_pfcus` is not a power of two
/// or `temporal_depth` is zero.
pub fn sweep_input_broadcast(
    num_pfcus: usize,
    temporal_depth: usize,
) -> Result<Vec<SweepPoint>, ArchError> {
    if num_pfcus == 0 || !num_pfcus.is_power_of_two() {
        return Err(ArchError::InvalidConfig {
            name: "num_pfcus",
            requirement: "must be a non-zero power of two".to_string(),
        });
    }
    if temporal_depth == 0 {
        return Err(ArchError::InvalidConfig {
            name: "temporal_depth",
            requirement: "must be at least 1".to_string(),
        });
    }
    let mut points = Vec::new();
    let mut ib = 1;
    while ib <= num_pfcus {
        points.push(SweepPoint {
            input_broadcast: ib,
            objective: power_objective(ib, num_pfcus, temporal_depth),
        });
        ib *= 2;
    }
    Ok(points)
}

/// Returns the optimal parallelisation scheme (minimum objective; ties go to
/// the larger `IB`, matching the paper's choice of input broadcasting when
/// `IB = 16` and `IB = 32` are equivalent at `N_PFCU = 32`).
///
/// # Errors
///
/// Same conditions as [`sweep_input_broadcast`].
pub fn optimal_scheme(
    num_pfcus: usize,
    temporal_depth: usize,
) -> Result<ParallelScheme, ArchError> {
    let sweep = sweep_input_broadcast(num_pfcus, temporal_depth)?;
    let best = sweep
        .iter()
        .fold(None::<SweepPoint>, |acc, &p| match acc {
            None => Some(p),
            Some(b) if p.objective <= b.objective + 1e-12 => Some(p),
            Some(b) => Some(b),
        })
        .expect("sweep is never empty");
    Ok(ParallelScheme {
        input_broadcast: best.input_broadcast,
        channel_parallel: num_pfcus / best.input_broadcast,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objective_matches_formula() {
        // IB = 8, N_PFCU = 8, N_TA = 16: 8/16 + 1 = 1.5.
        assert!((power_objective(8, 8, 16) - 1.5).abs() < 1e-12);
        // IB = 1, N_PFCU = 8: 1/16 + 8 = 8.0625.
        assert!((power_objective(1, 8, 16) - 8.0625).abs() < 1e-12);
    }

    #[test]
    fn sweep_validation() {
        assert!(sweep_input_broadcast(0, 16).is_err());
        assert!(sweep_input_broadcast(12, 16).is_err());
        assert!(sweep_input_broadcast(8, 0).is_err());
        let sweep = sweep_input_broadcast(8, 16).unwrap();
        assert_eq!(sweep.len(), 4); // IB in {1, 2, 4, 8}
    }

    #[test]
    fn paper_figure8_conclusions() {
        // For 8 and 16 PFCUs the minimum is at IB = N_PFCU.
        for n in [8usize, 16] {
            let best = optimal_scheme(n, 16).unwrap();
            assert_eq!(best.input_broadcast, n, "N_PFCU = {n}");
            assert_eq!(best.channel_parallel, 1);
        }
        // For 32 PFCUs, IB = 16 and IB = 32 tie; the paper picks input
        // broadcasting (the larger IB).
        let sweep = sweep_input_broadcast(32, 16).unwrap();
        let at16 = sweep.iter().find(|p| p.input_broadcast == 16).unwrap();
        let at32 = sweep.iter().find(|p| p.input_broadcast == 32).unwrap();
        assert!((at16.objective - at32.objective).abs() < 1e-12);
        let best = optimal_scheme(32, 16).unwrap();
        assert_eq!(best.input_broadcast, 32);
    }

    #[test]
    fn beyond_32_pfcus_channel_parallelism_wins() {
        // With 64 PFCUs the optimum moves away from pure input broadcasting,
        // consistent with the paper's "less than or equal to 32" statement.
        let best = optimal_scheme(64, 16).unwrap();
        assert!(best.input_broadcast < 64);
        assert!(best.channel_parallel > 1);
        assert_eq!(best.num_pfcus(), 64);
    }

    #[test]
    fn scheme_constructor() {
        let s = ParallelScheme::input_broadcast(8);
        assert_eq!(s.input_broadcast, 8);
        assert_eq!(s.channel_parallel, 1);
        assert_eq!(s.num_pfcus(), 8);
        assert_eq!(ParallelScheme::input_broadcast(0).input_broadcast, 1);
    }
}
