//! The cumulative-optimisation study of Figure 10.
//!
//! Starting from a single-PFCU baseline with CG component powers, each step
//! adds one optimisation (keeping all previous ones):
//!
//! 1. **Baseline** — 1 PFCU, a DAC on every waveguide, ADCs at the photonic
//!    clock, no pipelining.
//! 2. **+ Small filter** — weight DACs reduced to the 25 active waveguides.
//! 3. **+ PFCU parallelisation** — 8 PFCUs with input broadcasting share the
//!    input DACs/MRRs.
//! 4. **+ Temporal accumulation** — 16-channel accumulation cuts ADC
//!    frequency (and conversion count) by 16×.
//! 5. **+ Non-linear material** — the Fourier-plane photodetector/MRR pairs
//!    are replaced by a passive non-linearity (the NG-only optimisation,
//!    evaluated here with CG power numbers to exclude technology scaling).

use pf_photonics::params::TechConfig;
use serde::{Deserialize, Serialize};

use crate::config::ArchConfig;
use crate::parallel::ParallelScheme;

/// One rung of the Figure 10 ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OptimizationStep {
    /// Un-optimised single-PFCU system.
    Baseline,
    /// Remove DACs from inactive weight waveguides (Section IV-B).
    SmallFilter,
    /// 8 PFCUs with input broadcasting (Section V-D).
    PfcuParallelization,
    /// 16-channel temporal accumulation (Section V-C).
    TemporalAccumulation,
    /// Passive non-linear material replaces the Fourier-plane rings
    /// (Section II-C3).
    NonlinearMaterial,
}

impl OptimizationStep {
    /// All steps in the order Figure 10 plots them.
    pub const ALL: [OptimizationStep; 5] = [
        OptimizationStep::Baseline,
        OptimizationStep::SmallFilter,
        OptimizationStep::PfcuParallelization,
        OptimizationStep::TemporalAccumulation,
        OptimizationStep::NonlinearMaterial,
    ];

    /// Display label used in the figure.
    pub fn label(self) -> &'static str {
        match self {
            OptimizationStep::Baseline => "baseline",
            OptimizationStep::SmallFilter => "+small filter",
            OptimizationStep::PfcuParallelization => "+PFCU parallelization",
            OptimizationStep::TemporalAccumulation => "+temporal accumulation",
            OptimizationStep::NonlinearMaterial => "+non-linear material",
        }
    }

    /// Builds the accelerator configuration for this step (cumulative: each
    /// step includes all previous optimisations), using CG component powers
    /// throughout so technology scaling does not interfere.
    pub fn config(self) -> ArchConfig {
        let mut tech = TechConfig::photofourier_cg();
        // Start from the un-optimised baseline and re-enable optimisations.
        tech.name = format!("Fig10 {}", self.label());
        tech.num_pfcus = 1;
        tech.weight_waveguides = tech.input_waveguides;
        tech.temporal_accumulation = 1;
        tech.adc_frequency_ghz = tech.photonic_clock_ghz;
        tech.adc_power_mw *= pf_photonics::params::BASELINE_ADC_POWER_FACTOR;
        tech.passive_nonlinearity = false;

        let mut rank = 0;
        for (i, step) in OptimizationStep::ALL.iter().enumerate() {
            if *step == self {
                rank = i;
            }
        }
        if rank >= 1 {
            tech.weight_waveguides = pf_photonics::params::ACTIVE_WEIGHT_WAVEGUIDES;
        }
        if rank >= 2 {
            tech.num_pfcus = 8;
        }
        if rank >= 3 {
            tech.temporal_accumulation = pf_photonics::params::TEMPORAL_ACCUMULATION_DEPTH;
            tech.adc_frequency_ghz = 0.625;
            tech.adc_power_mw = TechConfig::photofourier_cg().adc_power_mw;
        }
        if rank >= 4 {
            tech.passive_nonlinearity = true;
        }

        ArchConfig {
            parallel: ParallelScheme::input_broadcast(tech.num_pfcus),
            tech,
            pipelined: true,
            pseudo_negative: true,
            area_budget_mm2: 100.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::Simulator;
    use pf_nn::models::imagenet::{resnet18, vgg16};

    #[test]
    fn ladder_configs_are_cumulative() {
        let baseline = OptimizationStep::Baseline.config();
        assert_eq!(baseline.tech.num_pfcus, 1);
        assert_eq!(baseline.tech.weight_waveguides, 256);
        assert_eq!(baseline.tech.temporal_accumulation, 1);
        assert!(!baseline.tech.passive_nonlinearity);

        let small = OptimizationStep::SmallFilter.config();
        assert_eq!(small.tech.weight_waveguides, 25);
        assert_eq!(small.tech.num_pfcus, 1);

        let parallel = OptimizationStep::PfcuParallelization.config();
        assert_eq!(parallel.tech.weight_waveguides, 25);
        assert_eq!(parallel.tech.num_pfcus, 8);
        assert_eq!(parallel.tech.temporal_accumulation, 1);

        let temporal = OptimizationStep::TemporalAccumulation.config();
        assert_eq!(temporal.tech.temporal_accumulation, 16);
        assert_eq!(temporal.tech.adc_frequency_ghz, 0.625);

        let nonlinear = OptimizationStep::NonlinearMaterial.config();
        assert!(nonlinear.tech.passive_nonlinearity);
        assert_eq!(nonlinear.tech.num_pfcus, 8);
    }

    #[test]
    fn all_configs_validate() {
        for step in OptimizationStep::ALL {
            assert!(step.config().validated().is_ok(), "{}", step.label());
        }
    }

    #[test]
    fn every_step_improves_efficiency() {
        // The Figure 10 staircase: each added optimisation increases the
        // geometric-mean FPS/W (evaluated here on two networks for speed).
        let networks = [vgg16(), resnet18()];
        let mut previous = 0.0;
        for step in OptimizationStep::ALL {
            let sim = Simulator::new(step.config()).unwrap();
            let value = sim.geomean_fps_per_watt(&networks).unwrap();
            assert!(
                value > previous,
                "{} ({value}) should improve on the previous step ({previous})",
                step.label()
            );
            previous = value;
        }
    }

    #[test]
    fn full_ladder_gives_an_order_of_magnitude() {
        // Paper: the optimisations combined are ~15x better than the
        // baseline. Accept anything within a reasonably wide band.
        let networks = [vgg16(), resnet18()];
        let base = Simulator::new(OptimizationStep::Baseline.config())
            .unwrap()
            .geomean_fps_per_watt(&networks)
            .unwrap();
        let full = Simulator::new(OptimizationStep::NonlinearMaterial.config())
            .unwrap()
            .geomean_fps_per_watt(&networks)
            .unwrap();
        let gain = full / base;
        assert!(
            (5.0..60.0).contains(&gain),
            "cumulative optimisation gain {gain}"
        );
    }

    #[test]
    fn labels_are_unique() {
        let labels: Vec<&str> = OptimizationStep::ALL.iter().map(|s| s.label()).collect();
        let mut dedup = labels.clone();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
    }
}
