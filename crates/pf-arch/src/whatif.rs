//! What-if studies for the directions discussed in Section VII.
//!
//! The paper's discussion argues that once the optical compute is cheap
//! (PhotoFourier-NG), *data movement* becomes the bottleneck, and points at
//! photonic memory / interconnect and 3D integration as remedies. This
//! module quantifies that argument: it sweeps the SRAM/DRAM access energy
//! (the knob those technologies would turn) and reports how far FPS/W can
//! still scale for each design point.

use pf_nn::models::NetworkSpec;
use serde::{Deserialize, Serialize};

use crate::config::ArchConfig;
use crate::error::ArchError;
use crate::simulator::Simulator;

/// One point of the data-movement sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataMovementPoint {
    /// Factor applied to SRAM and DRAM access energy (1.0 = today).
    pub memory_energy_scale: f64,
    /// Geometric-mean FPS/W at that scaling.
    pub geomean_fps_per_watt: f64,
    /// Fraction of total energy spent on memory (SRAM + DRAM).
    pub memory_energy_share: f64,
}

/// Sweeps the memory access energy of a design point by the given factors,
/// modelling future memory technologies (3D stacking, photonic interconnect)
/// as cheaper data movement.
///
/// # Errors
///
/// Propagates simulation errors; rejects an empty network or factor list.
pub fn data_movement_sweep(
    base: &ArchConfig,
    scales: &[f64],
    networks: &[NetworkSpec],
) -> Result<Vec<DataMovementPoint>, ArchError> {
    if networks.is_empty() || scales.is_empty() {
        return Err(ArchError::InvalidConfig {
            name: "networks/scales",
            requirement: "must not be empty".to_string(),
        });
    }
    let mut points = Vec::with_capacity(scales.len());
    for &scale in scales {
        if scale <= 0.0 {
            return Err(ArchError::InvalidConfig {
                name: "memory_energy_scale",
                requirement: "must be positive".to_string(),
            });
        }
        let mut config = base.clone();
        config.tech.sram_energy_pj_per_byte *= scale;
        config.tech.sram_leakage_mw *= scale;
        config.tech.dram_energy_pj_per_byte *= scale;
        let sim = Simulator::new(config)?;

        let mut fps_per_watt = Vec::with_capacity(networks.len());
        let mut memory_pj = 0.0;
        let mut total_pj = 0.0;
        for network in networks {
            let perf = sim.evaluate_network(network)?;
            fps_per_watt.push(perf.fps_per_watt);
            memory_pj += perf.breakdown.sram_pj + perf.breakdown.dram_pj;
            total_pj += perf.breakdown.total_pj();
        }
        points.push(DataMovementPoint {
            memory_energy_scale: scale,
            geomean_fps_per_watt: pf_dsp::util::geometric_mean(&fps_per_watt).unwrap_or(0.0),
            memory_energy_share: memory_pj / total_pj,
        });
    }
    Ok(points)
}

/// The sweep factors used by the Section VII discussion experiment: from
/// today's memories down to a hypothetical 16× cheaper photonic / 3D-stacked
/// hierarchy.
pub const DISCUSSION_SCALES: [f64; 5] = [1.0, 0.5, 0.25, 0.125, 0.0625];

#[cfg(test)]
mod tests {
    use super::*;
    use pf_nn::models::imagenet::resnet18;

    #[test]
    fn sweep_validation() {
        let base = ArchConfig::photofourier_ng();
        assert!(data_movement_sweep(&base, &[], &[resnet18()]).is_err());
        assert!(data_movement_sweep(&base, &[1.0], &[]).is_err());
        assert!(data_movement_sweep(&base, &[0.0], &[resnet18()]).is_err());
    }

    #[test]
    fn cheaper_memory_always_helps_and_share_shrinks() {
        let base = ArchConfig::photofourier_ng();
        let points = data_movement_sweep(&base, &DISCUSSION_SCALES, &[resnet18()]).unwrap();
        assert_eq!(points.len(), DISCUSSION_SCALES.len());
        for pair in points.windows(2) {
            assert!(pair[1].geomean_fps_per_watt > pair[0].geomean_fps_per_watt);
            assert!(pair[1].memory_energy_share < pair[0].memory_energy_share);
        }
    }

    #[test]
    fn ng_gains_more_from_cheap_memory_than_cg() {
        // Section VII: data movement dominates NG, so NG benefits more from
        // cheaper memory than CG does.
        let nets = [resnet18()];
        let gain = |base: &ArchConfig| {
            let points = data_movement_sweep(base, &[1.0, 0.0625], &nets).unwrap();
            points[1].geomean_fps_per_watt / points[0].geomean_fps_per_watt
        };
        let cg_gain = gain(&ArchConfig::photofourier_cg());
        let ng_gain = gain(&ArchConfig::photofourier_ng());
        assert!(
            ng_gain > cg_gain,
            "NG gain {ng_gain} should exceed CG gain {cg_gain}"
        );
    }

    #[test]
    fn memory_share_matches_paper_observation() {
        // Paper: data movement consumes more than 30% of NG system power.
        let points =
            data_movement_sweep(&ArchConfig::photofourier_ng(), &[1.0], &[resnet18()]).unwrap();
        assert!(
            points[0].memory_energy_share > 0.3,
            "NG memory share {}",
            points[0].memory_energy_share
        );
    }
}
