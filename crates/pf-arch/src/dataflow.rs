//! Output-stationary scheduling of one convolution layer onto the PFCU array
//! (Section V-F).
//!
//! The schedule answers, for a given layer shape and accelerator
//! configuration: how many PFCU cycles the layer takes, how many waveguides /
//! DACs are actually active (utilisation), and how many ADC conversions and
//! SRAM bytes the layer moves. The [`crate::power`] model turns those counts
//! into energy.

use pf_nn::layers::ConvLayerSpec;
use pf_tiling::TilingPlan;
use serde::{Deserialize, Serialize};

use crate::config::ArchConfig;
use crate::error::ArchError;

/// The static schedule of one convolution layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSchedule {
    /// Layer name (copied from the spec).
    pub layer: String,
    /// Row-tiling plan used on each PFCU.
    pub plan: TilingPlan,
    /// Number of filters after pseudo-negative expansion.
    pub effective_filters: usize,
    /// Number of filter groups processed sequentially (each group occupies
    /// all input-broadcast PFCUs).
    pub filter_groups: usize,
    /// Number of input-channel iterations (reduced by channel parallelism).
    pub channel_iterations: usize,
    /// Total PFCU cycles for the layer, including the pipelining factor.
    pub total_cycles: u64,
    /// Input waveguides actually carrying data each cycle (utilisation).
    pub active_input_waveguides: usize,
    /// Weight DACs actually driven per PFCU each cycle.
    pub active_weight_dacs: usize,
    /// ADC conversions needed for the whole layer.
    pub adc_conversions: u64,
    /// Bytes read from the activation SRAM.
    pub input_sram_bytes: u64,
    /// Bytes read from the weight SRAM.
    pub weight_sram_bytes: u64,
    /// Bytes written to the activation SRAM (layer outputs).
    pub output_sram_bytes: u64,
    /// Bytes fetched from DRAM (layer weights).
    pub dram_bytes: u64,
}

impl LayerSchedule {
    /// Builds the schedule of `spec` on the accelerator described by
    /// `config`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::Tiling`] if the layer kernel does not fit the
    /// PFCU, or [`ArchError::Unschedulable`] for degenerate layer shapes.
    pub fn new(spec: &ConvLayerSpec, config: &ArchConfig) -> Result<Self, ArchError> {
        let n_conv = config.tech.input_waveguides;
        let plan = TilingPlan::new(
            spec.input_size,
            spec.input_size,
            spec.kernel,
            spec.kernel,
            n_conv,
        )?;

        let ib = config.parallel.input_broadcast.max(1);
        let cp = config.parallel.channel_parallel.max(1);

        // Pseudo-negative doubles the number of filters to execute.
        let filter_multiplier = if config.pseudo_negative { 2 } else { 1 };
        let effective_filters = spec.out_channels * filter_multiplier;
        let filter_groups = effective_filters.div_ceil(ib);

        // Channel parallelism lets CP PFCUs each take a different input
        // channel in the same cycle (their outputs are summed optically at a
        // shared detector).
        let channel_iterations = spec.in_channels.div_ceil(cp);

        let convs_per_plane = plan.convs_per_output_plane as u64;
        let issue_cycles = convs_per_plane * channel_iterations as u64 * filter_groups as u64;
        let total_cycles = if config.pipelined {
            issue_cycles + 1
        } else {
            issue_cycles * 2
        };

        // Utilisation of the input waveguides by the tiled input.
        let active_input_waveguides = plan.tiled_input_len().min(n_conv);
        // Every weight waveguide that has a DAC is driven every cycle: the
        // small-filter optimisation (Section IV-B) saves power by *removing*
        // DACs from inactive waveguides, not by gating them. The baseline
        // therefore pays for a DAC per input waveguide, the optimised PFCU
        // for 25.
        let active_weight_dacs = config.tech.weight_waveguides;

        // Every unit-stride output value is read out; strided layers discard
        // after read-out (Section VI-E). Each value needs one conversion per
        // temporal-accumulation group of input channels.
        let unit_stride_outputs = (spec.input_size * spec.input_size) as u64;
        let groups_per_output =
            spec.in_channels
                .div_ceil(config.tech.temporal_accumulation.max(1)) as u64;
        let adc_conversions = unit_stride_outputs * effective_filters as u64 * groups_per_output;

        // SRAM traffic (8-bit values = 1 byte each).
        // Inputs: one tile per cycle per channel-parallel group; filter
        // groups re-read the same tiles.
        let input_sram_bytes = active_input_waveguides as u64 * cp as u64 * issue_cycles
            / channel_iterations.max(1) as u64
            * channel_iterations as u64; // = active * cp * issue_cycles
                                         // Weights: reused across the convolutions of one output plane
                                         // (weight broadcasting within the PFCU), so only one fetch per
                                         // (filter, channel) pair per group.
        let weight_sram_bytes = active_weight_dacs as u64
            * config.tech.num_pfcus as u64
            * channel_iterations as u64
            * filter_groups as u64;
        // Outputs: written once after the pseudo-negative subtraction.
        let output_sram_bytes = spec.output_activations();
        // Weights come from DRAM once per layer (pseudo-negative pairs are
        // stored explicitly, Section V-A).
        let dram_bytes = spec.weight_count() * filter_multiplier as u64;

        if total_cycles == 0 {
            return Err(ArchError::Unschedulable {
                layer: spec.name.clone(),
                reason: "layer produces zero cycles".to_string(),
            });
        }

        Ok(Self {
            layer: spec.name.clone(),
            plan,
            effective_filters,
            filter_groups,
            channel_iterations,
            total_cycles,
            active_input_waveguides,
            active_weight_dacs,
            adc_conversions,
            input_sram_bytes,
            weight_sram_bytes,
            output_sram_bytes,
            dram_bytes,
        })
    }

    /// Latency of this layer in seconds at the configured photonic clock.
    pub fn latency_seconds(&self, photonic_clock_ghz: f64) -> f64 {
        self.total_cycles as f64 / (photonic_clock_ghz * 1e9)
    }

    /// Input-waveguide utilisation in `[0, 1]`.
    pub fn waveguide_utilization(&self, input_waveguides: usize) -> f64 {
        self.active_input_waveguides as f64 / input_waveguides.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArchConfig;
    use pf_tiling::TilingVariant;

    fn spec(in_c: usize, out_c: usize, k: usize, stride: usize, size: usize) -> ConvLayerSpec {
        ConvLayerSpec::new("test", in_c, out_c, k, stride, size, true).unwrap()
    }

    #[test]
    fn resnet_style_layer_schedules() {
        let cfg = ArchConfig::photofourier_cg();
        let s = LayerSchedule::new(&spec(64, 64, 3, 1, 56), &cfg).unwrap();
        // 56x56 input on 256 waveguides: row tiling, 4 rows per tile.
        assert_eq!(s.plan.variant, TilingVariant::RowTiling);
        assert_eq!(s.plan.rows_per_tile, 4);
        // Pseudo-negative doubles 64 filters -> 128 -> 16 groups of 8.
        assert_eq!(s.effective_filters, 128);
        assert_eq!(s.filter_groups, 16);
        assert_eq!(s.channel_iterations, 64);
        assert!(s.total_cycles > 0);
        assert_eq!(s.active_weight_dacs, 25);
        assert_eq!(s.active_input_waveguides, 4 * 56);
    }

    #[test]
    fn cycles_scale_with_filters_and_channels() {
        let cfg = ArchConfig::photofourier_cg();
        let base = LayerSchedule::new(&spec(32, 32, 3, 1, 32), &cfg).unwrap();
        let more_filters = LayerSchedule::new(&spec(32, 64, 3, 1, 32), &cfg).unwrap();
        let more_channels = LayerSchedule::new(&spec(64, 32, 3, 1, 32), &cfg).unwrap();
        assert!(more_filters.total_cycles > base.total_cycles);
        assert!(more_channels.total_cycles > base.total_cycles);
        // Doubling filters doubles cycles (filters >> PFCU count).
        let ratio = more_filters.total_cycles as f64 / base.total_cycles as f64;
        assert!((ratio - 2.0).abs() < 0.1, "filter scaling ratio {ratio}");
    }

    #[test]
    fn more_pfcus_means_fewer_cycles() {
        let cg = ArchConfig::photofourier_cg();
        let ng = ArchConfig::photofourier_ng();
        let layer = spec(128, 128, 3, 1, 28);
        let s_cg = LayerSchedule::new(&layer, &cg).unwrap();
        let s_ng = LayerSchedule::new(&layer, &ng).unwrap();
        // 16 PFCUs halve the filter groups compared to 8.
        assert!(s_ng.total_cycles < s_cg.total_cycles);
        let ratio = s_cg.total_cycles as f64 / s_ng.total_cycles as f64;
        assert!((ratio - 2.0).abs() < 0.1, "PFCU scaling ratio {ratio}");
    }

    #[test]
    fn temporal_accumulation_cuts_adc_conversions() {
        let cg = ArchConfig::photofourier_cg(); // depth 16
        let baseline = ArchConfig::baseline_single_pfcu(); // depth 1
        let layer = spec(64, 8, 3, 1, 32);
        let with_ta = LayerSchedule::new(&layer, &cg).unwrap();
        let without = LayerSchedule::new(&layer, &baseline).unwrap();
        // Same outputs, 16x fewer conversions.
        let ratio = without.adc_conversions as f64 / with_ta.adc_conversions as f64;
        assert!((ratio - 16.0).abs() < 1e-9, "ADC conversion ratio {ratio}");
    }

    #[test]
    fn pseudo_negative_doubles_work() {
        let mut cfg = ArchConfig::photofourier_cg();
        let layer = spec(16, 16, 3, 1, 32);
        let with_pn = LayerSchedule::new(&layer, &cfg).unwrap();
        cfg.pseudo_negative = false;
        let without = LayerSchedule::new(&layer, &cfg).unwrap();
        assert_eq!(with_pn.effective_filters, 2 * without.effective_filters);
        assert!(with_pn.total_cycles >= 2 * without.total_cycles - 2);
        assert_eq!(with_pn.dram_bytes, 2 * without.dram_bytes);
    }

    #[test]
    fn small_late_layers_underutilize_waveguides() {
        // ResNet late layers with 7x7 or 14x14 inputs cannot fill 256
        // waveguides well when the kernel constrains tiling.
        let cfg = ArchConfig::photofourier_cg();
        let late = LayerSchedule::new(&spec(512, 512, 3, 1, 7), &cfg).unwrap();
        let util = late.waveguide_utilization(cfg.tech.input_waveguides);
        assert!(util < 0.25, "7x7 layer should under-utilise: {util}");
        let early = LayerSchedule::new(&spec(64, 64, 3, 1, 56), &cfg).unwrap();
        assert!(early.waveguide_utilization(cfg.tech.input_waveguides) > util);
    }

    #[test]
    fn first_layer_of_imagenet_uses_partial_tiling_or_partitioning() {
        let cfg = ArchConfig::photofourier_cg();
        let s = LayerSchedule::new(&spec(3, 64, 7, 2, 224), &cfg).unwrap();
        assert_ne!(s.plan.variant, TilingVariant::RowTiling);
        assert!(s.total_cycles > 0);
    }

    #[test]
    fn latency_and_utilization_helpers() {
        let cfg = ArchConfig::photofourier_cg();
        let s = LayerSchedule::new(&spec(16, 16, 3, 1, 32), &cfg).unwrap();
        let latency = s.latency_seconds(10.0);
        assert!(latency > 0.0);
        assert!((latency - s.total_cycles as f64 / 1e10).abs() < 1e-15);
        let util = s.waveguide_utilization(256);
        assert!(util > 0.0 && util <= 1.0);
    }

    #[test]
    fn weight_reuse_reduces_weight_traffic() {
        let cfg = ArchConfig::photofourier_cg();
        let s = LayerSchedule::new(&spec(64, 64, 3, 1, 56), &cfg).unwrap();
        // Weight bytes are far below "weights re-read every cycle".
        let naive = s.active_weight_dacs as u64 * cfg.tech.num_pfcus as u64 * s.total_cycles;
        assert!(s.weight_sram_bytes * 2 < naive);
    }
}
