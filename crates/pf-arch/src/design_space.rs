//! Design-space exploration: waveguides per PFCU vs number of PFCUs under a
//! fixed area budget (Section V-E, Table III).

use pf_nn::models::NetworkSpec;
use serde::{Deserialize, Serialize};

use crate::area::AreaModel;
use crate::config::ArchConfig;
use crate::error::ArchError;
use crate::simulator::Simulator;

/// One row of the Table III sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Number of PFCUs.
    pub num_pfcus: usize,
    /// Maximum input waveguides per PFCU under the area budget.
    pub waveguides: usize,
    /// Geometric mean FPS/W over the benchmark networks.
    pub geomean_fps_per_watt: f64,
    /// Same value normalised to the best point of the sweep.
    pub normalized_fps_per_watt: f64,
}

/// Sweeps the PFCU counts of Table III for one base design point (CG or NG),
/// finding the maximum waveguide count under `area_budget_mm2` and the
/// resulting efficiency on `networks`.
///
/// # Errors
///
/// Propagates area-model and simulation errors; PFCU counts whose minimal
/// configuration exceeds the budget are skipped.
pub fn sweep_pfcu_counts(
    base: &ArchConfig,
    pfcu_counts: &[usize],
    area_budget_mm2: f64,
    networks: &[NetworkSpec],
) -> Result<Vec<DesignPoint>, ArchError> {
    if networks.is_empty() {
        return Err(ArchError::InvalidConfig {
            name: "networks",
            requirement: "must not be empty".to_string(),
        });
    }
    let area_model = AreaModel::for_tech(&base.tech);
    let mut points = Vec::new();
    for &n in pfcu_counts {
        let waveguides = match area_model.max_waveguides(&base.tech, n, area_budget_mm2) {
            Ok(w) => w,
            Err(_) => continue, // does not fit the budget at all
        };
        let config = base.clone().with_pfcus_and_waveguides(n, waveguides);
        let sim = Simulator::new(config)?;
        let geomean = sim.geomean_fps_per_watt(networks)?;
        points.push(DesignPoint {
            num_pfcus: n,
            waveguides,
            geomean_fps_per_watt: geomean,
            normalized_fps_per_watt: 0.0,
        });
    }
    let best = points
        .iter()
        .map(|p| p.geomean_fps_per_watt)
        .fold(0.0f64, f64::max);
    if best > 0.0 {
        for p in &mut points {
            p.normalized_fps_per_watt = p.geomean_fps_per_watt / best;
        }
    }
    Ok(points)
}

/// The PFCU counts Table III evaluates.
pub const TABLE3_PFCU_COUNTS: [usize; 5] = [4, 8, 16, 32, 64];

#[cfg(test)]
mod tests {
    use super::*;
    use pf_nn::models::cifar::{crosslight_cnn, resnet_s};
    use pf_nn::models::imagenet::resnet18;

    fn quick_networks() -> Vec<NetworkSpec> {
        // Small networks keep the sweep fast in unit tests; the bench uses
        // the full five-CNN suite.
        vec![resnet_s(), crosslight_cnn()]
    }

    #[test]
    fn sweep_produces_monotone_waveguide_counts() {
        let base = ArchConfig::photofourier_cg();
        let points =
            sweep_pfcu_counts(&base, &TABLE3_PFCU_COUNTS, 100.0, &quick_networks()).unwrap();
        assert!(points.len() >= 3);
        for pair in points.windows(2) {
            assert!(pair[0].waveguides > pair[1].waveguides);
            assert!(pair[0].num_pfcus < pair[1].num_pfcus);
        }
    }

    #[test]
    fn normalization_is_relative_to_best() {
        let base = ArchConfig::photofourier_cg();
        let points =
            sweep_pfcu_counts(&base, &TABLE3_PFCU_COUNTS, 100.0, &quick_networks()).unwrap();
        let max_norm = points
            .iter()
            .map(|p| p.normalized_fps_per_watt)
            .fold(0.0f64, f64::max);
        assert!((max_norm - 1.0).abs() < 1e-12);
        assert!(points.iter().all(|p| p.normalized_fps_per_watt > 0.0));
        assert!(points.iter().all(|p| p.normalized_fps_per_watt <= 1.0));
    }

    #[test]
    fn best_point_is_an_intermediate_pfcu_count() {
        // Table III: the optimum is neither the fewest (4) nor the most (64)
        // PFCUs for PhotoFourier-CG; with ImageNet-scale layers the sweet
        // spot sits in the middle of the sweep.
        let base = ArchConfig::photofourier_cg();
        let points = sweep_pfcu_counts(&base, &TABLE3_PFCU_COUNTS, 100.0, &[resnet18()]).unwrap();
        let best = points
            .iter()
            .max_by(|a, b| {
                a.geomean_fps_per_watt
                    .partial_cmp(&b.geomean_fps_per_watt)
                    .unwrap()
            })
            .unwrap();
        assert!(
            best.num_pfcus > 4 && best.num_pfcus < 64,
            "best at {} PFCUs",
            best.num_pfcus
        );
    }

    #[test]
    fn empty_networks_rejected() {
        let base = ArchConfig::photofourier_cg();
        assert!(sweep_pfcu_counts(&base, &TABLE3_PFCU_COUNTS, 100.0, &[]).is_err());
    }

    #[test]
    fn tiny_budget_skips_large_counts() {
        let base = ArchConfig::photofourier_cg();
        let points = sweep_pfcu_counts(&base, &[4, 64], 20.0, &quick_networks()).unwrap();
        // 64 PFCUs cannot fit 20 mm^2; only the 4-PFCU point remains (or
        // none, but 4 PFCUs at 32 waveguides fit comfortably).
        assert!(points.iter().all(|p| p.num_pfcus == 4));
    }
}
