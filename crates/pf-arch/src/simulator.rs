//! The top-level performance simulator.
//!
//! [`Simulator`] schedules every convolution layer of a network on the
//! configured accelerator, accumulates energy and latency, and reports the
//! metrics the paper's evaluation uses: frames per second, average power,
//! FPS/W, energy per inference, and energy-delay product.

use pf_nn::layers::ConvLayerSpec;
use pf_nn::models::NetworkSpec;
use serde::{Deserialize, Serialize};

use crate::config::ArchConfig;
use crate::dataflow::LayerSchedule;
use crate::error::ArchError;
use crate::power::{layer_energy, EnergyBreakdown};

/// Performance of a single layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerPerformance {
    /// Layer name.
    pub layer: String,
    /// Static schedule (cycles, utilisation, traffic).
    pub schedule: LayerSchedule,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Latency in seconds.
    pub latency_s: f64,
}

/// Performance of a full network (batch size 1, as in the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkPerformance {
    /// Network name.
    pub network: String,
    /// Accelerator design-point name.
    pub design_point: String,
    /// Per-layer results.
    pub layers: Vec<LayerPerformance>,
    /// Total inference latency in seconds.
    pub latency_s: f64,
    /// Total inference energy in joules.
    pub energy_j: f64,
    /// Aggregated energy breakdown.
    pub breakdown: EnergyBreakdown,
    /// Inference throughput in frames per second.
    pub fps: f64,
    /// Average power in watts.
    pub avg_power_w: f64,
    /// Power efficiency in frames per second per watt (= frames per joule).
    pub fps_per_watt: f64,
    /// Energy-delay product in joule-seconds.
    pub edp: f64,
}

impl NetworkPerformance {
    /// Reciprocal EDP (larger is better), the quantity Figure 13(c) plots.
    pub fn inverse_edp(&self) -> f64 {
        1.0 / self.edp
    }

    /// FPS/W with memory (SRAM + DRAM) energy excluded — the "-nm" variants
    /// of Figure 13(b).
    pub fn fps_per_watt_no_memory(&self) -> f64 {
        let energy = self.breakdown.without_memory().total_joules();
        if energy <= 0.0 {
            return 0.0;
        }
        1.0 / energy
    }

    /// Energy per inference in microjoules (used for the CrossLight
    /// comparison).
    pub fn energy_uj(&self) -> f64 {
        self.energy_j * 1e6
    }
}

/// The architecture simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct Simulator {
    config: ArchConfig,
}

impl Simulator {
    /// Creates a simulator for a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] if the configuration is
    /// inconsistent.
    pub fn new(config: ArchConfig) -> Result<Self, ArchError> {
        Ok(Self {
            config: config.validated()?,
        })
    }

    /// The configuration this simulator evaluates.
    pub fn config(&self) -> &ArchConfig {
        &self.config
    }

    /// Evaluates one convolution layer.
    ///
    /// # Errors
    ///
    /// Propagates scheduling errors.
    pub fn evaluate_layer(&self, spec: &ConvLayerSpec) -> Result<LayerPerformance, ArchError> {
        let schedule = LayerSchedule::new(spec, &self.config)?;
        let energy = layer_energy(spec, &schedule, &self.config);
        let latency_s = schedule.latency_seconds(self.config.tech.photonic_clock_ghz);
        Ok(LayerPerformance {
            layer: spec.name.clone(),
            schedule,
            energy,
            latency_s,
        })
    }

    /// Evaluates a full network at batch size 1.
    ///
    /// # Errors
    ///
    /// Propagates scheduling errors from any layer.
    pub fn evaluate_network(&self, network: &NetworkSpec) -> Result<NetworkPerformance, ArchError> {
        let mut layers = Vec::with_capacity(network.conv_layers.len());
        let mut breakdown = EnergyBreakdown::default();
        let mut latency_s = 0.0;
        for spec in &network.conv_layers {
            let perf = self.evaluate_layer(spec)?;
            breakdown += perf.energy;
            latency_s += perf.latency_s;
            layers.push(perf);
        }
        let energy_j = breakdown.total_joules();
        let fps = 1.0 / latency_s;
        let avg_power_w = energy_j / latency_s;
        let fps_per_watt = 1.0 / energy_j;
        let edp = energy_j * latency_s;
        Ok(NetworkPerformance {
            network: network.name.clone(),
            design_point: self.config.name().to_string(),
            layers,
            latency_s,
            energy_j,
            breakdown,
            fps,
            avg_power_w,
            fps_per_watt,
            edp,
        })
    }

    /// Geometric mean of FPS/W over a set of networks — the figure of merit
    /// used by Table III and Figure 10.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors; returns an error for an empty network
    /// list.
    pub fn geomean_fps_per_watt(&self, networks: &[NetworkSpec]) -> Result<f64, ArchError> {
        if networks.is_empty() {
            return Err(ArchError::InvalidConfig {
                name: "networks",
                requirement: "must not be empty".to_string(),
            });
        }
        let values: Vec<f64> = networks
            .iter()
            .map(|n| self.evaluate_network(n).map(|p| p.fps_per_watt))
            .collect::<Result<_, _>>()?;
        Ok(pf_dsp::util::geometric_mean(&values).unwrap_or(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_nn::models::cifar::{crosslight_cnn, resnet_s};
    use pf_nn::models::imagenet::{alexnet, resnet18, vgg16};

    fn cg() -> Simulator {
        Simulator::new(ArchConfig::photofourier_cg()).unwrap()
    }

    fn ng() -> Simulator {
        Simulator::new(ArchConfig::photofourier_ng()).unwrap()
    }

    #[test]
    fn metrics_are_consistent() {
        let perf = cg().evaluate_network(&resnet18()).unwrap();
        assert!(perf.latency_s > 0.0);
        assert!(perf.energy_j > 0.0);
        assert!((perf.fps - 1.0 / perf.latency_s).abs() < 1e-9 * perf.fps);
        assert!((perf.avg_power_w - perf.energy_j / perf.latency_s).abs() < 1e-9);
        assert!((perf.fps_per_watt - perf.fps / perf.avg_power_w).abs() < 1e-6 * perf.fps_per_watt);
        assert!((perf.edp - perf.energy_j * perf.latency_s).abs() < 1e-20);
        assert!(perf.inverse_edp() > 0.0);
        assert_eq!(perf.layers.len(), resnet18().num_conv_layers());
    }

    #[test]
    fn throughput_is_in_a_plausible_photonic_range() {
        // The paper reports hundreds to thousands of FPS for ResNet-18-class
        // networks on PhotoFourier; the reproduction should land in the same
        // order of magnitude (not cycle-exact, but not off by 100x either).
        let perf = cg().evaluate_network(&resnet18()).unwrap();
        assert!(
            (100.0..100_000.0).contains(&perf.fps),
            "ResNet-18 FPS {} out of plausible range",
            perf.fps
        );
    }

    #[test]
    fn average_power_is_in_the_reported_range() {
        // Paper: CG averages 26.0 W, NG 8.42 W over the five CNNs. Allow a
        // generous band — the substrate differs — but keep the order of
        // magnitude and the CG > NG relation.
        let nets = [alexnet(), vgg16(), resnet18()];
        let cg_power: f64 = nets
            .iter()
            .map(|n| cg().evaluate_network(n).unwrap().avg_power_w)
            .sum::<f64>()
            / nets.len() as f64;
        let ng_power: f64 = nets
            .iter()
            .map(|n| ng().evaluate_network(n).unwrap().avg_power_w)
            .sum::<f64>()
            / nets.len() as f64;
        assert!(
            (5.0..80.0).contains(&cg_power),
            "CG average power {cg_power} W"
        );
        assert!(
            ng_power < cg_power,
            "NG ({ng_power} W) should be below CG ({cg_power} W)"
        );
    }

    #[test]
    fn ng_beats_cg_on_efficiency_and_edp() {
        for net in [vgg16(), resnet18()] {
            let p_cg = cg().evaluate_network(&net).unwrap();
            let p_ng = ng().evaluate_network(&net).unwrap();
            assert!(p_ng.fps_per_watt > p_cg.fps_per_watt, "{}", net.name);
            assert!(p_ng.edp < p_cg.edp, "{}", net.name);
            assert!(p_ng.fps >= p_cg.fps, "{}", net.name);
        }
    }

    #[test]
    fn baseline_is_much_less_efficient_than_cg() {
        let baseline = Simulator::new(ArchConfig::baseline_single_pfcu()).unwrap();
        let net = vgg16();
        let p_base = baseline.evaluate_network(&net).unwrap();
        let p_cg = cg().evaluate_network(&net).unwrap();
        assert!(
            p_cg.fps_per_watt > 5.0 * p_base.fps_per_watt,
            "CG {} vs baseline {}",
            p_cg.fps_per_watt,
            p_base.fps_per_watt
        );
    }

    #[test]
    fn alexnet_is_relatively_inefficient() {
        // Section VI-E: AlexNet's 11x11 stride-4 first layer makes
        // PhotoFourier less efficient; its energy per MAC should exceed
        // VGG-16's.
        let sim = cg();
        let alex = sim.evaluate_network(&alexnet()).unwrap();
        let vgg = sim.evaluate_network(&vgg16()).unwrap();
        let alex_j_per_mac = alex.energy_j / alexnet().total_macs() as f64;
        let vgg_j_per_mac = vgg.energy_j / vgg16().total_macs() as f64;
        assert!(
            alex_j_per_mac > vgg_j_per_mac,
            "AlexNet {alex_j_per_mac} vs VGG {vgg_j_per_mac} J/MAC"
        );
    }

    #[test]
    fn crosslight_cnn_energy_is_a_few_microjoules() {
        // Section VI-E: 4.76 uJ per inference on the CrossLight CNN for CG.
        let perf = cg().evaluate_network(&crosslight_cnn()).unwrap();
        assert!(
            (0.5..50.0).contains(&perf.energy_uj()),
            "CrossLight CNN energy {} uJ",
            perf.energy_uj()
        );
    }

    #[test]
    fn small_cifar_network_is_fast() {
        let perf = cg().evaluate_network(&resnet_s()).unwrap();
        assert!(perf.fps > 1000.0);
    }

    #[test]
    fn geomean_fps_per_watt() {
        let sim = cg();
        let nets = vec![resnet_s(), crosslight_cnn()];
        let gm = sim.geomean_fps_per_watt(&nets).unwrap();
        let a = sim.evaluate_network(&nets[0]).unwrap().fps_per_watt;
        let b = sim.evaluate_network(&nets[1]).unwrap().fps_per_watt;
        assert!(((a * b).sqrt() - gm).abs() < 1e-6 * gm);
        assert!(sim.geomean_fps_per_watt(&[]).is_err());
    }

    #[test]
    fn no_memory_variant_is_at_least_as_efficient() {
        let perf = cg().evaluate_network(&resnet18()).unwrap();
        assert!(perf.fps_per_watt_no_memory() >= perf.fps_per_watt);
    }
}
