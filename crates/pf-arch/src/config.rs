//! Accelerator configurations.
//!
//! [`ArchConfig`] couples a [`TechConfig`] (Table IV component constants and
//! high-level parameters) with the dataflow / parallelisation decisions of
//! Section V and the optimisation toggles swept in Figure 10.

use pf_photonics::params::TechConfig;
use serde::{Deserialize, Serialize};

use crate::error::ArchError;
use crate::parallel::ParallelScheme;

/// A complete accelerator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchConfig {
    /// Component power constants and high-level parameters (Table IV).
    pub tech: TechConfig,
    /// How PFCUs are parallelised (input broadcasting vs channel
    /// parallelisation), Section V-D.
    pub parallel: ParallelScheme,
    /// Whether the two-stage PFCU pipeline (Section IV-A) is enabled.
    pub pipelined: bool,
    /// Whether negative weights are handled with the pseudo-negative method
    /// (doubling filter count, Section VI-A).
    pub pseudo_negative: bool,
    /// Chip area budget in mm² used by the design-space exploration
    /// (Section V-E uses 100 mm²).
    pub area_budget_mm2: f64,
}

impl ArchConfig {
    /// PhotoFourier-CG: 8 PFCUs, 14 nm CMOS chiplet, photodetector + MRR
    /// square function, full input broadcasting.
    pub fn photofourier_cg() -> Self {
        let tech = TechConfig::photofourier_cg();
        Self {
            parallel: ParallelScheme::input_broadcast(tech.num_pfcus),
            tech,
            pipelined: true,
            pseudo_negative: true,
            area_budget_mm2: 100.0,
        }
    }

    /// PhotoFourier-NG: 16 PFCUs, 7 nm monolithic, passive non-linearity.
    pub fn photofourier_ng() -> Self {
        let tech = TechConfig::photofourier_ng();
        Self {
            parallel: ParallelScheme::input_broadcast(tech.num_pfcus),
            tech,
            pipelined: true,
            pseudo_negative: true,
            area_budget_mm2: 100.0,
        }
    }

    /// The un-optimised 1-PFCU baseline of Section V-B (Figure 6): a DAC on
    /// every waveguide, no temporal accumulation, full-rate ADCs, no
    /// pipelining.
    pub fn baseline_single_pfcu() -> Self {
        let tech = TechConfig::baseline_single_pfcu();
        Self {
            parallel: ParallelScheme::input_broadcast(1),
            tech,
            pipelined: false,
            pseudo_negative: true,
            area_budget_mm2: 100.0,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] if the parallelisation scheme is
    /// inconsistent with the PFCU count, the area budget is non-positive, or
    /// the underlying technology parameters are invalid.
    pub fn validated(self) -> Result<Self, ArchError> {
        self.tech
            .clone()
            .validated()
            .map_err(ArchError::Photonics)?;
        if self.area_budget_mm2 <= 0.0 {
            return Err(ArchError::InvalidConfig {
                name: "area_budget_mm2",
                requirement: "must be positive".to_string(),
            });
        }
        if self.parallel.input_broadcast * self.parallel.channel_parallel != self.tech.num_pfcus {
            return Err(ArchError::InvalidConfig {
                name: "parallel",
                requirement: format!(
                    "input_broadcast ({}) x channel_parallel ({}) must equal num_pfcus ({})",
                    self.parallel.input_broadcast,
                    self.parallel.channel_parallel,
                    self.tech.num_pfcus
                ),
            });
        }
        Ok(self)
    }

    /// Sets the number of PFCUs (keeping full input broadcasting) and the
    /// number of input waveguides per PFCU — used by the design-space sweep.
    pub fn with_pfcus_and_waveguides(mut self, num_pfcus: usize, waveguides: usize) -> Self {
        self.tech.num_pfcus = num_pfcus;
        self.tech.input_waveguides = waveguides;
        self.parallel = ParallelScheme::input_broadcast(num_pfcus);
        self
    }

    /// Overrides the temporal-accumulation depth, re-deriving the ADC
    /// sampling rate (photonic clock / depth) and scaling ADC power with a
    /// `f^α` frequency law. `α` is anchored so that dropping from the
    /// paper's 16× accumulation to none costs the
    /// [`pf_photonics::params::BASELINE_ADC_POWER_FACTOR`] (30×) the
    /// Section V-C discussion cites — the worse-than-linear penalty of
    /// full-rate converters.
    pub fn with_temporal_accumulation(mut self, depth: usize) -> Self {
        debug_assert!(depth >= 1, "temporal accumulation depth must be >= 1");
        let depth = depth.max(1);
        let alpha = pf_photonics::params::BASELINE_ADC_POWER_FACTOR.ln()
            / (pf_photonics::params::TEMPORAL_ACCUMULATION_DEPTH as f64).ln();
        let old_freq = self.tech.adc_frequency_ghz;
        let new_freq = self.tech.photonic_clock_ghz / depth as f64;
        self.tech.adc_power_mw *= (new_freq / old_freq).powf(alpha);
        self.tech.adc_frequency_ghz = new_freq;
        self.tech.temporal_accumulation = depth;
        self
    }

    /// Human-readable name of this design point.
    pub fn name(&self) -> &str {
        &self.tech.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_points_are_valid() {
        assert!(ArchConfig::photofourier_cg().validated().is_ok());
        assert!(ArchConfig::photofourier_ng().validated().is_ok());
        assert!(ArchConfig::baseline_single_pfcu().validated().is_ok());
    }

    #[test]
    fn design_point_parameters() {
        let cg = ArchConfig::photofourier_cg();
        assert_eq!(cg.tech.num_pfcus, 8);
        assert!(cg.pipelined);
        assert!(cg.pseudo_negative);
        assert_eq!(cg.parallel.input_broadcast, 8);
        let ng = ArchConfig::photofourier_ng();
        assert_eq!(ng.tech.num_pfcus, 16);
        assert!(ng.tech.passive_nonlinearity);
        let baseline = ArchConfig::baseline_single_pfcu();
        assert_eq!(baseline.tech.num_pfcus, 1);
        assert!(!baseline.pipelined);
        assert_eq!(baseline.tech.temporal_accumulation, 1);
    }

    #[test]
    fn validation_rejects_inconsistent_parallelism() {
        let mut cfg = ArchConfig::photofourier_cg();
        cfg.parallel.input_broadcast = 4; // 4 * 1 != 8
        assert!(cfg.validated().is_err());
        let mut cfg = ArchConfig::photofourier_cg();
        cfg.area_budget_mm2 = 0.0;
        assert!(cfg.validated().is_err());
    }

    #[test]
    fn with_pfcus_and_waveguides_overrides() {
        let cfg = ArchConfig::photofourier_cg().with_pfcus_and_waveguides(32, 105);
        assert_eq!(cfg.tech.num_pfcus, 32);
        assert_eq!(cfg.tech.input_waveguides, 105);
        assert_eq!(cfg.parallel.input_broadcast, 32);
        assert!(cfg.validated().is_ok());
    }

    #[test]
    fn temporal_accumulation_override_rederives_the_adc() {
        let cg = ArchConfig::photofourier_cg();
        // No accumulation: ADCs at the photonic clock, paying the 30×
        // full-rate power factor the baseline design point also uses.
        let full_rate = cg.clone().with_temporal_accumulation(1);
        assert_eq!(full_rate.tech.temporal_accumulation, 1);
        assert!(
            (full_rate.tech.adc_frequency_ghz - full_rate.tech.photonic_clock_ghz).abs() < 1e-12
        );
        let factor = full_rate.tech.adc_power_mw / cg.tech.adc_power_mw;
        assert!(
            (factor - pf_photonics::params::BASELINE_ADC_POWER_FACTOR).abs() < 1e-9,
            "full-rate ADC factor {factor}"
        );
        // Re-selecting the preset's own depth is an identity.
        let same = cg.clone().with_temporal_accumulation(16);
        assert!((same.tech.adc_power_mw - cg.tech.adc_power_mw).abs() < 1e-12);
        assert!(same.validated().is_ok());
        // Deeper accumulation keeps lowering ADC power.
        let deeper = cg.clone().with_temporal_accumulation(32);
        assert!(deeper.tech.adc_power_mw < cg.tech.adc_power_mw);
    }
}
