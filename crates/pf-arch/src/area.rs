//! Chip-area model (Table V constants, Figure 11, Table III).
//!
//! Component footprints come straight from Table V. What the paper's Figure
//! 11 calls "waveguide routing" — waveguides plus the redundant area forced
//! by the folded 2.5D layout of PhotoFourier-CG — is modelled as the
//! waveguide runs plus a layout-overhead multiplier that is large for the
//! two-chiplet CG design (folded PFCUs, everything crowded against the CMOS
//! chiplet edge) and small for the monolithic NG design.

use pf_photonics::params::{ComponentDims, TechConfig};
use serde::{Deserialize, Serialize};

use crate::error::ArchError;

/// Area breakdown of one design point, in mm² (Figure 11).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AreaBreakdown {
    /// Micro-ring modulators.
    pub mrr_mm2: f64,
    /// Photodetectors.
    pub photodetector_mm2: f64,
    /// On-chip lenses.
    pub lens_mm2: f64,
    /// Waveguide routing including layout-constraint overhead.
    pub waveguide_routing_mm2: f64,
    /// Lasers and splitter trees.
    pub laser_splitter_mm2: f64,
    /// On-chip SRAM (weight + activation).
    pub sram_mm2: f64,
    /// CMOS processing tiles.
    pub cmos_mm2: f64,
}

impl AreaBreakdown {
    /// Photonic IC area (everything except SRAM and CMOS logic).
    pub fn pic_mm2(&self) -> f64 {
        self.mrr_mm2
            + self.photodetector_mm2
            + self.lens_mm2
            + self.waveguide_routing_mm2
            + self.laser_splitter_mm2
    }

    /// Total accelerator area.
    pub fn total_mm2(&self) -> f64 {
        self.pic_mm2() + self.sram_mm2 + self.cmos_mm2
    }
}

/// Area model parameterised by the photonic component dimensions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    dims: ComponentDims,
    /// Length of the waveguide run through one PFCU, in µm (longer for the
    /// folded two-chiplet layout).
    waveguide_run_um: f64,
    /// Fractional overhead added for layout constraints (Section V-A:
    /// the folded CG layout wastes almost half the chip).
    layout_overhead: f64,
    /// Fixed per-PFCU area for couplers, tuning and control, in mm².
    fixed_per_pfcu_mm2: f64,
    /// SRAM macro area in mm² (from the memory compiler / PCACTI runs the
    /// paper reports in Figure 11).
    sram_mm2: f64,
    /// CMOS tile area in mm² (all tiles).
    cmos_mm2: f64,
}

impl AreaModel {
    /// Builds the area model matching a technology configuration.
    pub fn for_tech(tech: &TechConfig) -> Self {
        let folded = tech.num_chiplets >= 2;
        Self {
            dims: ComponentDims::paper_values(),
            waveguide_run_um: if folded { 4000.0 } else { 2500.0 },
            layout_overhead: if folded { 0.5 } else { 0.05 },
            fixed_per_pfcu_mm2: 0.1,
            sram_mm2: if folded { 5.85 } else { 5.3 },
            cmos_mm2: if folded { 10.15 } else { 16.5 },
        }
    }

    /// Area of one PFCU with `waveguides` input waveguides, in mm²
    /// (before layout overhead).
    pub fn pfcu_area_mm2(&self, tech: &TechConfig, waveguides: usize) -> f64 {
        let w = waveguides as f64;
        // Input + weight modulators; the CG design additionally has a ring on
        // every Fourier-plane waveguide for the square function.
        let mrr_count = if tech.passive_nonlinearity {
            2.0 * w
        } else {
            3.0 * w
        };
        // Output detectors, plus Fourier-plane detectors for CG.
        let pd_count = if tech.passive_nonlinearity {
            w
        } else {
            2.0 * w
        };
        let mrr = mrr_count * self.dims.mrr_area().to_mm2();
        let pd = pd_count * self.dims.photodetector_area().to_mm2();
        // The lens aperture must span all waveguides: its width grows with
        // the waveguide count (the Table V 2 mm x 1 mm lens corresponds to a
        // 256-waveguide PFCU, i.e. about 3.9 um of aperture per waveguide).
        let lens_width_um = w * 3.9;
        let lens = 2.0 * self.dims.lens_um.0 * lens_width_um * 1e-6;
        let routing = self
            .dims
            .waveguide_area(waveguides, self.waveguide_run_um)
            .to_mm2();
        mrr + pd + lens + routing + self.fixed_per_pfcu_mm2
    }

    /// Full area breakdown of an accelerator with the given PFCU count and
    /// waveguides per PFCU.
    pub fn breakdown(&self, tech: &TechConfig) -> AreaBreakdown {
        self.breakdown_for(tech, tech.num_pfcus, tech.input_waveguides)
    }

    /// Area breakdown for an arbitrary (PFCU count, waveguide count) point —
    /// used by the design-space exploration.
    pub fn breakdown_for(
        &self,
        tech: &TechConfig,
        num_pfcus: usize,
        waveguides: usize,
    ) -> AreaBreakdown {
        let w = waveguides as f64;
        let n = num_pfcus as f64;
        let mrr_count = if tech.passive_nonlinearity { 2.0 } else { 3.0 } * w * n;
        let pd_count = if tech.passive_nonlinearity { 1.0 } else { 2.0 } * w * n;
        let lens_width_um = w * 3.9;

        let mrr_mm2 = mrr_count * self.dims.mrr_area().to_mm2();
        let photodetector_mm2 = pd_count * self.dims.photodetector_area().to_mm2();
        let lens_mm2 = 2.0 * n * self.dims.lens_um.0 * lens_width_um * 1e-6;
        let raw_routing = n
            * (self
                .dims
                .waveguide_area(waveguides, self.waveguide_run_um)
                .to_mm2()
                + self.fixed_per_pfcu_mm2);
        // Layout overhead (dead space of the folded layout) is attributed to
        // routing, as Figure 11 does.
        let component_total = mrr_mm2 + photodetector_mm2 + lens_mm2 + raw_routing;
        let waveguide_routing_mm2 = raw_routing + component_total * self.layout_overhead;

        // Lasers (one per PFCU plus one shared input bank) and the broadcast
        // splitter tree.
        let laser_splitter_mm2 = (n + 1.0) * self.dims.laser_area().to_mm2()
            + w * (n - 1.0).max(0.0) * self.dims.splitter_area().to_mm2();

        AreaBreakdown {
            mrr_mm2,
            photodetector_mm2,
            lens_mm2,
            waveguide_routing_mm2,
            laser_splitter_mm2,
            sram_mm2: self.sram_mm2,
            cmos_mm2: self.cmos_mm2,
        }
    }

    /// Largest number of input waveguides per PFCU that keeps the photonic
    /// IC within `budget_mm2` for the given PFCU count (Table III, left
    /// columns).
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] if even a minimal PFCU
    /// (32 waveguides) exceeds the budget.
    pub fn max_waveguides(
        &self,
        tech: &TechConfig,
        num_pfcus: usize,
        budget_mm2: f64,
    ) -> Result<usize, ArchError> {
        let fits = |w: usize| self.breakdown_for(tech, num_pfcus, w).pic_mm2() <= budget_mm2;
        if !fits(32) {
            return Err(ArchError::InvalidConfig {
                name: "budget_mm2",
                requirement: format!(
                    "{num_pfcus} PFCUs with even 32 waveguides exceed {budget_mm2} mm^2"
                ),
            });
        }
        let (mut lo, mut hi) = (32usize, 32usize);
        while fits(hi * 2) {
            hi *= 2;
            if hi > 1 << 20 {
                break;
            }
        }
        hi *= 2;
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if fits(mid) {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        Ok(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_photonics::params::TechConfig;

    #[test]
    fn cg_area_matches_published_ballpark() {
        let tech = TechConfig::photofourier_cg();
        let model = AreaModel::for_tech(&tech);
        let breakdown = model.breakdown(&tech);
        // Paper Figure 11(a): PIC chiplet 92.2 mm^2, SRAM 5.85, CMOS 10.15.
        assert!(
            (70.0..120.0).contains(&breakdown.pic_mm2()),
            "CG PIC area {}",
            breakdown.pic_mm2()
        );
        assert_eq!(breakdown.sram_mm2, 5.85);
        assert_eq!(breakdown.cmos_mm2, 10.15);
        assert!(breakdown.total_mm2() > breakdown.pic_mm2());
    }

    #[test]
    fn ng_has_twice_the_pfcus_at_similar_area() {
        let cg = TechConfig::photofourier_cg();
        let ng = TechConfig::photofourier_ng();
        let cg_area = AreaModel::for_tech(&cg).breakdown(&cg).pic_mm2();
        let ng_area = AreaModel::for_tech(&ng).breakdown(&ng).pic_mm2();
        // Paper: 92.2 vs 93.5 mm^2 — "roughly the same area" with 2x PFCUs.
        let ratio = ng_area / cg_area;
        assert!(
            (0.7..1.4).contains(&ratio),
            "NG/CG area ratio {ratio} ({ng_area} vs {cg_area})"
        );
    }

    #[test]
    fn cg_routing_dominates_due_to_layout_constraints() {
        // Figure 11(a): waveguide routing (incl. dead space) is the largest
        // single contributor, close to half the chip.
        let tech = TechConfig::photofourier_cg();
        let b = AreaModel::for_tech(&tech).breakdown(&tech);
        assert!(b.waveguide_routing_mm2 > b.mrr_mm2);
        assert!(b.waveguide_routing_mm2 > b.photodetector_mm2);
        assert!(b.waveguide_routing_mm2 > 0.3 * b.pic_mm2());
    }

    #[test]
    fn mrr_and_pd_are_small_fractions() {
        // Section VI-C: "photodetector and MRR consume a very small portion
        // of the total area in both versions".
        for tech in [TechConfig::photofourier_cg(), TechConfig::photofourier_ng()] {
            let b = AreaModel::for_tech(&tech).breakdown(&tech);
            assert!(b.mrr_mm2 < 0.1 * b.pic_mm2());
            assert!(b.photodetector_mm2 < 0.15 * b.pic_mm2());
        }
    }

    #[test]
    fn max_waveguides_decreases_with_pfcu_count() {
        // Table III trend: more PFCUs -> fewer waveguides per PFCU under the
        // same 100 mm^2 budget.
        let tech = TechConfig::photofourier_cg();
        let model = AreaModel::for_tech(&tech);
        let mut previous = usize::MAX;
        for n in [4usize, 8, 16, 32, 64] {
            let w = model.max_waveguides(&tech, n, 100.0).unwrap();
            assert!(w < previous, "waveguides should decrease: {n} PFCUs -> {w}");
            assert!(w >= 32);
            previous = w;
        }
    }

    #[test]
    fn max_waveguides_respects_budget() {
        let tech = TechConfig::photofourier_cg();
        let model = AreaModel::for_tech(&tech);
        for n in [4usize, 8, 16] {
            let w = model.max_waveguides(&tech, n, 100.0).unwrap();
            assert!(model.breakdown_for(&tech, n, w).pic_mm2() <= 100.0);
            assert!(model.breakdown_for(&tech, n, w + 8).pic_mm2() > 100.0);
        }
    }

    #[test]
    fn impossible_budget_is_rejected() {
        let tech = TechConfig::photofourier_cg();
        let model = AreaModel::for_tech(&tech);
        assert!(model.max_waveguides(&tech, 64, 1.0).is_err());
    }

    #[test]
    fn pfcu_area_monotone_in_waveguides() {
        let tech = TechConfig::photofourier_cg();
        let model = AreaModel::for_tech(&tech);
        let a128 = model.pfcu_area_mm2(&tech, 128);
        let a256 = model.pfcu_area_mm2(&tech, 256);
        let a512 = model.pfcu_area_mm2(&tech, 512);
        assert!(a128 < a256 && a256 < a512);
    }
}
