//! Component energy / power model (Table IV constants).
//!
//! Turns a [`LayerSchedule`] into per-component energy, which aggregates into
//! the power breakdowns of Figure 6 (baseline) and Figure 12 (CG/NG), and
//! into the FPS/W and EDP numbers of Figures 10 and 13.

use std::ops::{Add, AddAssign};

use pf_nn::layers::ConvLayerSpec;
use serde::{Deserialize, Serialize};

use crate::config::ArchConfig;
use crate::dataflow::LayerSchedule;

/// Energy spent in each component class, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Laser wall-plug energy.
    pub laser_pj: f64,
    /// Micro-ring modulators (input, weight and Fourier-plane rings).
    pub mrr_pj: f64,
    /// Digital-to-analog converters (input + weight generation).
    pub dac_pj: f64,
    /// Analog-to-digital converters (output read-out).
    pub adc_pj: f64,
    /// On-chip SRAM (dynamic access + leakage).
    pub sram_pj: f64,
    /// CMOS processing tiles (input generation + output processing logic).
    pub cmos_pj: f64,
    /// Off-chip DRAM traffic.
    pub dram_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.laser_pj
            + self.mrr_pj
            + self.dac_pj
            + self.adc_pj
            + self.sram_pj
            + self.cmos_pj
            + self.dram_pj
    }

    /// Total energy in joules.
    pub fn total_joules(&self) -> f64 {
        self.total_pj() * 1e-12
    }

    /// Energy with all memory contributions (SRAM + DRAM) removed — the
    /// "-nm" (no memory) variants of Figure 13, included because some prior
    /// works do not model memory access power.
    pub fn without_memory(&self) -> Self {
        Self {
            sram_pj: 0.0,
            dram_pj: 0.0,
            ..*self
        }
    }

    /// Per-component share of the total, in the fixed order
    /// `[laser, mrr, dac, adc, sram, cmos, dram]`.
    pub fn shares(&self) -> [f64; 7] {
        let total = self.total_pj().max(f64::MIN_POSITIVE);
        [
            self.laser_pj / total,
            self.mrr_pj / total,
            self.dac_pj / total,
            self.adc_pj / total,
            self.sram_pj / total,
            self.cmos_pj / total,
            self.dram_pj / total,
        ]
    }

    /// Component labels matching [`EnergyBreakdown::shares`].
    pub const COMPONENT_LABELS: [&'static str; 7] =
        ["laser", "MRR", "DAC", "ADC", "SRAM", "CMOS", "DRAM"];

    /// Share of the total taken by the O-E / E-O converters (DAC + ADC) —
    /// the quantity Figure 6 shows exceeding 80% for the baseline.
    pub fn converter_share(&self) -> f64 {
        (self.dac_pj + self.adc_pj) / self.total_pj().max(f64::MIN_POSITIVE)
    }
}

impl Add for EnergyBreakdown {
    type Output = EnergyBreakdown;
    fn add(self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            laser_pj: self.laser_pj + rhs.laser_pj,
            mrr_pj: self.mrr_pj + rhs.mrr_pj,
            dac_pj: self.dac_pj + rhs.dac_pj,
            adc_pj: self.adc_pj + rhs.adc_pj,
            sram_pj: self.sram_pj + rhs.sram_pj,
            cmos_pj: self.cmos_pj + rhs.cmos_pj,
            dram_pj: self.dram_pj + rhs.dram_pj,
        }
    }
}

impl AddAssign for EnergyBreakdown {
    fn add_assign(&mut self, rhs: EnergyBreakdown) {
        *self = *self + rhs;
    }
}

/// Computes the energy breakdown of one scheduled layer.
pub fn layer_energy(
    spec: &ConvLayerSpec,
    schedule: &LayerSchedule,
    config: &ArchConfig,
) -> EnergyBreakdown {
    let tech = &config.tech;
    let cycle_ns = 1.0 / tech.photonic_clock_ghz;
    let active_ns = schedule.total_cycles as f64 * cycle_ns;

    let ib = config.parallel.input_broadcast.max(1) as f64;
    let cp = config.parallel.channel_parallel.max(1) as f64;
    let num_pfcus = tech.num_pfcus as f64;
    let _ = ib;

    // --- Laser -----------------------------------------------------------
    // Input light is generated once per channel-parallel group and split to
    // the broadcast PFCUs; weight light is per-PFCU. (mW * ns = pJ)
    let laser_waveguides = schedule.active_input_waveguides as f64 * cp
        + schedule.active_weight_dacs as f64 * num_pfcus;
    let laser_pj = tech.laser_power_per_waveguide_mw * laser_waveguides * active_ns;

    // --- MRRs --------------------------------------------------------------
    // Input modulators are shared across the broadcast group; weight
    // modulators are per PFCU; the Fourier-plane square-function rings exist
    // on every waveguide of every PFCU unless the design uses a passive
    // non-linear material.
    let input_mrrs = schedule.active_input_waveguides as f64 * cp;
    let weight_mrrs = schedule.active_weight_dacs as f64 * num_pfcus;
    let fourier_mrrs = if tech.passive_nonlinearity {
        0.0
    } else {
        tech.input_waveguides as f64 * num_pfcus
    };
    let mrr_pj = tech.mrr_power_mw * (input_mrrs + weight_mrrs + fourier_mrrs) * active_ns;

    // --- DACs --------------------------------------------------------------
    let input_dacs = schedule.active_input_waveguides as f64 * cp;
    let weight_dacs = schedule.active_weight_dacs as f64 * num_pfcus;
    let dac_pj = tech.dac_power_mw * (input_dacs + weight_dacs) * active_ns;

    // --- ADCs --------------------------------------------------------------
    // Energy per conversion = power / frequency (mW / GHz = pJ).
    let adc_energy_per_conversion = tech.adc_power_mw / tech.adc_frequency_ghz;
    let adc_pj = schedule.adc_conversions as f64 * adc_energy_per_conversion / cp;

    // --- SRAM --------------------------------------------------------------
    let sram_bytes =
        schedule.input_sram_bytes + schedule.weight_sram_bytes + schedule.output_sram_bytes;
    let sram_pj =
        sram_bytes as f64 * tech.sram_energy_pj_per_byte + tech.sram_leakage_mw * active_ns;

    // --- CMOS tiles ---------------------------------------------------------
    let cmos_pj = tech.cmos_tile_power_mw * num_pfcus * active_ns;

    // --- DRAM ---------------------------------------------------------------
    let dram_pj = schedule.dram_bytes as f64 * tech.dram_energy_pj_per_byte;

    let _ = spec;
    EnergyBreakdown {
        laser_pj,
        mrr_pj,
        dac_pj,
        adc_pj,
        sram_pj,
        cmos_pj,
        dram_pj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArchConfig;
    use crate::dataflow::LayerSchedule;
    use pf_nn::layers::ConvLayerSpec;

    fn layer(in_c: usize, out_c: usize, k: usize, size: usize) -> ConvLayerSpec {
        ConvLayerSpec::new("t", in_c, out_c, k, 1, size, true).unwrap()
    }

    fn energy_for(cfg: &ArchConfig, spec: &ConvLayerSpec) -> (LayerSchedule, EnergyBreakdown) {
        let schedule = LayerSchedule::new(spec, cfg).unwrap();
        let energy = layer_energy(spec, &schedule, cfg);
        (schedule, energy)
    }

    #[test]
    fn breakdown_arithmetic() {
        let a = EnergyBreakdown {
            laser_pj: 1.0,
            mrr_pj: 2.0,
            dac_pj: 3.0,
            adc_pj: 4.0,
            sram_pj: 5.0,
            cmos_pj: 6.0,
            dram_pj: 7.0,
        };
        assert_eq!(a.total_pj(), 28.0);
        assert!((a.total_joules() - 28e-12).abs() < 1e-20);
        let b = a + a;
        assert_eq!(b.total_pj(), 56.0);
        let mut c = a;
        c += a;
        assert_eq!(c, b);
        let shares = a.shares();
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(a.without_memory().sram_pj, 0.0);
        assert_eq!(a.without_memory().dram_pj, 0.0);
        assert!((a.converter_share() - 7.0 / 28.0).abs() < 1e-12);
        assert_eq!(EnergyBreakdown::COMPONENT_LABELS.len(), 7);
    }

    #[test]
    fn baseline_is_converter_dominated() {
        // Figure 6: ADC + DAC dominate the un-optimised 1-PFCU system on a
        // VGG-style layer (the paper reports > 80%; this model lands a few
        // points lower because its SRAM traffic accounting is conservative,
        // but the converters remain by far the largest contributor).
        let cfg = ArchConfig::baseline_single_pfcu();
        let spec = layer(128, 128, 3, 56);
        let (_, energy) = energy_for(&cfg, &spec);
        assert!(
            energy.converter_share() > 0.65,
            "baseline converter share {}",
            energy.converter_share()
        );
        let shares = energy.shares();
        let dac_share = shares[2];
        // The DAC is the single largest component, as in Figure 6.
        for (i, &share) in shares.iter().enumerate() {
            if i != 2 {
                assert!(dac_share >= share, "component {i} exceeds the DAC share");
            }
        }
    }

    #[test]
    fn optimised_cg_is_not_converter_dominated() {
        // Figure 12(a): after the optimisations the DAC+ADC share drops well
        // below the baseline's 80%.
        let cfg = ArchConfig::photofourier_cg();
        let spec = layer(128, 128, 3, 56);
        let (_, energy) = energy_for(&cfg, &spec);
        assert!(
            energy.converter_share() < 0.6,
            "CG converter share {}",
            energy.converter_share()
        );
    }

    #[test]
    fn ng_reduces_total_energy_vs_cg() {
        let spec = layer(256, 256, 3, 28);
        let (_, cg) = energy_for(&ArchConfig::photofourier_cg(), &spec);
        let (_, ng) = energy_for(&ArchConfig::photofourier_ng(), &spec);
        assert!(ng.total_pj() < cg.total_pj());
        // NG removes the Fourier-plane MRRs entirely.
        assert!(ng.mrr_pj < cg.mrr_pj / 4.0);
    }

    #[test]
    fn ng_memory_share_grows() {
        // Figure 12(b): SRAM becomes the largest contributor in NG.
        let spec = layer(256, 256, 3, 28);
        let (_, ng) = energy_for(&ArchConfig::photofourier_ng(), &spec);
        let shares = ng.shares();
        let sram_share = shares[4];
        let dac_share = shares[2];
        let mrr_share = shares[1];
        assert!(
            sram_share > dac_share && sram_share > mrr_share,
            "NG shares: sram {sram_share}, dac {dac_share}, mrr {mrr_share}"
        );
    }

    #[test]
    fn adc_energy_scales_with_channel_count() {
        let cfg = ArchConfig::photofourier_cg();
        let (_, few) = energy_for(&cfg, &layer(16, 64, 3, 28));
        let (_, many) = energy_for(&cfg, &layer(256, 64, 3, 28));
        assert!(many.adc_pj > few.adc_pj);
    }

    #[test]
    fn energy_is_positive_everywhere() {
        let cfg = ArchConfig::photofourier_cg();
        let (_, e) = energy_for(&cfg, &layer(64, 64, 3, 56));
        assert!(e.laser_pj > 0.0);
        assert!(e.mrr_pj > 0.0);
        assert!(e.dac_pj > 0.0);
        assert!(e.adc_pj > 0.0);
        assert!(e.sram_pj > 0.0);
        assert!(e.cmos_pj > 0.0);
        assert!(e.dram_pj > 0.0);
    }
}
