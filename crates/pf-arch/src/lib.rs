//! Architecture simulator for PhotoFourier (Sections IV–VI of the paper).
//!
//! This crate is the Rust counterpart of the paper's "custom Python-based
//! simulator": it schedules CNN convolution layers onto a multi-PFCU
//! accelerator, counts cycles and electro-optic conversions, and produces
//! latency / power / area / FPS / FPS-per-watt / EDP numbers for the
//! PhotoFourier-CG and PhotoFourier-NG design points as well as for the
//! un-optimised baseline and the intermediate optimisation steps.
//!
//! Module map:
//!
//! * [`config`] — accelerator configurations (design points + the
//!   optimisation ladder of Figure 10);
//! * [`parallel`] — the parallelisation-scheme analysis of Section V-D
//!   (input broadcasting vs channel parallelisation, Figure 8);
//! * [`dataflow`] — output-stationary scheduling of one convolution layer
//!   onto the PFCUs via row tiling, producing cycle and conversion counts;
//! * [`power`] — the component power/energy model (Table IV constants) and
//!   per-layer energy breakdowns (Figures 6 and 12);
//! * [`area`] — the component area model (Table V constants), chip-area
//!   breakdowns (Figure 11) and the waveguides-vs-PFCU-count trade-off
//!   (Table III);
//! * [`memory`] — SRAM capacity checks and DRAM traffic accounting;
//! * [`simulator`] — the top-level [`simulator::Simulator`] producing
//!   [`simulator::NetworkPerformance`] for a [`pf_nn::models::NetworkSpec`];
//! * [`design_space`] — the Table III design-space sweep;
//! * [`optimizations`] — the cumulative-optimisation study of Figure 10.
//!
//! # Examples
//!
//! ```
//! use pf_arch::config::ArchConfig;
//! use pf_arch::simulator::Simulator;
//! use pf_nn::models::imagenet::resnet18;
//!
//! let sim = Simulator::new(ArchConfig::photofourier_cg())?;
//! let perf = sim.evaluate_network(&resnet18())?;
//! assert!(perf.fps > 0.0);
//! assert!(perf.fps_per_watt > 0.0);
//! # Ok::<(), pf_arch::ArchError>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod area;
pub mod config;
pub mod dataflow;
pub mod design_space;
pub mod error;
pub mod memory;
pub mod optimizations;
pub mod parallel;
pub mod power;
pub mod simulator;
pub mod whatif;

pub use config::ArchConfig;
pub use error::ArchError;
pub use simulator::{NetworkPerformance, Simulator};
