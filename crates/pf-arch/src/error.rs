//! Error type for the architecture simulator.

use std::error::Error;
use std::fmt;

/// Errors returned by the architecture simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ArchError {
    /// A configuration parameter is invalid.
    InvalidConfig {
        /// Parameter name.
        name: &'static str,
        /// Requirement description.
        requirement: String,
    },
    /// A layer cannot be scheduled on the configured hardware.
    Unschedulable {
        /// Layer name.
        layer: String,
        /// Reason.
        reason: String,
    },
    /// Propagated tiling error.
    Tiling(pf_tiling::TilingError),
    /// Propagated photonic component error.
    Photonics(pf_photonics::PhotonicsError),
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::InvalidConfig { name, requirement } => {
                write!(f, "invalid configuration {name}: {requirement}")
            }
            ArchError::Unschedulable { layer, reason } => {
                write!(f, "layer {layer} cannot be scheduled: {reason}")
            }
            ArchError::Tiling(e) => write!(f, "tiling error: {e}"),
            ArchError::Photonics(e) => write!(f, "photonics error: {e}"),
        }
    }
}

impl Error for ArchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ArchError::Tiling(e) => Some(e),
            ArchError::Photonics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pf_tiling::TilingError> for ArchError {
    fn from(e: pf_tiling::TilingError) -> Self {
        ArchError::Tiling(e)
    }
}

impl From<pf_photonics::PhotonicsError> for ArchError {
    fn from(e: pf_photonics::PhotonicsError) -> Self {
        ArchError::Photonics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ArchError::InvalidConfig {
            name: "num_pfcus",
            requirement: "must be positive".into(),
        };
        assert!(e.to_string().contains("num_pfcus"));
        assert!(Error::source(&e).is_none());
        let e = ArchError::from(pf_tiling::TilingError::EmptyOperand { what: "input" });
        assert!(Error::source(&e).is_some());
        let e = ArchError::Unschedulable {
            layer: "conv1".into(),
            reason: "kernel too large".into(),
        };
        assert!(e.to_string().contains("conv1"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ArchError>();
    }
}
